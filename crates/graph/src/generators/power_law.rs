//! Power-law random graphs via the erased configuration model.

use crate::undirected::GraphBuilder;
use crate::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sample a degree sequence where `P(deg = k) ∝ k^(-exponent)` for
/// `k ∈ 1..=max_degree`, adjusted to have an even sum (required by the
/// configuration model).
///
/// This mirrors the paper's synthetic setup: "we first sampled a
/// power-law degree distribution and then generated a random graph with
/// that prescribed degree distribution" (§VI.A).
pub fn power_law_degree_sequence(
    n: usize,
    exponent: f64,
    max_degree: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(
        exponent > 1.0,
        "power-law exponent must exceed 1, got {exponent}"
    );
    assert!(
        max_degree >= 1 && max_degree < n,
        "need 1 <= max_degree < n"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Precompute the CDF of k^-exponent over 1..=max_degree.
    let mut cdf = Vec::with_capacity(max_degree);
    let mut total = 0.0;
    for k in 1..=max_degree {
        total += (k as f64).powf(-exponent);
        cdf.push(total);
    }
    let mut degs: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            match cdf.binary_search_by(|c| c.total_cmp(&u)) {
                Ok(i) | Err(i) => i + 1,
            }
        })
        .collect();
    if degs.iter().sum::<usize>() % 2 == 1 {
        // Make the stub count even by bumping one vertex.
        degs[0] += if degs[0] < max_degree { 1 } else { 0 };
        if degs.iter().sum::<usize>() % 2 == 1 {
            degs[0] -= 1;
        }
    }
    degs
}

/// Generate a simple graph whose degree sequence approximately follows
/// a power law with the given exponent, using the erased configuration
/// model (pair random stubs, drop self-loops and parallel edges).
pub fn power_law_graph(n: usize, exponent: f64, max_degree: usize, seed: u64) -> Graph {
    let degs = power_law_degree_sequence(n, exponent, max_degree, seed);
    graph_from_degree_sequence(&degs, seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// Realize a degree sequence as a simple graph with the erased
/// configuration model. Self-loops and duplicate edges produced by the
/// random pairing are discarded, so realized degrees are a lower bound
/// on the prescribed ones.
pub fn graph_from_degree_sequence(degrees: &[usize], seed: u64) -> Graph {
    let n = degrees.len();
    let mut stubs: Vec<VertexId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    assert!(stubs.len().is_multiple_of(2), "degree sum must be even");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v {
            b.add_edge(u, v); // duplicates merged by the builder
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_sequence_in_range_and_even() {
        let d = power_law_degree_sequence(400, 2.5, 20, 1);
        assert_eq!(d.len(), 400);
        assert!(d.iter().all(|&k| (1..=20).contains(&k)));
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn degree_sequence_is_heavy_on_small_degrees() {
        let d = power_law_degree_sequence(2000, 2.5, 30, 2);
        let ones = d.iter().filter(|&&k| k == 1).count();
        let big = d.iter().filter(|&&k| k >= 10).count();
        assert!(
            ones > big,
            "power law should favour degree 1 ({ones} vs {big})"
        );
    }

    #[test]
    fn graph_realization_bounds_degrees() {
        let degs = vec![3, 2, 2, 1, 2];
        let g = graph_from_degree_sequence(&degs, 3);
        for v in 0..5u32 {
            assert!(g.degree(v) <= degs[v as usize]);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let g1 = power_law_graph(100, 2.3, 15, 77);
        let g2 = power_law_graph(100, 2.3, 15, 77);
        assert_eq!(g1, g2);
        let g3 = power_law_graph(100, 2.3, 15, 78);
        assert_ne!(g1, g3);
    }

    #[test]
    fn paper_scale_instance_is_connected_enough() {
        // The paper's base graph: 400-node power-law.
        let g = power_law_graph(400, 2.5, 40, 5);
        assert_eq!(g.num_vertices(), 400);
        assert!(g.num_edges() > 200, "got {}", g.num_edges());
        assert!(g.max_degree() <= 40);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_bad_exponent() {
        let _ = power_law_degree_sequence(10, 0.5, 3, 0);
    }
}
