//! Scaled-up lcsh-style synthetic instances for out-of-core testing.
//!
//! The data crate's Table II stand-ins target the *published* shapes,
//! which keep `nnz(S)` well below `|E_L|` at small scales — too sparse
//! to exercise an out-of-core squares matrix. This generator keeps the
//! same skeleton (power-law `A`, planted injection `σ`, projected `B`,
//! similarity-style `L`) but adds *neighbour-confusion* candidates: for
//! an edge `(u, v)` of `A`, the pairs `(u, σ(v))` and `(v, σ(u))` are
//! plausible candidate matches a similarity heuristic would emit. Every
//! `A`-wedge `u – v – w` whose confusion pairs both survive contributes
//! a square through the retained projection of `(v, w)` in `B`, so the
//! squares count scales with the (large, skewed) wedge count of the
//! power-law graph instead of with the planted matching — `nnz(S)` is
//! driven well above `|E_L|`, matching the ontology instances the paper
//! aligns (§VI), while `L`'s degree distribution stays fairly regular.
//!
//! Deterministic per `(config, seed)` like every generator here.

use super::{graph_from_degree_sequence, power_law_degree_sequence};
use crate::bipartite::BipartiteGraphBuilder;
use crate::undirected::GraphBuilder;
use crate::{BipartiteGraph, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Size targets and knobs for [`lcsh_like`].
#[derive(Clone, Copy, Debug)]
pub struct LcshLikeConfig {
    /// Vertices of `A`.
    pub va: usize,
    /// Vertices of `B`.
    pub vb: usize,
    /// Target edges of `A`.
    pub ea: usize,
    /// Target edges of `B`.
    pub eb: usize,
    /// Target edges of `L` (noise pairs fill up to this).
    pub el: usize,
    /// Power-law exponent of `A`'s degree sequence.
    pub exponent: f64,
    /// Probability a projected `A`-edge survives into `B`.
    pub edge_retention: f64,
    /// Probability a planted pair appears in `L`.
    pub l_coverage: f64,
    /// Probability each directed confusion pair `(u, σ(v))` of an
    /// `A`-edge `(u, v)` is emitted into `L`.
    pub confusion: f64,
    /// Degree cap for the power-law sequence.
    pub max_deg: usize,
}

impl LcshLikeConfig {
    /// An lcsh-wiki-proportioned instance at the given scale
    /// (`scale = 1.0` ≈ a quarter of the published lcsh-wiki sizes,
    /// with retention/coverage/confusion tuned so `nnz(S) ≫ |E_L|`).
    pub fn scaled(scale: f64) -> LcshLikeConfig {
        assert!(scale > 0.0, "scale must be positive");
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(8);
        LcshLikeConfig {
            va: s(74_316),
            vb: s(51_487),
            ea: s(106_330),
            eb: s(152_568),
            el: s(800_000),
            exponent: 2.0,
            edge_retention: 0.9,
            l_coverage: 0.9,
            confusion: 0.7,
            max_deg: 2000,
        }
    }
}

/// One generated instance: the two graphs, the candidate bipartite
/// graph, and the hidden planted correspondence (for recovery scoring).
#[derive(Clone, Debug)]
pub struct LcshLikeInstance {
    /// First graph.
    pub a: Graph,
    /// Second graph.
    pub b: Graph,
    /// Candidate matches with similarity weights.
    pub l: BipartiteGraph,
    /// `planted[u] = Some(σ(u))` for planted vertices of `A`.
    pub planted: Vec<Option<VertexId>>,
}

/// Power-law graph with approximately `m_target` edges (same degree
/// scaling the data crate's stand-ins use).
fn power_law_with_edges(
    n: usize,
    m_target: usize,
    exponent: f64,
    max_deg: usize,
    seed: u64,
) -> Graph {
    let max_deg = max_deg.min((n / 8).max(8)).max(2);
    let base = power_law_degree_sequence(n, exponent, max_deg, seed);
    let base_sum: usize = base.iter().sum();
    let want = 2 * m_target;
    let factor = want as f64 / base_sum.max(1) as f64;
    let mut degs: Vec<usize> = base
        .iter()
        .map(|&d| ((d as f64 * factor).round() as usize).clamp(1, n - 1))
        .collect();
    if degs.iter().sum::<usize>() % 2 == 1 {
        degs[0] += 1;
    }
    graph_from_degree_sequence(&degs, seed.wrapping_add(0xA5A5))
}

/// Generate an lcsh-style instance with a dense squares matrix.
pub fn lcsh_like(cfg: &LcshLikeConfig, seed: u64) -> LcshLikeInstance {
    assert!(
        cfg.va >= 2 && cfg.vb >= 2,
        "graphs need at least 2 vertices"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = power_law_with_edges(
        cfg.va,
        cfg.ea,
        cfg.exponent,
        cfg.max_deg,
        seed.wrapping_add(1),
    );

    // Plant σ: a random injection from k vertices of A into B.
    let k = cfg.va.min(cfg.vb);
    let mut a_verts: Vec<VertexId> = (0..cfg.va as VertexId).collect();
    a_verts.shuffle(&mut rng);
    let mut b_verts: Vec<VertexId> = (0..cfg.vb as VertexId).collect();
    b_verts.shuffle(&mut rng);
    let mut planted: Vec<Option<VertexId>> = vec![None; cfg.va];
    for i in 0..k {
        planted[a_verts[i] as usize] = Some(b_verts[i]);
    }

    // B: projected edges of A (through σ) plus random fill.
    let mut bb = GraphBuilder::new(cfg.vb);
    let mut b_edges = 0usize;
    for (u, v) in a.edges() {
        if let (Some(bu), Some(bv)) = (planted[u as usize], planted[v as usize]) {
            if rng.gen_bool(cfg.edge_retention) && bu != bv {
                bb.add_edge(bu, bv);
                b_edges += 1;
            }
        }
    }
    while b_edges < cfg.eb {
        let u = rng.gen_range(0..cfg.vb as VertexId);
        let v = rng.gen_range(0..cfg.vb as VertexId);
        if u != v {
            bb.add_edge(u, v);
            b_edges += 1;
        }
    }
    let b = bb.build();

    // L: planted pairs, neighbour-confusion pairs, then uniform noise.
    let mut lb = BipartiteGraphBuilder::new(cfg.va, cfg.vb);
    let mut l_edges = 0usize;
    for (u, pb) in planted.iter().enumerate() {
        if let Some(bv) = pb {
            if rng.gen_bool(cfg.l_coverage) {
                lb.add_edge(u as VertexId, *bv, 1.0 + rng.gen::<f64>());
                l_edges += 1;
            }
        }
    }
    for (u, v) in a.edges() {
        if let Some(bv) = planted[v as usize] {
            if rng.gen_bool(cfg.confusion) {
                lb.add_edge(u, bv, 0.5 + 0.5 * rng.gen::<f64>());
                l_edges += 1;
            }
        }
        if let Some(bu) = planted[u as usize] {
            if rng.gen_bool(cfg.confusion) {
                lb.add_edge(v, bu, 0.5 + 0.5 * rng.gen::<f64>());
                l_edges += 1;
            }
        }
    }
    while l_edges < cfg.el {
        let u = rng.gen_range(0..cfg.va as VertexId);
        let v = rng.gen_range(0..cfg.vb as VertexId);
        lb.add_edge(u, v, rng.gen::<f64>());
        l_edges += 1;
    }
    let l = lb.build();

    LcshLikeInstance { a, b, l, planted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LcshLikeConfig {
        LcshLikeConfig {
            va: 400,
            vb: 300,
            ea: 900,
            eb: 1100,
            el: 4000,
            exponent: 2.0,
            edge_retention: 0.9,
            l_coverage: 0.9,
            confusion: 0.7,
            max_deg: 50,
        }
    }

    #[test]
    fn shapes_track_targets() {
        let inst = lcsh_like(&tiny(), 1);
        assert_eq!(inst.a.num_vertices(), 400);
        assert_eq!(inst.b.num_vertices(), 300);
        assert!(inst.a.num_edges() > 700);
        // builder dedup can shave a little off the B target too
        assert!(inst.b.num_edges() as f64 > 0.8 * 1100.0);
        // builder dedup can shave a little off the L target
        assert!(inst.l.num_edges() as f64 > 0.8 * 4000.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let i1 = lcsh_like(&tiny(), 9);
        let i2 = lcsh_like(&tiny(), 9);
        assert_eq!(i1.l, i2.l);
        assert_eq!(i1.planted, i2.planted);
        let i3 = lcsh_like(&tiny(), 10);
        assert!(i1.l != i3.l || i1.planted != i3.planted);
    }

    #[test]
    fn confusion_pairs_make_wedge_squares_likely() {
        // Count candidate squares directly: pairs of L-edges
        // (i,i'),(j,j') with (i,j) in A and (i',j') in B. The point of
        // this generator is that this count exceeds |E_L|.
        let inst = lcsh_like(&tiny(), 3);
        let mut squares = 0usize;
        for (i, j) in inst.a.edges() {
            for &ip in inst.l.left_neighbors(i) {
                for &jp in inst.l.left_neighbors(j) {
                    if ip != jp && inst.b.has_edge(ip, jp) {
                        squares += 1;
                    }
                }
            }
        }
        assert!(
            squares > inst.l.num_edges(),
            "squares {squares} should exceed |E_L| {}",
            inst.l.num_edges()
        );
    }

    #[test]
    fn scaled_config_is_proportional() {
        let c = LcshLikeConfig::scaled(0.01);
        assert_eq!(c.va, 743);
        assert_eq!(c.el, 8000);
    }
}
