//! Erdős–Rényi G(n, p) random graphs.

use crate::undirected::GraphBuilder;
use crate::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sample `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`. Uses geometric gap skipping so the cost is
/// proportional to the number of edges.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0,1], got {p}"
    );
    let mut b = GraphBuilder::new(n);
    if n >= 2 && p > 0.0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total = n * (n - 1) / 2;
        for idx in super::sample_bernoulli_indices(total, p, &mut rng) {
            let (u, v) = super::unrank_pair(idx, n);
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_p() {
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi(n, p, 4);
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(erdos_renyi(80, 0.1, 9), erdos_renyi(80, 0.1, 9));
        assert_ne!(erdos_renyi(80, 0.1, 9), erdos_renyi(80, 0.1, 10));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(erdos_renyi(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 1.0, 1).num_edges(), 0);
    }
}
