//! Seeded random graph generators.
//!
//! These implement the synthetic-problem recipe of the paper (§VI.A):
//! sample a power-law degree sequence, realize it as a random graph
//! (erased configuration model), perturb two copies with extra random
//! edges, and build `L` from the identity correspondence plus uniformly
//! sampled noise pairs.
//!
//! All generators take an explicit `u64` seed and use `ChaCha8Rng`, so
//! every experiment in the workspace is reproducible bit-for-bit.

mod erdos_renyi;
mod lcsh_like;
mod power_law;

pub use erdos_renyi::erdos_renyi;
pub use lcsh_like::{lcsh_like, LcshLikeConfig, LcshLikeInstance};
pub use power_law::{graph_from_degree_sequence, power_law_degree_sequence, power_law_graph};

use crate::bipartite::BipartiteGraphBuilder;
use crate::undirected::GraphBuilder;
use crate::{BipartiteGraph, Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Return a copy of `g` with each absent edge added independently with
/// probability `p` (the paper's perturbation that turns the base graph
/// `G` into `A` and `B`).
///
/// Uses geometric skipping over the implicit pair enumeration, so the
/// cost is proportional to the number of *added* edges, not `n²`.
pub fn add_random_edges(g: &Graph, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0,1], got {p}"
    );
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    if p > 0.0 && n >= 2 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total = n * (n - 1) / 2;
        for idx in sample_bernoulli_indices(total, p, &mut rng) {
            let (u, v) = unrank_pair(idx, n);
            if u != v && !g.has_edge(u, v) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Build the candidate graph `L` for a synthetic alignment instance:
/// the identity correspondence `i ↔ i` (weight `id_weight`) plus
/// uniformly random pairs sampled with probability `p` (weight
/// `noise_weight`).
///
/// The paper parameterizes the noise by the expected degree
/// `d̄ = p · |V_A|`; use [`expected_degree_to_probability`] to convert.
pub fn identity_plus_noise_l(
    na: usize,
    nb: usize,
    p: f64,
    id_weight: f64,
    noise_weight: f64,
    seed: u64,
) -> BipartiteGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0,1], got {p}"
    );
    let mut b = BipartiteGraphBuilder::new(na, nb);
    for i in 0..na.min(nb) {
        b.add_edge(i as VertexId, i as VertexId, id_weight);
    }
    if p > 0.0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for idx in sample_bernoulli_indices(na * nb, p, &mut rng) {
            let a = (idx / nb) as VertexId;
            let bb = (idx % nb) as VertexId;
            if a as usize != bb as usize || a as usize >= na.min(nb) {
                b.add_edge(a, bb, noise_weight);
            }
        }
    }
    b.build()
}

/// Convert the paper's expected-degree parameterization of `L`'s noise
/// (`d̄ = p · |V_A|`) into the per-pair sampling probability.
pub fn expected_degree_to_probability(dbar: f64, na: usize) -> f64 {
    assert!(na > 0);
    (dbar / na as f64).clamp(0.0, 1.0)
}

/// Sample the indices of successes among `total` independent
/// Bernoulli(`p`) trials using geometric gap skipping — O(expected
/// successes) instead of O(total).
fn sample_bernoulli_indices(total: usize, p: f64, rng: &mut impl Rng) -> Vec<usize> {
    let mut out = Vec::new();
    if p <= 0.0 || total == 0 {
        return out;
    }
    if p >= 1.0 {
        return (0..total).collect();
    }
    let log1mp = (1.0 - p).ln();
    let mut i: usize = 0;
    loop {
        // Geometric(p) gap: number of failures before the next success.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log1mp).floor() as usize;
        i = match i.checked_add(skip) {
            Some(v) => v,
            None => break,
        };
        if i >= total {
            break;
        }
        out.push(i);
        i += 1;
        if i >= total {
            break;
        }
    }
    out
}

/// Map a linear index in `0..n(n-1)/2` to the unordered pair `(u, v)`,
/// `u < v`, enumerated row by row.
fn unrank_pair(mut idx: usize, n: usize) -> (VertexId, VertexId) {
    debug_assert!(idx < n * (n - 1) / 2);
    let mut u = 0usize;
    let mut row = n - 1;
    while idx >= row {
        idx -= row;
        u += 1;
        row -= 1;
    }
    ((u) as VertexId, (u + 1 + idx) as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_pair_enumerates_all_pairs() {
        let n = 6;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v);
            assert!((v as usize) < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn bernoulli_indices_edge_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(sample_bernoulli_indices(100, 0.0, &mut rng).is_empty());
        assert_eq!(
            sample_bernoulli_indices(5, 1.0, &mut rng),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn bernoulli_indices_density_close_to_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let total = 200_000;
        let p = 0.05;
        let got = sample_bernoulli_indices(total, p, &mut rng).len() as f64;
        let expect = total as f64 * p;
        assert!(
            (got - expect).abs() < 0.1 * expect,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn add_random_edges_superset_and_deterministic() {
        let g = power_law_graph(60, 2.5, 10, 3);
        let h1 = add_random_edges(&g, 0.05, 11);
        let h2 = add_random_edges(&g, 0.05, 11);
        assert_eq!(h1, h2);
        for (u, v) in g.edges() {
            assert!(h1.has_edge(u, v));
        }
        assert!(h1.num_edges() >= g.num_edges());
    }

    #[test]
    fn add_random_edges_zero_p_is_identity() {
        let g = power_law_graph(40, 2.2, 8, 5);
        assert_eq!(add_random_edges(&g, 0.0, 1), g);
    }

    #[test]
    fn identity_l_contains_diagonal() {
        let l = identity_plus_noise_l(10, 8, 0.0, 2.0, 1.0, 0);
        assert_eq!(l.num_edges(), 8);
        for i in 0..8 {
            assert_eq!(l.edge_id(i, i), Some(i as usize));
            assert_eq!(l.weight(i as usize), 2.0);
        }
    }

    #[test]
    fn identity_l_noise_adds_offdiagonal() {
        let l = identity_plus_noise_l(50, 50, 0.1, 2.0, 1.0, 9);
        assert!(l.num_edges() > 50);
        // expected extra ≈ 0.1 * 2500 = 250
        let extra = l.num_edges() - 50;
        assert!(extra > 130 && extra < 400, "extra = {extra}");
        // diagonal retains identity weight (duplicates keep max)
        for i in 0..50 {
            assert_eq!(l.weight(l.edge_id(i, i).unwrap()), 2.0);
        }
    }

    #[test]
    fn expected_degree_conversion() {
        assert_eq!(expected_degree_to_probability(5.0, 100), 0.05);
        assert_eq!(expected_degree_to_probability(500.0, 100), 1.0);
    }
}
