//! Minimal memory-mapping layer for out-of-core containers.
//!
//! Wraps `mmap`/`munmap`/`madvise`/`msync` through raw `extern "C"`
//! declarations so no external crate is needed. On non-Unix targets the
//! types degrade to heap-backed buffers: everything still works, but
//! residency is no longer bounded by the OS page cache (the out-of-core
//! paths document this).
//!
//! Only 64-bit little-endian targets can reinterpret on-disk `u64`
//! sections as `usize` slices; [`crate::nacs`] checks this at open time.

use std::fs::File;
use std::io;
use std::ops::Range;

/// Page-cache advice understood by [`Mmap::advise`] / [`MmapMut::advise`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// No special treatment (default kernel readahead).
    Normal,
    /// Expect sequential access: aggressive readahead, early reclaim.
    Sequential,
    /// Expect random access: disable readahead.
    Random,
    /// Prefetch the range.
    WillNeed,
    /// The range is not needed soon; the kernel may drop the pages.
    /// File-backed pages are repopulated from the file on next access.
    DontNeed,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;

    pub const MADV_NORMAL: i32 = 0;
    pub const MADV_RANDOM: i32 = 1;
    pub const MADV_SEQUENTIAL: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;
    pub const MADV_DONTNEED: i32 = 4;

    #[cfg(target_os = "macos")]
    pub const MS_SYNC: i32 = 0x0010;
    #[cfg(not(target_os = "macos"))]
    pub const MS_SYNC: i32 = 4;

    #[cfg(target_os = "macos")]
    pub const SC_PAGESIZE: i32 = 29;
    #[cfg(not(target_os = "macos"))]
    pub const SC_PAGESIZE: i32 = 30;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
        pub fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
        pub fn sysconf(name: i32) -> i64;
    }

    pub fn advice_flag(a: super::Advice) -> i32 {
        match a {
            super::Advice::Normal => MADV_NORMAL,
            super::Advice::Sequential => MADV_SEQUENTIAL,
            super::Advice::Random => MADV_RANDOM,
            super::Advice::WillNeed => MADV_WILLNEED,
            super::Advice::DontNeed => MADV_DONTNEED,
        }
    }
}

/// System page size in bytes (4096 if it cannot be determined).
pub fn page_size() -> usize {
    #[cfg(unix)]
    {
        let v = unsafe { sys::sysconf(sys::SC_PAGESIZE) };
        if v > 0 {
            return v as usize;
        }
    }
    4096
}

/// Round `range` (in bytes, relative to a page-aligned base) outward to
/// page boundaries, clamped to `len`.
fn page_round(range: Range<usize>, len: usize) -> Range<usize> {
    let ps = page_size();
    let start = (range.start / ps) * ps;
    let end = range.end.div_ceil(ps) * ps;
    start.min(len)..end.min(len)
}

/// Round `range` *inward* to page boundaries (only whole pages fully
/// inside the range), clamped to `len`. Used for `DontNeed` on shared
/// writable maps so pages straddling a boundary are never dropped while
/// a neighbouring region may still be dirty.
fn page_round_inward(range: Range<usize>, len: usize) -> Range<usize> {
    let ps = page_size();
    let start = range.start.div_ceil(ps) * ps;
    let end = (range.end / ps) * ps;
    if start >= end {
        return 0..0;
    }
    start.min(len)..end.min(len)
}

// ---------------------------------------------------------------------
// Read-only map
// ---------------------------------------------------------------------

/// A read-only, shared memory map of an entire file.
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut std::ffi::c_void,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    len: usize,
}

#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the whole file read-only.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                return Ok(Mmap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            use std::io::Seek;
            f.seek(io::SeekFrom::Start(0))?;
            f.read_to_end(&mut buf)?;
            Ok(Mmap { buf, len })
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// Advise the kernel about the access pattern of a byte range
    /// (rounded outward to page boundaries). Best-effort: errors are
    /// ignored, advice is a hint.
    pub fn advise(&self, range: Range<usize>, advice: Advice) {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return;
            }
            let r = page_round(range, self.len);
            if r.is_empty() {
                return;
            }
            unsafe {
                sys::madvise(
                    (self.ptr as *mut u8).add(r.start) as *mut std::ffi::c_void,
                    r.end - r.start,
                    sys::advice_flag(advice),
                );
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (range, advice);
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

// ---------------------------------------------------------------------
// Writable shared map
// ---------------------------------------------------------------------

/// A shared read-write memory map of an entire file.
pub struct MmapMut {
    #[cfg(unix)]
    ptr: *mut std::ffi::c_void,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    len: usize,
}

#[cfg(unix)]
unsafe impl Send for MmapMut {}
#[cfg(unix)]
unsafe impl Sync for MmapMut {}

impl MmapMut {
    /// Map the whole file shared read-write.
    pub fn map(file: &File) -> io::Result<MmapMut> {
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                return Ok(MmapMut {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapMut { ptr, len })
        }
        #[cfg(not(unix))]
        {
            Ok(MmapMut {
                buf: vec![0; len],
                len,
            })
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }

    /// The mapped bytes, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &mut [];
            }
            unsafe { std::slice::from_raw_parts_mut(self.ptr as *mut u8, self.len) }
        }
        #[cfg(not(unix))]
        {
            &mut self.buf
        }
    }

    /// Synchronously flush a byte range to the backing file
    /// (rounded outward to page boundaries).
    pub fn sync(&self, range: Range<usize>) -> io::Result<()> {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return Ok(());
            }
            let r = page_round(range, self.len);
            if r.is_empty() {
                return Ok(());
            }
            let rc = unsafe {
                sys::msync(
                    (self.ptr as *mut u8).add(r.start) as *mut std::ffi::c_void,
                    r.end - r.start,
                    sys::MS_SYNC,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            let _ = range;
            Ok(())
        }
    }

    /// Advise on a byte range. `DontNeed` is rounded *inward* (whole
    /// pages only) so neighbouring, possibly-dirty regions survive;
    /// other advice is rounded outward. Best-effort.
    pub fn advise(&self, range: Range<usize>, advice: Advice) {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return;
            }
            let r = match advice {
                Advice::DontNeed => page_round_inward(range, self.len),
                _ => page_round(range, self.len),
            };
            if r.is_empty() {
                return;
            }
            unsafe {
                sys::madvise(
                    (self.ptr as *mut u8).add(r.start) as *mut std::ffi::c_void,
                    r.end - r.start,
                    sys::advice_flag(advice),
                );
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (range, advice);
        }
    }
}

impl Drop for MmapMut {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::fmt::Debug for MmapMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapMut").field("len", &self.len).finish()
    }
}

// ---------------------------------------------------------------------
// File-backed f64 scratch
// ---------------------------------------------------------------------

/// A file-backed `f64` buffer for out-of-core iterate state.
///
/// Created zero-filled over an unlinked scratch file, so the bytes live
/// in the page cache (reclaimable after [`ScratchF64::release`]) and the
/// file disappears automatically when the buffer is dropped — even on
/// crash, since it is unlinked at creation.
pub struct ScratchF64 {
    map: MmapMut,
    len: usize,
    // Keeps the unlinked file alive on unix; unused on other targets.
    _file: File,
}

impl ScratchF64 {
    /// Create a zero-filled scratch buffer of `len` f64s backed by a
    /// file named `name` under `dir`. The file is unlinked immediately
    /// after mapping.
    pub fn zeroed_in(dir: &std::path::Path, name: &str, len: usize) -> io::Result<ScratchF64> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len((len * 8) as u64)?;
        let map = MmapMut::map(&file)?;
        #[cfg(unix)]
        let _ = std::fs::remove_file(&path);
        Ok(ScratchF64 {
            map,
            len,
            _file: file,
        })
    }

    /// Number of f64 elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as an f64 slice.
    pub fn as_slice(&self) -> &[f64] {
        let b = self.map.as_slice();
        debug_assert_eq!(b.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const f64, self.len) }
    }

    /// The buffer as a mutable f64 slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        let b = self.map.as_mut_slice();
        debug_assert_eq!(b.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
        unsafe { std::slice::from_raw_parts_mut(b.as_mut_ptr() as *mut f64, self.len) }
    }

    /// Flush an element range to the backing file and tell the kernel
    /// the pages are not needed soon (they remain readable; a later
    /// access refaults from the file). Bounds peak residency during
    /// superblock sweeps.
    pub fn release(&self, elems: Range<usize>) {
        let bytes = elems.start * 8..elems.end * 8;
        let _ = self.map.sync(bytes.clone());
        self.map.advise(bytes, Advice::DontNeed);
    }

    /// Hint sequential access over an element range.
    pub fn advise_sequential(&self, elems: Range<usize>) {
        self.map
            .advise(elems.start * 8..elems.end * 8, Advice::Sequential);
    }
}

impl std::fmt::Debug for ScratchF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchF64")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("netalign-mmap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn map_reads_file_contents() {
        let dir = tmpdir("ro");
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        map.advise(0..map.len(), Advice::Sequential);
        map.advise(0..map.len(), Advice::DontNeed);
        assert_eq!(map.as_slice()[9_999], payload[9_999]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = tmpdir("empty");
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert!(map.as_slice().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scratch_round_trips_through_release() {
        let dir = tmpdir("scratch");
        let mut s = ScratchF64::zeroed_in(&dir, "buf.f64", 100_000).unwrap();
        assert!(s.as_slice().iter().all(|&v| v == 0.0));
        for (i, v) in s.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
        s.release(0..100_000);
        let got = s.as_slice();
        for i in [0usize, 1, 4095, 4096, 50_000, 99_999] {
            assert_eq!(got[i], i as f64 * 0.5);
        }
    }

    #[test]
    fn page_rounding_is_sane() {
        let ps = page_size();
        assert!(ps >= 1024 && ps.is_power_of_two());
        assert_eq!(page_round(1..2, 10 * ps), 0..ps);
        assert!(page_round_inward(1..2 * ps - 1, 10 * ps).is_empty());
        assert_eq!(page_round_inward(1..3 * ps - 1, 10 * ps), ps..2 * ps);
        assert_eq!(page_round_inward(0..2 * ps, 10 * ps), 0..2 * ps);
    }
}
