//! Readers and writers for the SMAT and edge-list formats used by the
//! original `netalign` codes.
//!
//! SMAT is a plain-text triplet format:
//!
//! ```text
//! nrows ncols nnz
//! row col value      (nnz lines, 0-indexed)
//! ```
//!
//! Bipartite graphs `L` serialize as SMAT with `nrows = |V_A|`,
//! `ncols = |V_B|`; undirected graphs serialize as an edge list with a
//! `n m` header, one `u v` line per edge.

use crate::bipartite::{BipartiteGraphBuilder, GraphError};
use crate::undirected::GraphBuilder;
use crate::{BipartiteGraph, CsrMatrix, Graph, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Largest vertex-dimension a loader accepts. Vertex ids are stored as
/// [`VertexId`] (`u32`), so a header dimension beyond this either
/// overflows the index type (silently truncating indices on a cast) or
/// is a decompression bomb — both are rejected with
/// [`IoError::HeaderOverflow`] before anything is allocated.
pub const MAX_DIM: usize = VertexId::MAX as usize;

/// Cap on header-driven preallocation. Header counts are untrusted: a
/// one-line file claiming `nnz = 10^18` must not reserve terabytes up
/// front, so reservations take `min(claimed, this)` and grow with the
/// actual body from there.
const PREALLOC_CAP: usize = 1 << 20;

/// Errors produced by the readers. Every adversarial input class maps
/// to a typed variant — the loaders never panic and never allocate
/// proportionally to an unvalidated header claim.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file content did not parse as the expected format.
    Parse { line: usize, msg: String },
    /// An entry names a vertex outside the header's dimensions.
    OutOfRange { line: usize, msg: String },
    /// The header declares dimensions or counts that overflow the
    /// index space or contradict each other (e.g. `nnz > nrows*ncols`).
    HeaderOverflow { line: usize, msg: String },
    /// The body holds a different number of entries than the header
    /// promised — a truncated file or a header/body mismatch.
    CountMismatch {
        what: &'static str,
        expected: usize,
        found: usize,
    },
    /// The parsed data was rejected by the graph builder.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::OutOfRange { line, msg } => {
                write!(f, "out of bounds at line {line}: {msg}")
            }
            IoError::HeaderOverflow { line, msg } => {
                write!(f, "implausible header at line {line}: {msg}")
            }
            IoError::CountMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "header/body mismatch: expected {expected} {what}, found {found} \
                 (truncated or corrupt file?)"
            ),
            IoError::Graph(e) => write!(f, "invalid graph data: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Write a sparse matrix in SMAT format.
pub fn write_smat<W: Write>(m: &CsrMatrix, w: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for row in 0..m.nrows() {
        for (col, val) in m.row_iter(row) {
            writeln!(w, "{} {} {}", row, col, val)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Validate an SMAT header before anything is allocated from it: both
/// dimensions must fit the `u32` index space and the declared entry
/// count cannot exceed the number of cells.
fn validate_smat_header(nrows: usize, ncols: usize, nnz: usize) -> Result<(), IoError> {
    for (what, d) in [("nrows", nrows), ("ncols", ncols)] {
        if d > MAX_DIM {
            return Err(IoError::HeaderOverflow {
                line: 1,
                msg: format!("{what} = {d} exceeds the u32 index space"),
            });
        }
    }
    // If nrows*ncols overflows usize the cell count certainly exceeds
    // any representable nnz, so only the non-overflowing case can fail.
    if let Some(cells) = nrows.checked_mul(ncols) {
        if nnz > cells {
            return Err(IoError::HeaderOverflow {
                line: 1,
                msg: format!("nnz = {nnz} exceeds nrows*ncols = {cells}"),
            });
        }
    }
    Ok(())
}

/// Read a sparse matrix in SMAT format.
///
/// Hardened against adversarial input: garbage, truncated bodies,
/// out-of-range indices, non-finite values and overflowing header
/// claims all return a typed [`IoError`] — the reader never panics,
/// and memory use is bounded by the actual file content, not by what
/// the header promises.
pub fn read_smat<R: Read>(r: R) -> Result<CsrMatrix, IoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    let mut it = header.split_whitespace();
    let nrows: usize = next_num(&mut it, 1, "nrows")?;
    let ncols: usize = next_num(&mut it, 1, "ncols")?;
    let nnz: usize = next_num(&mut it, 1, "nnz")?;
    validate_smat_header(nrows, ncols, nnz)?;
    let mut trips = Vec::with_capacity(nnz.min(PREALLOC_CAP));
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 2;
        // Bail as soon as the body exceeds the header's promise — do
        // not buffer an unbounded surplus first.
        if trips.len() == nnz {
            return Err(IoError::CountMismatch {
                what: "entries",
                expected: nnz,
                found: nnz + 1,
            });
        }
        let mut it = line.split_whitespace();
        let row: usize = next_num(&mut it, lineno, "row")?;
        let col: usize = next_num(&mut it, lineno, "col")?;
        let val: f64 = next_num(&mut it, lineno, "value")?;
        if row >= nrows || col >= ncols {
            return Err(IoError::OutOfRange {
                line: lineno,
                msg: format!("entry ({row},{col}) outside {nrows}x{ncols}"),
            });
        }
        // "nan"/"inf" parse as f64 but poison every downstream kernel;
        // reject them here where the line number is still known.
        if !val.is_finite() {
            return Err(parse_err(
                lineno,
                format!("entry ({row},{col}) has non-finite value {val}"),
            ));
        }
        trips.push((row as VertexId, col as VertexId, val));
    }
    if trips.len() != nnz {
        return Err(IoError::CountMismatch {
            what: "entries",
            expected: nnz,
            found: trips.len(),
        });
    }
    Ok(CsrMatrix::from_triplets(nrows, ncols, trips))
}

fn next_num<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    line: usize,
    what: &str,
) -> Result<T, IoError> {
    it.next()
        .ok_or_else(|| parse_err(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| parse_err(line, format!("invalid {what}")))
}

/// Write a bipartite graph `L` (with weights) in SMAT format.
pub fn write_bipartite_smat<W: Write>(l: &BipartiteGraph, w: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {} {}", l.num_left(), l.num_right(), l.num_edges())?;
    for (a, b, e) in l.edge_iter() {
        writeln!(w, "{} {} {}", a, b, l.weight(e))?;
    }
    w.flush()?;
    Ok(())
}

/// Read a bipartite graph `L` from SMAT.
pub fn read_bipartite_smat<R: Read>(r: R) -> Result<BipartiteGraph, IoError> {
    let m = read_smat(r)?;
    let mut b = BipartiteGraphBuilder::new(m.nrows(), m.ncols());
    for row in 0..m.nrows() {
        for (col, val) in m.row_iter(row) {
            // read_smat already bounds- and finiteness-checks every
            // entry, but route through the fallible builder anyway so a
            // bad file can never panic this loader.
            b.try_add_edge(row as VertexId, col, val)?;
        }
    }
    Ok(b.build())
}

/// Write an undirected graph as an edge list with an `n m` header.
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Read an undirected graph from an edge list with an `n m` header.
///
/// Hardened against adversarial input the same way as [`read_smat`]:
/// overflowing headers, out-of-range endpoints, self-loops, and
/// truncated or padded bodies return typed [`IoError`]s instead of
/// panicking or allocating from unvalidated claims.
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph, IoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    let mut it = header.split_whitespace();
    let n: usize = next_num(&mut it, 1, "n")?;
    let m: usize = next_num(&mut it, 1, "m")?;
    if n > MAX_DIM {
        return Err(IoError::HeaderOverflow {
            line: 1,
            msg: format!("n = {n} exceeds the u32 index space"),
        });
    }
    // A simple graph holds at most n*(n-1)/2 edges; an overflowing
    // product cannot constrain any representable m.
    if let Some(pairs) = n.checked_mul(n.saturating_sub(1)).map(|p| p / 2) {
        if m > pairs {
            return Err(IoError::HeaderOverflow {
                line: 1,
                msg: format!("m = {m} exceeds n*(n-1)/2 = {pairs}"),
            });
        }
    }
    let mut b = GraphBuilder::new(n);
    let mut count = 0usize;
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 2;
        if count == m {
            return Err(IoError::CountMismatch {
                what: "edges",
                expected: m,
                found: m + 1,
            });
        }
        let mut it = line.split_whitespace();
        let u: VertexId = next_num(&mut it, lineno, "u")?;
        let v: VertexId = next_num(&mut it, lineno, "v")?;
        if u as usize >= n || v as usize >= n {
            return Err(IoError::OutOfRange {
                line: lineno,
                msg: format!("edge ({u},{v}) outside n = {n}"),
            });
        }
        // The builder's add_edge asserts on self-loops; untrusted input
        // must hit a typed error instead.
        if u == v {
            return Err(parse_err(lineno, format!("self-loop ({u},{v})")));
        }
        b.add_edge(u, v);
        count += 1;
    }
    if count != m {
        return Err(IoError::CountMismatch {
            what: "edges",
            expected: m,
            found: count,
        });
    }
    Ok(b.build())
}

/// Read an undirected graph from an *adjacency-matrix* SMAT (the
/// format the original netalign distribution uses for `A` and `B`):
/// entries are interpreted as edges, values ignored, the pattern
/// symmetrized, self-loops dropped.
pub fn read_graph_smat<R: Read>(r: R) -> Result<Graph, IoError> {
    let m = read_smat(r)?;
    if m.nrows() != m.ncols() {
        return Err(parse_err(
            1,
            format!(
                "adjacency matrix must be square, got {}x{}",
                m.nrows(),
                m.ncols()
            ),
        ));
    }
    let mut b = GraphBuilder::new(m.nrows());
    for row in 0..m.nrows() {
        for (col, _) in m.row_iter(row) {
            if (col as usize) != row {
                b.add_edge(row as VertexId, col);
            }
        }
    }
    Ok(b.build())
}

/// Write an undirected graph as a symmetric adjacency-matrix SMAT
/// (unit values), compatible with [`read_graph_smat`].
pub fn write_graph_smat<W: Write>(g: &Graph, w: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    writeln!(
        out,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        2 * g.num_edges()
    )?;
    for u in 0..g.num_vertices() as VertexId {
        for &v in g.neighbors(u) {
            writeln!(out, "{} {} 1", u, v)?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Convenience: write a graph to a file path.
pub fn write_edge_list_file(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience: read a graph from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Convenience: write a bipartite graph to a file path.
pub fn write_bipartite_smat_file(
    l: &BipartiteGraph,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    write_bipartite_smat(l, std::fs::File::create(path)?)
}

/// Convenience: read a bipartite graph from a file path.
pub fn read_bipartite_smat_file(path: impl AsRef<Path>) -> Result<BipartiteGraph, IoError> {
    read_bipartite_smat(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smat_roundtrip() {
        let m = CsrMatrix::from_triplets(3, 4, vec![(0, 1, 1.5), (2, 0, -2.0), (2, 3, 0.25)]);
        let mut buf = Vec::new();
        write_smat(&m, &mut buf).unwrap();
        let back = read_smat(&buf[..]).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn bipartite_roundtrip() {
        let l = BipartiteGraph::from_entries(2, 3, vec![(0, 0, 1.0), (0, 2, 0.5), (1, 1, 2.0)]);
        let mut buf = Vec::new();
        write_bipartite_smat(&l, &mut buf).unwrap();
        let back = read_bipartite_smat(&buf[..]).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn graph_smat_roundtrip_symmetrizes() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 3)]);
        let mut buf = Vec::new();
        write_graph_smat(&g, &mut buf).unwrap();
        let back = read_graph_smat(&buf[..]).unwrap();
        assert_eq!(g, back);
        // one-directional input symmetrizes, self-loops drop
        let text = "3 3 3\n0 1 1\n1 2 1\n2 2 1\n";
        let g2 = read_graph_smat(text.as_bytes()).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert!(g2.has_edge(1, 0));
    }

    #[test]
    fn graph_smat_rejects_rectangular() {
        let text = "2 3 1\n0 1 1\n";
        assert!(read_graph_smat(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_nnz() {
        let text = "2 2 3\n0 0 1.0\n";
        let err = read_smat(text.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            IoError::CountMismatch {
                expected: 3,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "2 2 1\n0 5 1.0\n";
        let err = read_smat(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn rejects_non_finite_value_with_line_number() {
        for bad in ["nan", "inf", "-inf"] {
            let text = format!("2 2 2\n0 0 1.0\n1 1 {bad}\n");
            let err = read_smat(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 3"), "missing line number: {msg}");
            assert!(msg.contains("non-finite"), "missing cause: {msg}");
        }
        let text = "2 2 1\n0 1 nan\n";
        assert!(read_bipartite_smat(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_garbage_header() {
        let text = "hello world\n";
        assert!(read_smat(text.as_bytes()).is_err());
    }

    #[test]
    fn huge_nnz_claim_is_rejected_without_allocating() {
        // nnz contradicts nrows*ncols: refused at the header.
        let text = "3 3 99999999999999\n0 0 1.0\n";
        let err = read_smat(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::HeaderOverflow { .. }), "{err}");
        // nnz plausible for the dims but absurd for the body: the
        // preallocation is capped, so this returns a typed mismatch
        // instead of reserving gigabytes up front.
        let text = "100000 100000 5000000000\n0 0 1.0\n";
        let err = read_smat(text.as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::CountMismatch {
                    expected: 5_000_000_000,
                    found: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn overflowing_dims_are_rejected() {
        for text in [
            "5000000000 4 1\n0 0 1.0\n",
            "4 5000000000 1\n0 0 1.0\n",
            "18446744073709551615 18446744073709551615 1\n0 0 1.0\n",
        ] {
            let err = read_smat(text.as_bytes()).unwrap_err();
            assert!(matches!(err, IoError::HeaderOverflow { .. }), "{err}");
        }
        let err = read_edge_list("5000000000 1\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::HeaderOverflow { .. }), "{err}");
    }

    #[test]
    fn surplus_entries_fail_fast() {
        let err = read_smat("2 2 1\n0 0 1.0\n1 1 2.0\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::CountMismatch {
                    expected: 1,
                    found: 2,
                    ..
                }
            ),
            "{err}"
        );
        let err = read_edge_list("3 1\n0 1\n1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::CountMismatch { .. }), "{err}");
    }

    #[test]
    fn edge_list_self_loop_is_a_typed_error_not_a_panic() {
        let err = read_edge_list("3 2\n0 1\n2 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn edge_list_rejects_impossible_edge_count() {
        let err = read_edge_list("3 100\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::HeaderOverflow { .. }), "{err}");
    }

    #[test]
    fn edge_list_out_of_range_endpoint_is_typed() {
        let err = read_edge_list("3 1\n0 9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::OutOfRange { .. }), "{err}");
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "2 2 1\n\n0 1 3.0\n\n";
        let m = read_smat(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
    }
}
