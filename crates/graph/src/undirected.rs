//! Simple undirected graphs — the alignment inputs `A` and `B`.
//!
//! Stored as sorted CSR adjacency. Self-loops are rejected and parallel
//! edges are merged at build time; `has_edge` is a binary search.

use crate::VertexId;

/// An undirected graph with `n` vertices and sorted adjacency lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    xadj: Vec<usize>,
    adjncy: Vec<VertexId>,
    num_edges: usize,
}

/// Incremental builder that collects edges and deduplicates on build.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Add an undirected edge `{u, v}`. Duplicate and reversed copies are
    /// merged when the graph is built; self-loops are rejected here.
    ///
    /// # Panics
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(u != v, "self-loops are not supported (u = v = {u})");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range"
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        let mut xadj = vec![0usize; self.n + 1];
        for &(u, v) in &self.edges {
            xadj[u as usize + 1] += 1;
            xadj[v as usize + 1] += 1;
        }
        for i in 0..self.n {
            xadj[i + 1] += xadj[i];
        }
        let mut adjncy = vec![0 as VertexId; 2 * m];
        let mut next = xadj.clone();
        for &(u, v) in &self.edges {
            adjncy[next[u as usize]] = v;
            next[u as usize] += 1;
            adjncy[next[v as usize]] = u;
            next[v as usize] += 1;
        }
        // Each neighbourhood is already sorted: edges were inserted in
        // global sorted order, and within a vertex the partner ids of
        // (u, v) pairs with u fixed ascend... but mixed u/v roles break
        // that, so sort each list explicitly.
        for i in 0..self.n {
            adjncy[xadj[i]..xadj[i + 1]].sort_unstable();
        }
        Graph {
            n: self.n,
            xadj,
            adjncy,
            num_edges: m,
        }
    }
}

impl Graph {
    /// Build from an explicit edge list (convenience wrapper).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            xadj: vec![0; n + 1],
            adjncy: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// True when `{u, v}` is an edge (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate over all edges, each once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The subgraph induced by `vertices` (which need not be sorted or
    /// unique), with vertices relabelled `0..k` in the order of first
    /// appearance. Returns the subgraph and the old-id list
    /// (`mapping[new_id] = old_id`).
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut new_id = vec![VertexId::MAX; self.n];
        let mut mapping = Vec::new();
        for &v in vertices {
            if new_id[v as usize] == VertexId::MAX {
                new_id[v as usize] = mapping.len() as VertexId;
                mapping.push(v);
            }
        }
        let mut b = GraphBuilder::new(mapping.len());
        for &v in &mapping {
            for &u in self.neighbors(v) {
                if new_id[u as usize] != VertexId::MAX && u > v {
                    b.add_edge(new_id[v as usize], new_id[u as usize]);
                }
            }
        }
        (b.build(), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_leaf() -> Graph {
        Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_leaf();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn duplicates_and_reversals_merge() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_leaf();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, vec![(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle_plus_leaf();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let _ = Graph::from_edges(2, vec![(1, 1)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle_plus_leaf();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // the triangle
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, map2) = g.induced_subgraph(&[3, 2]);
        assert_eq!(sub2.num_edges(), 1); // the leaf edge (2,3)
        assert_eq!(map2, vec![3, 2]);
        assert!(sub2.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = triangle_plus_leaf();
        let (sub, map) = g.induced_subgraph(&[1, 1, 0]);
        assert_eq!(map, vec![1, 0]);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.neighbors(1).is_empty());
        assert_eq!(g.max_degree(), 0);
    }
}
