//! `NACS` — NetAlign CSR Store, the on-disk CSR container for
//! out-of-core alignment.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"NACS"
//!      4     2  version (currently 1)
//!      6     2  flags   (bit 0: unit weights — no weights section;
//!                        bit 1: transpose permutation section present)
//!      8     8  endian probe 0x0102030405060708
//!     16     8  nrows
//!     24     8  ncols
//!     32     8  nnz
//!     40    96  section table: 4 × { offset u64, len u64, fnv1a64 u64 }
//!               (indptr, indices, weights, perm; absent sections zeroed)
//!    136     8  fnv1a64 of header bytes 0..136
//!    144   112  reserved (zero)
//!    256     …  sections, each at an 8-aligned offset, zero-padded
//! ```
//!
//! Sections: `indptr` is `nrows+1` × u64, `indices` is `nnz` × u32,
//! `weights` is `nnz` × f64 (absent when all values are 1.0 and never
//! read — the squares matrix case), `perm` is `nnz` × u64 (the
//! transpose permutation of a structurally symmetric matrix, see
//! [`crate::csr::CsrMatrix::transpose_permutation`]).
//!
//! Files are written through the same atomic discipline as checkpoints:
//! stream to `<path>.tmp`, fsync, rename over `path`, fsync the
//! directory. [`CsrView::open`] verifies every checksum and the CSR
//! structural invariants by *streaming* the file with a small read
//! buffer (never through the map, so verification does not inflate
//! resident memory), then memory-maps it read-only.

use crate::csr::CsrMatrix;
use crate::mmap::{Advice, Mmap};
use crate::VertexId;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File format version written by this crate.
pub const NACS_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"NACS";
const ENDIAN_PROBE: u64 = 0x0102_0304_0506_0708;
const HEADER_LEN: usize = 256;
const HEADER_HASHED: usize = 136;
const FLAG_UNIT_WEIGHTS: u16 = 1;
const FLAG_HAS_PERM: u16 = 2;
const KNOWN_FLAGS: u16 = FLAG_UNIT_WEIGHTS | FLAG_HAS_PERM;
const VERIFY_BUF: usize = 1 << 20;

/// The four section slots of a `NACS` file, in on-disk order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// Row pointer array, `nrows + 1` × u64.
    Indptr,
    /// Column indices, `nnz` × u32.
    Indices,
    /// Edge weights, `nnz` × f64 (absent under unit weights).
    Weights,
    /// Transpose permutation, `nnz` × u64 (optional).
    Perm,
}

impl Section {
    fn index(self) -> usize {
        match self {
            Section::Indptr => 0,
            Section::Indices => 1,
            Section::Weights => 2,
            Section::Perm => 3,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Section::Indptr => "indptr",
            Section::Indices => "indices",
            Section::Weights => "weights",
            Section::Perm => "perm",
        }
    }
}

/// Errors from writing or opening a `NACS` file.
#[derive(Debug)]
pub enum NacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid `NACS` container (bad magic, truncated,
    /// inconsistent sizes, invalid CSR structure, …).
    Format(String),
    /// A stored checksum does not match the file contents.
    Checksum(&'static str),
    /// The file is valid but this target cannot map it
    /// (non-64-bit or big-endian host).
    Unsupported(&'static str),
}

impl std::fmt::Display for NacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NacsError::Io(e) => write!(f, "nacs i/o error: {e}"),
            NacsError::Format(m) => write!(f, "nacs format error: {m}"),
            NacsError::Checksum(s) => write!(f, "nacs checksum mismatch in {s} section"),
            NacsError::Unsupported(m) => write!(f, "nacs unsupported on this target: {m}"),
        }
    }
}

impl std::error::Error for NacsError {}

impl From<io::Error> for NacsError {
    fn from(e: io::Error) -> Self {
        NacsError::Io(e)
    }
}

// ---------------------------------------------------------------------
// FNV-1a 64
// ---------------------------------------------------------------------

/// Streaming FNV-1a 64-bit hasher (same family the checkpoint format
/// uses; dependency-free and fast enough to stream at I/O speed).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Fold bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct OpenSection {
    section: Section,
    hasher: Fnv64,
    written: u64,
    expected: u64,
}

/// Streaming writer producing a `NACS` file atomically.
///
/// Sections must be written in on-disk order via
/// [`begin_section`](NacsWriter::begin_section) /
/// [`end_section`](NacsWriter::end_section); [`finish`](NacsWriter::finish)
/// seals the header and renames the temporary file into place. If the
/// writer is dropped before `finish`, the temporary file is removed.
pub struct NacsWriter {
    out: Option<BufWriter<File>>,
    tmp: PathBuf,
    path: PathBuf,
    nrows: u64,
    ncols: u64,
    nnz: u64,
    flags: u16,
    next_section: usize,
    table: [(u64, u64, u64); 4],
    pos: u64,
    cur: Option<OpenSection>,
}

impl NacsWriter {
    /// Open a writer for `path` with the given shape. `unit_weights`
    /// omits the weights section; `has_perm` requires a perm section.
    pub fn create(
        path: &Path,
        nrows: usize,
        ncols: usize,
        nnz: usize,
        unit_weights: bool,
        has_perm: bool,
    ) -> Result<NacsWriter, NacsError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let file = File::create(&tmp)?;
        let mut out = BufWriter::with_capacity(VERIFY_BUF, file);
        out.write_all(&[0u8; HEADER_LEN])?;
        let mut flags = 0u16;
        if unit_weights {
            flags |= FLAG_UNIT_WEIGHTS;
        }
        if has_perm {
            flags |= FLAG_HAS_PERM;
        }
        Ok(NacsWriter {
            out: Some(out),
            tmp,
            path: path.to_path_buf(),
            nrows: nrows as u64,
            ncols: ncols as u64,
            nnz: nnz as u64,
            flags,
            next_section: 0,
            table: [(0, 0, 0); 4],
            pos: HEADER_LEN as u64,
            cur: None,
        })
    }

    fn expected_sections(&self) -> Vec<Section> {
        let mut v = vec![Section::Indptr, Section::Indices];
        if self.flags & FLAG_UNIT_WEIGHTS == 0 {
            v.push(Section::Weights);
        }
        if self.flags & FLAG_HAS_PERM != 0 {
            v.push(Section::Perm);
        }
        v
    }

    fn expected_len(&self, s: Section) -> u64 {
        match s {
            Section::Indptr => (self.nrows + 1) * 8,
            Section::Indices => self.nnz * 4,
            Section::Weights => self.nnz * 8,
            Section::Perm => self.nnz * 8,
        }
    }

    /// Start the next section; must match the expected order.
    pub fn begin_section(&mut self, s: Section) -> Result<(), NacsError> {
        if self.cur.is_some() {
            return Err(NacsError::Format("section already open".into()));
        }
        let order = self.expected_sections();
        let expect = order.get(self.next_section).copied();
        if expect != Some(s) {
            return Err(NacsError::Format(format!(
                "section {} out of order (expected {:?})",
                s.name(),
                expect.map(Section::name)
            )));
        }
        // 8-align the section start.
        let pad = (8 - (self.pos % 8)) % 8;
        if pad > 0 {
            self.out
                .as_mut()
                .unwrap()
                .write_all(&[0u8; 8][..pad as usize])?;
            self.pos += pad;
        }
        self.table[s.index()].0 = self.pos;
        self.cur = Some(OpenSection {
            section: s,
            hasher: Fnv64::new(),
            written: 0,
            expected: self.expected_len(s),
        });
        Ok(())
    }

    /// Append raw bytes to the open section.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), NacsError> {
        let cur = self
            .cur
            .as_mut()
            .ok_or_else(|| NacsError::Format("no open section".into()))?;
        cur.hasher.update(bytes);
        cur.written += bytes.len() as u64;
        self.out.as_mut().unwrap().write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Append u64 values (little-endian) to the open section.
    pub fn write_u64s(&mut self, vals: &[u64]) -> Result<(), NacsError> {
        #[cfg(target_endian = "little")]
        {
            let bytes =
                unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
            self.write(bytes)
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &v in vals {
                self.write(&v.to_le_bytes())?;
            }
            Ok(())
        }
    }

    /// Append u32 values (little-endian) to the open section.
    pub fn write_u32s(&mut self, vals: &[u32]) -> Result<(), NacsError> {
        #[cfg(target_endian = "little")]
        {
            let bytes =
                unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
            self.write(bytes)
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &v in vals {
                self.write(&v.to_le_bytes())?;
            }
            Ok(())
        }
    }

    /// Append f64 values (little-endian bit patterns) to the open section.
    pub fn write_f64s(&mut self, vals: &[f64]) -> Result<(), NacsError> {
        #[cfg(target_endian = "little")]
        {
            let bytes =
                unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
            self.write(bytes)
        }
        #[cfg(not(target_endian = "little"))]
        {
            for &v in vals {
                self.write(&v.to_bits().to_le_bytes())?;
            }
            Ok(())
        }
    }

    /// Close the open section, checking its length against the header
    /// shape and recording its checksum.
    pub fn end_section(&mut self) -> Result<(), NacsError> {
        let cur = self
            .cur
            .take()
            .ok_or_else(|| NacsError::Format("no open section".into()))?;
        if cur.written != cur.expected {
            return Err(NacsError::Format(format!(
                "section {} has {} bytes, expected {}",
                cur.section.name(),
                cur.written,
                cur.expected
            )));
        }
        let e = &mut self.table[cur.section.index()];
        e.1 = cur.written;
        e.2 = cur.hasher.finish();
        self.next_section += 1;
        Ok(())
    }

    /// Seal the header, fsync, and atomically rename into place.
    pub fn finish(mut self) -> Result<(), NacsError> {
        if self.cur.is_some() {
            return Err(NacsError::Format("finish with open section".into()));
        }
        let order = self.expected_sections();
        if self.next_section != order.len() {
            return Err(NacsError::Format(format!(
                "finish after {} of {} sections",
                self.next_section,
                order.len()
            )));
        }
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0..4].copy_from_slice(&MAGIC);
        hdr[4..6].copy_from_slice(&NACS_VERSION.to_le_bytes());
        hdr[6..8].copy_from_slice(&self.flags.to_le_bytes());
        hdr[8..16].copy_from_slice(&ENDIAN_PROBE.to_le_bytes());
        hdr[16..24].copy_from_slice(&self.nrows.to_le_bytes());
        hdr[24..32].copy_from_slice(&self.ncols.to_le_bytes());
        hdr[32..40].copy_from_slice(&self.nnz.to_le_bytes());
        for (i, &(off, len, sum)) in self.table.iter().enumerate() {
            let base = 40 + i * 24;
            hdr[base..base + 8].copy_from_slice(&off.to_le_bytes());
            hdr[base + 8..base + 16].copy_from_slice(&len.to_le_bytes());
            hdr[base + 16..base + 24].copy_from_slice(&sum.to_le_bytes());
        }
        let hsum = fnv64(&hdr[..HEADER_HASHED]);
        hdr[HEADER_HASHED..HEADER_HASHED + 8].copy_from_slice(&hsum.to_le_bytes());

        let mut out = self.out.take().unwrap();
        out.flush()?;
        let mut file = out
            .into_inner()
            .map_err(|e| NacsError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&hdr)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for NacsWriter {
    fn drop(&mut self) {
        if self.out.is_some() {
            // finish() was never reached; drop the partial temp file.
            self.out = None;
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

// ---------------------------------------------------------------------
// Reader / mapped view
// ---------------------------------------------------------------------

struct Header {
    flags: u16,
    nrows: u64,
    ncols: u64,
    nnz: u64,
    table: [(u64, u64, u64); 4],
}

fn parse_header(hdr: &[u8; HEADER_LEN]) -> Result<Header, NacsError> {
    if hdr[0..4] != MAGIC {
        return Err(NacsError::Format("bad magic".into()));
    }
    let version = u16::from_le_bytes([hdr[4], hdr[5]]);
    if version != NACS_VERSION {
        return Err(NacsError::Format(format!("unknown version {version}")));
    }
    let flags = u16::from_le_bytes([hdr[6], hdr[7]]);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(NacsError::Format(format!("unknown flags {flags:#x}")));
    }
    let rd64 = |at: usize| u64::from_le_bytes(hdr[at..at + 8].try_into().unwrap());
    if rd64(8) != ENDIAN_PROBE {
        return Err(NacsError::Format("endian probe mismatch".into()));
    }
    let stored = rd64(HEADER_HASHED);
    if fnv64(&hdr[..HEADER_HASHED]) != stored {
        return Err(NacsError::Checksum("header"));
    }
    // The reserved tail of the header sits outside the checksummed
    // prefix; the writer zeroes it, so any other value is corruption.
    if hdr[HEADER_HASHED + 8..].iter().any(|&b| b != 0) {
        return Err(NacsError::Format("nonzero header padding".into()));
    }
    let mut table = [(0u64, 0u64, 0u64); 4];
    for (i, e) in table.iter_mut().enumerate() {
        let base = 40 + i * 24;
        *e = (rd64(base), rd64(base + 8), rd64(base + 16));
    }
    Ok(Header {
        flags,
        nrows: rd64(16),
        ncols: rd64(24),
        nnz: rd64(32),
        table,
    })
}

/// A read-only, memory-mapped view of a `NACS` CSR matrix.
///
/// Cloning is cheap (the map is shared through an [`Arc`]). Row
/// pointers and the optional transpose permutation are exposed as
/// `&[usize]` by reinterpreting the on-disk little-endian u64 sections;
/// [`CsrView::open`] refuses to open on targets where that is unsound.
#[derive(Clone)]
pub struct CsrView {
    map: Arc<Mmap>,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    flags: u16,
    // byte ranges within the map, (offset, len); absent => (0, 0)
    table: [(usize, usize); 4],
}

fn cast_slice<T>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(bytes.len() % size, 0);
    assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
}

impl CsrView {
    /// Open and fully verify a `NACS` file, then map it.
    ///
    /// Verification streams the file with a bounded buffer: header
    /// sanity, per-section FNV checksums, `indptr` monotonicity and
    /// terminal value, and `indices`/`perm` bounds. The map itself is
    /// only created after verification succeeds.
    pub fn open(path: &Path) -> Result<CsrView, NacsError> {
        if !cfg!(target_pointer_width = "64") {
            return Err(NacsError::Unsupported("needs a 64-bit host"));
        }
        if !cfg!(target_endian = "little") {
            return Err(NacsError::Unsupported("needs a little-endian host"));
        }
        let mut file = File::open(path)?;
        let flen = file.metadata()?.len();
        if flen < HEADER_LEN as u64 {
            return Err(NacsError::Format("file shorter than header".into()));
        }
        let mut hdr = [0u8; HEADER_LEN];
        file.read_exact(&mut hdr)?;
        let h = parse_header(&hdr)?;

        let present = |s: Section| match s {
            Section::Indptr | Section::Indices => true,
            Section::Weights => h.flags & FLAG_UNIT_WEIGHTS == 0,
            Section::Perm => h.flags & FLAG_HAS_PERM != 0,
        };
        let expected_len = |s: Section| -> Result<u64, NacsError> {
            let (count, width) = match s {
                Section::Indptr => (h.nrows.checked_add(1), 8u64),
                Section::Indices => (Some(h.nnz), 4),
                Section::Weights | Section::Perm => (Some(h.nnz), 8),
            };
            count
                .and_then(|c| c.checked_mul(width))
                .ok_or_else(|| NacsError::Format("shape overflow".into()))
        };

        let mut expected_end = HEADER_LEN as u64;
        for s in [
            Section::Indptr,
            Section::Indices,
            Section::Weights,
            Section::Perm,
        ] {
            let (off, len, _) = h.table[s.index()];
            if !present(s) {
                if off != 0 || len != 0 {
                    return Err(NacsError::Format(format!(
                        "unexpected {} section",
                        s.name()
                    )));
                }
                continue;
            }
            if len != expected_len(s)? {
                return Err(NacsError::Format(format!(
                    "section {} length {} does not match shape",
                    s.name(),
                    len
                )));
            }
            if off % 8 != 0 || off < HEADER_LEN as u64 {
                return Err(NacsError::Format(format!(
                    "section {} misaligned at {}",
                    s.name(),
                    off
                )));
            }
            let end = off
                .checked_add(len)
                .ok_or_else(|| NacsError::Format("section overflow".into()))?;
            if end > flen {
                return Err(NacsError::Format(format!(
                    "section {} extends past end of file",
                    s.name()
                )));
            }
            expected_end = expected_end.max(end);
            verify_section(&mut file, s, off, len, h.table[s.index()].2, &h)?;
        }
        // The writer ends the file exactly at the last section; surplus
        // bytes contradict the section table.
        if flen != expected_end {
            return Err(NacsError::Format(format!(
                "file length {flen} does not match section table end {expected_end}"
            )));
        }

        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        if map.len() < flen as usize {
            return Err(NacsError::Format("file shrank while opening".into()));
        }
        let mut table = [(0usize, 0usize); 4];
        for i in 0..4 {
            table[i] = (h.table[i].0 as usize, h.table[i].1 as usize);
        }
        Ok(CsrView {
            map: Arc::new(map),
            nrows: h.nrows as usize,
            ncols: h.ncols as usize,
            nnz: h.nnz as usize,
            flags: h.flags,
            table,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// True if the file carries no weights section (all values 1.0).
    pub fn unit_weights(&self) -> bool {
        self.flags & FLAG_UNIT_WEIGHTS != 0
    }

    fn section_bytes(&self, s: Section) -> &[u8] {
        let (off, len) = self.table[s.index()];
        &self.map.as_slice()[off..off + len]
    }

    /// Row pointer array (reinterpreted from on-disk u64).
    pub fn rowptr(&self) -> &[usize] {
        cast_slice::<usize>(self.section_bytes(Section::Indptr))
    }

    /// Column index array.
    pub fn colidx(&self) -> &[VertexId] {
        cast_slice::<VertexId>(self.section_bytes(Section::Indices))
    }

    /// Weights, if stored.
    pub fn vals(&self) -> Option<&[f64]> {
        if self.unit_weights() {
            None
        } else {
            Some(cast_slice::<f64>(self.section_bytes(Section::Weights)))
        }
    }

    /// Transpose permutation, if stored.
    pub fn perm(&self) -> Option<&[usize]> {
        if self.flags & FLAG_HAS_PERM != 0 {
            Some(cast_slice::<usize>(self.section_bytes(Section::Perm)))
        } else {
            None
        }
    }

    /// Entry range of one row.
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        let p = self.rowptr();
        p[row]..p[row + 1]
    }

    /// Column indices of one row.
    pub fn row_cols(&self, row: usize) -> &[VertexId] {
        &self.colidx()[self.row_range(row)]
    }

    /// Advise the kernel about the access pattern of one section.
    pub fn advise_section(&self, s: Section, advice: Advice) {
        let (off, len) = self.table[s.index()];
        if len > 0 {
            self.map.advise(off..off + len, advice);
        }
    }

    /// Tell the kernel a byte sub-range of a section is not needed soon.
    pub fn release_entries(&self, s: Section, elems: std::ops::Range<usize>) {
        let width = match s {
            Section::Indices => 4,
            _ => 8,
        };
        let (off, len) = self.table[s.index()];
        let start = off + (elems.start * width).min(len);
        let end = off + (elems.end * width).min(len);
        if start < end {
            self.map.advise(start..end, Advice::DontNeed);
        }
    }

    /// Materialize as an in-core [`CsrMatrix`] (tests and small inputs;
    /// unit-weight files get all-1.0 values).
    pub fn to_csr(&self) -> CsrMatrix {
        let rowptr = self.rowptr().to_vec();
        let colidx = self.colidx().to_vec();
        let vals = match self.vals() {
            Some(v) => v.to_vec(),
            None => vec![1.0; self.nnz],
        };
        CsrMatrix::from_raw(self.nrows, self.ncols, rowptr, colidx, vals)
    }
}

impl std::fmt::Debug for CsrView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrView")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz)
            .field("unit_weights", &self.unit_weights())
            .field("has_perm", &(self.flags & FLAG_HAS_PERM != 0))
            .finish()
    }
}

/// Stream one section, folding the checksum and validating structure.
fn verify_section(
    file: &mut File,
    s: Section,
    off: u64,
    len: u64,
    stored_sum: u64,
    h: &Header,
) -> Result<(), NacsError> {
    file.seek(SeekFrom::Start(off))?;
    let mut remaining = len;
    let mut hasher = Fnv64::new();
    let mut buf = vec![0u8; VERIFY_BUF];
    // Structural state carried across buffer chunks.
    let mut prev_ptr = 0u64;
    let mut first = true;
    while remaining > 0 {
        let take = remaining.min(VERIFY_BUF as u64) as usize;
        file.read_exact(&mut buf[..take])
            .map_err(|_| NacsError::Format(format!("section {} truncated", s.name())))?;
        hasher.update(&buf[..take]);
        match s {
            Section::Indptr => {
                for c in buf[..take].chunks_exact(8) {
                    let v = u64::from_le_bytes(c.try_into().unwrap());
                    if first {
                        if v != 0 {
                            return Err(NacsError::Format("indptr does not start at 0".into()));
                        }
                        first = false;
                    } else if v < prev_ptr {
                        return Err(NacsError::Format("indptr not monotone".into()));
                    }
                    if v > h.nnz {
                        return Err(NacsError::Format("indptr exceeds nnz".into()));
                    }
                    prev_ptr = v;
                }
            }
            Section::Indices => {
                for c in buf[..take].chunks_exact(4) {
                    let v = u32::from_le_bytes(c.try_into().unwrap());
                    if (v as u64) >= h.ncols {
                        return Err(NacsError::Format("column index out of range".into()));
                    }
                }
            }
            Section::Perm => {
                for c in buf[..take].chunks_exact(8) {
                    let v = u64::from_le_bytes(c.try_into().unwrap());
                    if v >= h.nnz {
                        return Err(NacsError::Format("perm entry out of range".into()));
                    }
                }
            }
            Section::Weights => {}
        }
        remaining -= take as u64;
    }
    if s == Section::Indptr && prev_ptr != h.nnz {
        return Err(NacsError::Format("indptr does not end at nnz".into()));
    }
    if hasher.finish() != stored_sum {
        return Err(NacsError::Checksum(s.name()));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// CsrMatrix convenience
// ---------------------------------------------------------------------

impl CsrMatrix {
    /// Write this matrix to a `NACS` file. `unit_weights` drops the
    /// value array (callers asserting values are all 1.0 and unread,
    /// like the squares matrix); `perm` optionally stores a transpose
    /// permutation alongside.
    pub fn write_nacs(
        &self,
        path: &Path,
        unit_weights: bool,
        perm: Option<&[usize]>,
    ) -> Result<(), NacsError> {
        if let Some(p) = perm {
            assert_eq!(p.len(), self.nnz(), "perm length must equal nnz");
        }
        let mut w = NacsWriter::create(
            path,
            self.nrows(),
            self.ncols(),
            self.nnz(),
            unit_weights,
            perm.is_some(),
        )?;
        w.begin_section(Section::Indptr)?;
        for chunk in self.rowptr().chunks(VERIFY_BUF / 8) {
            // usize → u64 on-disk width
            let tmp: Vec<u64> = chunk.iter().map(|&v| v as u64).collect();
            w.write_u64s(&tmp)?;
        }
        w.end_section()?;
        w.begin_section(Section::Indices)?;
        w.write_u32s(self.colidx())?;
        w.end_section()?;
        if !unit_weights {
            w.begin_section(Section::Weights)?;
            w.write_f64s(self.vals())?;
            w.end_section()?;
        }
        if let Some(p) = perm {
            w.begin_section(Section::Perm)?;
            for chunk in p.chunks(VERIFY_BUF / 8) {
                let tmp: Vec<u64> = chunk.iter().map(|&v| v as u64).collect();
                w.write_u64s(&tmp)?;
            }
            w.end_section()?;
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("netalign-nacs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_matrix() -> CsrMatrix {
        // 4x4 structurally symmetric with empty diagonal.
        CsrMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 1, 1.5),
                (1, 0, 1.5),
                (0, 3, 2.0),
                (3, 0, 2.0),
                (1, 2, 0.25),
                (2, 1, 0.25),
            ],
        )
    }

    #[test]
    fn round_trip_with_weights_and_perm() {
        let m = sample_matrix();
        let perm = m.transpose_permutation();
        let path = tmpdir("rt").join("m.nacs");
        m.write_nacs(&path, false, Some(perm.as_slice())).unwrap();
        let v = CsrView::open(&path).unwrap();
        assert_eq!(v.nrows(), 4);
        assert_eq!(v.ncols(), 4);
        assert_eq!(v.nnz(), m.nnz());
        assert_eq!(v.rowptr(), m.rowptr());
        assert_eq!(v.colidx(), m.colidx());
        assert_eq!(v.vals().unwrap(), m.vals());
        assert_eq!(v.perm().unwrap(), perm.as_slice());
        let back = v.to_csr();
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.vals(), m.vals());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unit_weights_omit_section_and_read_as_ones() {
        let m = sample_matrix();
        let path = tmpdir("unit").join("m.nacs");
        m.write_nacs(&path, true, None).unwrap();
        let v = CsrView::open(&path).unwrap();
        assert!(v.unit_weights());
        assert!(v.vals().is_none());
        assert!(v.perm().is_none());
        assert!(v.to_csr().vals().iter().all(|&x| x == 1.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = CsrMatrix::from_triplets(3, 3, Vec::new());
        let path = tmpdir("zero").join("m.nacs");
        m.write_nacs(&path, true, None).unwrap();
        let v = CsrView::open(&path).unwrap();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.rowptr(), &[0, 0, 0, 0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let m = sample_matrix();
        let path = tmpdir("flip").join("m.nacs");
        m.write_nacs(&path, false, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit somewhere in the weights section (the tail).
        let at = bytes.len() - 5;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match CsrView::open(&path) {
            Err(NacsError::Checksum(_)) | Err(NacsError::Format(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_is_rejected_at_every_cut() {
        let m = sample_matrix();
        let path = tmpdir("trunc").join("m.nacs");
        m.write_nacs(&path, false, Some(m.transpose_permutation().as_slice()))
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in (0..bytes.len()).step_by(7) {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                CsrView::open(&path).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let m = sample_matrix();
        let path = tmpdir("magic").join("m.nacs");
        m.write_nacs(&path, true, None).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(CsrView::open(&path), Err(NacsError::Format(_))));

        let mut bad = good.clone();
        bad[4] = 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(CsrView::open(&path), Err(NacsError::Format(_))));

        // Header field tampering trips the header checksum.
        let mut bad = good.clone();
        bad[32] ^= 0x01; // nnz
        std::fs::write(&path, &bad).unwrap();
        assert!(CsrView::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_enforces_section_order_and_length() {
        let path = tmpdir("order").join("m.nacs");
        let mut w = NacsWriter::create(&path, 1, 1, 1, true, false).unwrap();
        assert!(w.begin_section(Section::Indices).is_err());
        w.begin_section(Section::Indptr).unwrap();
        w.write_u64s(&[0]).unwrap();
        assert!(w.end_section().is_err()); // 1 of 2 entries written
        assert!(!path.exists());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
