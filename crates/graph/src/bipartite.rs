//! The weighted bipartite graph `L` between `V_A` and `V_B`.
//!
//! `L` is the heart of the network-alignment formulation: a matching in
//! `L` *is* an alignment. Every per-edge quantity the aligners
//! manipulate (`w`, `x`, `y`, `z`, `d`, …) is a dense `Vec<f64>` indexed
//! by this graph's **global edge ordering** (row-major by the `V_A`
//! side, then by the `V_B` endpoint). The graph is stored as dual CSR so
//! both "all edges of a vertex in `V_A`" and "all edges of a vertex in
//! `V_B`" scans are contiguous; each CSR carries the global edge id so
//! edge-indexed vectors can be read from either side.

use crate::{EdgeId, VertexId};

/// Validation failures when building or mutating a [`BipartiteGraph`].
///
/// Every variant carries the offending entry so callers (e.g. file
/// loaders) can point at the exact bad input instead of aborting with
/// a panic backtrace.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An endpoint index is not smaller than its side's vertex count.
    VertexOutOfRange {
        /// `"left"` (`V_A`) or `"right"` (`V_B`).
        side: &'static str,
        /// The offending vertex id.
        vertex: VertexId,
        /// The size of that side.
        size: usize,
    },
    /// An edge weight is NaN or infinite.
    NonFiniteWeight {
        /// Left endpoint of the offending entry.
        a: VertexId,
        /// Right endpoint of the offending entry.
        b: VertexId,
        /// The non-finite weight.
        w: f64,
    },
    /// A replacement weight vector has the wrong length.
    WeightLengthMismatch {
        /// `num_edges()` of the graph.
        expected: usize,
        /// Length of the supplied vector.
        found: usize,
    },
    /// A replacement weight vector contains a non-finite value.
    NonFiniteWeightAt {
        /// Global edge id of the offending value.
        edge: EdgeId,
        /// The non-finite weight.
        w: f64,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { side, vertex, size } => {
                write!(f, "{side} vertex {vertex} out of range ({size} {side})")
            }
            GraphError::NonFiniteWeight { a, b, w } => {
                write!(f, "edge ({a},{b}) weight must be finite, got {w}")
            }
            GraphError::WeightLengthMismatch { expected, found } => {
                write!(f, "weight vector length {found} != {expected} edges")
            }
            GraphError::NonFiniteWeightAt { edge, w } => {
                write!(f, "weight of edge {edge} must be finite, got {w}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A weighted bipartite graph with a fixed global edge ordering.
///
/// ```
/// use netalign_graph::BipartiteGraph;
///
/// let l = BipartiteGraph::from_entries(2, 2, vec![
///     (0, 0, 1.0), (0, 1, 0.5), (1, 1, 2.0),
/// ]);
/// assert_eq!(l.num_edges(), 3);
/// // Global edge ids are row-major: (0,0)=0, (0,1)=1, (1,1)=2.
/// assert_eq!(l.edge_id(1, 1), Some(2));
/// assert_eq!(l.left_neighbors(0), &[0, 1]);
/// assert_eq!(l.right_edges(1).collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BipartiteGraph {
    na: usize,
    nb: usize,
    /// Edge list in global order: `edges[e] = (a, b)`.
    edges: Vec<(VertexId, VertexId)>,
    /// Edge weights in global order.
    weights: Vec<f64>,
    /// CSR over the `V_A` side. `a_ptr[a]..a_ptr[a+1]` indexes both
    /// `a_adj` (the `V_B` endpoints, sorted) — and because the global
    /// ordering is row-major, the global edge ids of vertex `a` are
    /// exactly that same range.
    a_ptr: Vec<usize>,
    a_adj: Vec<VertexId>,
    /// CSR over the `V_B` side with explicit global edge ids.
    b_ptr: Vec<usize>,
    b_adj: Vec<VertexId>,
    b_eid: Vec<EdgeId>,
}

/// Builder collecting `(a, b, w)` entries; duplicates keep the maximum
/// weight (alignment candidate lists occasionally repeat pairs).
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraphBuilder {
    na: usize,
    nb: usize,
    entries: Vec<(VertexId, VertexId, f64)>,
}

impl BipartiteGraphBuilder {
    /// Start a builder for a bipartite graph with `na` left and `nb`
    /// right vertices.
    pub fn new(na: usize, nb: usize) -> Self {
        Self {
            na,
            nb,
            entries: Vec::new(),
        }
    }

    /// Add a candidate match `(a, b)` with weight `w`, reporting bad
    /// entries as a typed [`GraphError`] instead of panicking — the
    /// entry point for untrusted input (file loaders).
    pub fn try_add_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
        w: f64,
    ) -> Result<&mut Self, GraphError> {
        if (a as usize) >= self.na {
            return Err(GraphError::VertexOutOfRange {
                side: "left",
                vertex: a,
                size: self.na,
            });
        }
        if (b as usize) >= self.nb {
            return Err(GraphError::VertexOutOfRange {
                side: "right",
                vertex: b,
                size: self.nb,
            });
        }
        if !w.is_finite() {
            return Err(GraphError::NonFiniteWeight { a, b, w });
        }
        self.entries.push((a, b, w));
        Ok(self)
    }

    /// Add a candidate match `(a, b)` with weight `w`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or `w` is not finite;
    /// use [`Self::try_add_edge`] for untrusted input.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId, w: f64) -> &mut Self {
        match self.try_add_edge(a, b, w) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of entries added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.entries.len()
    }

    /// Finalize into a [`BipartiteGraph`].
    pub fn build(mut self) -> BipartiteGraph {
        self.entries
            .sort_unstable_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)).then(x.2.total_cmp(&y.2)));
        // keep max weight among duplicates: after the sort above the last
        // duplicate has the largest weight, so dedup keeping the last.
        let mut dedup: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(self.entries.len());
        for e in self.entries {
            match dedup.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => *last = e,
                _ => dedup.push(e),
            }
        }
        let m = dedup.len();
        let mut edges = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut a_ptr = vec![0usize; self.na + 1];
        let mut a_adj = Vec::with_capacity(m);
        for &(a, b, w) in &dedup {
            edges.push((a, b));
            weights.push(w);
            a_adj.push(b);
            a_ptr[a as usize + 1] = edges.len();
        }
        for i in 1..=self.na {
            if a_ptr[i] < a_ptr[i - 1] {
                a_ptr[i] = a_ptr[i - 1];
            }
        }
        // Column-side CSR with explicit edge ids via counting sort.
        let mut b_ptr = vec![0usize; self.nb + 1];
        for &(_, b) in &edges {
            b_ptr[b as usize + 1] += 1;
        }
        for i in 0..self.nb {
            b_ptr[i + 1] += b_ptr[i];
        }
        let mut b_adj = vec![0 as VertexId; m];
        let mut b_eid = vec![0 as EdgeId; m];
        let mut next = b_ptr.clone();
        for (eid, &(a, b)) in edges.iter().enumerate() {
            let slot = next[b as usize];
            next[b as usize] += 1;
            b_adj[slot] = a;
            b_eid[slot] = eid;
        }
        BipartiteGraph {
            na: self.na,
            nb: self.nb,
            edges,
            weights,
            a_ptr,
            a_adj,
            b_ptr,
            b_adj,
            b_eid,
        }
    }
}

impl BipartiteGraph {
    /// Build from an explicit entry list, reporting the first invalid
    /// entry as a typed [`GraphError`].
    pub fn try_from_entries(
        na: usize,
        nb: usize,
        entries: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Result<Self, GraphError> {
        let mut b = BipartiteGraphBuilder::new(na, nb);
        for (x, y, w) in entries {
            b.try_add_edge(x, y, w)?;
        }
        Ok(b.build())
    }

    /// Build from an explicit entry list (convenience wrapper).
    ///
    /// # Panics
    /// Panics on an invalid entry; use [`Self::try_from_entries`] for
    /// untrusted input.
    pub fn from_entries(
        na: usize,
        nb: usize,
        entries: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Self {
        match Self::try_from_entries(na, nb, entries) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of left (`V_A`) vertices.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.na
    }

    /// Number of right (`V_B`) vertices.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.nb
    }

    /// Number of edges, `|E_L|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The `(a, b)` endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// Weight vector `w` in global edge order.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.weights[e]
    }

    /// Global edge-id range of left vertex `a`; the `V_B` endpoints are
    /// [`Self::left_neighbors`] over the same range.
    #[inline]
    pub fn left_range(&self, a: VertexId) -> std::ops::Range<EdgeId> {
        self.a_ptr[a as usize]..self.a_ptr[a as usize + 1]
    }

    /// Sorted `V_B` endpoints of left vertex `a`.
    #[inline]
    pub fn left_neighbors(&self, a: VertexId) -> &[VertexId] {
        &self.a_adj[self.left_range(a)]
    }

    /// Degree of left vertex `a`.
    #[inline]
    pub fn left_degree(&self, a: VertexId) -> usize {
        self.left_range(a).len()
    }

    /// `(b_endpoint, edge_id)` pairs of left vertex `a`; edge ids are
    /// consecutive because the global order is row-major.
    pub fn left_edges(&self, a: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let r = self.left_range(a);
        self.a_adj[r.clone()].iter().copied().zip(r)
    }

    /// Edge-slot range of right vertex `b` in the column CSR.
    #[inline]
    pub fn right_range(&self, b: VertexId) -> std::ops::Range<usize> {
        self.b_ptr[b as usize]..self.b_ptr[b as usize + 1]
    }

    /// Sorted `V_A` endpoints of right vertex `b`.
    #[inline]
    pub fn right_neighbors(&self, b: VertexId) -> &[VertexId] {
        &self.b_adj[self.right_range(b)]
    }

    /// Degree of right vertex `b`.
    #[inline]
    pub fn right_degree(&self, b: VertexId) -> usize {
        self.right_range(b).len()
    }

    /// `(a_endpoint, edge_id)` pairs of right vertex `b`.
    pub fn right_edges(&self, b: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let r = self.right_range(b);
        self.b_adj[r.clone()]
            .iter()
            .copied()
            .zip(self.b_eid[r].iter().copied())
    }

    /// Global edge id of `(a, b)` if the edge exists (binary search on
    /// the sorted left adjacency).
    pub fn edge_id(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        let r = self.left_range(a);
        self.a_adj[r.clone()]
            .binary_search(&b)
            .ok()
            .map(|off| r.start + off)
    }

    /// True when `(a, b)` is a candidate match.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edge_id(a, b).is_some()
    }

    /// Iterate over `(a, b, edge_id)` in global order.
    pub fn edge_iter(&self) -> impl Iterator<Item = (VertexId, VertexId, EdgeId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(a, b))| (a, b, e))
    }

    /// Replace the weight vector, e.g. after rescaling, reporting the
    /// first invalid value as a typed [`GraphError`].
    pub fn try_set_weights(&mut self, w: Vec<f64>) -> Result<(), GraphError> {
        if w.len() != self.num_edges() {
            return Err(GraphError::WeightLengthMismatch {
                expected: self.num_edges(),
                found: w.len(),
            });
        }
        if let Some(edge) = w.iter().position(|x| !x.is_finite()) {
            return Err(GraphError::NonFiniteWeightAt { edge, w: w[edge] });
        }
        self.weights = w;
        Ok(())
    }

    /// Replace the weight vector, e.g. after rescaling.
    ///
    /// # Panics
    /// Panics if `w.len() != num_edges()` or any weight is non-finite;
    /// use [`Self::try_set_weights`] for untrusted input.
    pub fn set_weights(&mut self, w: Vec<f64>) {
        if let Err(e) = self.try_set_weights(w) {
            panic!("{e}");
        }
    }

    /// Total weight of all edges (`eᵀw`).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// New graph keeping only the edges where `keep(a, b, w)` is true —
    /// the candidate-pruning operation behind the paper's §IX
    /// computational-steering loop ("removing potential matches from L
    /// and recompute"). Edge ids are renumbered.
    pub fn filter_edges(&self, mut keep: impl FnMut(VertexId, VertexId, f64) -> bool) -> Self {
        let mut b = BipartiteGraphBuilder::new(self.na, self.nb);
        for (x, y, e) in self.edge_iter() {
            let w = self.weights[e];
            if keep(x, y, w) {
                b.add_edge(x, y, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // a0 - b0 (1.0), a0 - b2 (2.0), a1 - b1 (3.0), a2 - b0 (4.0), a2 - b1 (5.0)
        BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
    }

    #[test]
    fn global_order_is_row_major() {
        let l = sample();
        let ids: Vec<_> = l.edge_iter().collect();
        assert_eq!(
            ids,
            vec![(0, 0, 0), (0, 2, 1), (1, 1, 2), (2, 0, 3), (2, 1, 4)]
        );
    }

    #[test]
    fn left_ranges_are_consecutive_edge_ids() {
        let l = sample();
        assert_eq!(l.left_range(0), 0..2);
        assert_eq!(l.left_range(2), 3..5);
        assert_eq!(l.left_neighbors(2), &[0, 1]);
    }

    #[test]
    fn right_edges_carry_global_ids() {
        let l = sample();
        let b0: Vec<_> = l.right_edges(0).collect();
        assert_eq!(b0, vec![(0, 0), (2, 3)]);
        let b1: Vec<_> = l.right_edges(1).collect();
        assert_eq!(b1, vec![(1, 2), (2, 4)]);
    }

    #[test]
    fn edge_id_lookup() {
        let l = sample();
        assert_eq!(l.edge_id(0, 2), Some(1));
        assert_eq!(l.edge_id(2, 2), None);
        assert!(l.has_edge(2, 1));
    }

    #[test]
    fn duplicates_keep_max_weight() {
        let l = BipartiteGraph::from_entries(1, 1, vec![(0, 0, 1.0), (0, 0, 7.0), (0, 0, 3.0)]);
        assert_eq!(l.num_edges(), 1);
        assert_eq!(l.weight(0), 7.0);
    }

    #[test]
    fn degrees_and_weights() {
        let l = sample();
        assert_eq!(l.left_degree(0), 2);
        assert_eq!(l.right_degree(1), 2);
        assert_eq!(l.right_degree(2), 1);
        assert_eq!(l.total_weight(), 15.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = BipartiteGraph::from_entries(2, 2, vec![(0, 3, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weight() {
        let _ = BipartiteGraph::from_entries(1, 1, vec![(0, 0, f64::NAN)]);
    }

    #[test]
    fn try_from_entries_reports_offending_entry() {
        let err = BipartiteGraph::try_from_entries(2, 2, vec![(0, 0, 1.0), (0, 3, 1.0)])
            .expect_err("right endpoint out of range");
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                side: "right",
                vertex: 3,
                size: 2
            }
        );
        let err = BipartiteGraph::try_from_entries(2, 2, vec![(1, 1, f64::INFINITY)])
            .expect_err("non-finite weight");
        assert!(matches!(
            err,
            GraphError::NonFiniteWeight { a: 1, b: 1, .. }
        ));
        assert!(err.to_string().contains("(1,1)"));
    }

    #[test]
    fn try_set_weights_reports_offending_value() {
        let mut l = sample();
        let err = l.try_set_weights(vec![1.0; 4]).expect_err("short vector");
        assert_eq!(
            err,
            GraphError::WeightLengthMismatch {
                expected: 5,
                found: 4
            }
        );
        let err = l
            .try_set_weights(vec![1.0, 2.0, f64::NAN, 4.0, 5.0])
            .expect_err("NaN weight");
        assert!(matches!(err, GraphError::NonFiniteWeightAt { edge: 2, .. }));
        // the graph is untouched after a rejected replacement
        assert_eq!(l.total_weight(), 15.0);
        l.try_set_weights(vec![2.0; 5]).expect("valid replacement");
        assert_eq!(l.total_weight(), 10.0);
    }

    #[test]
    fn set_weights_replaces() {
        let mut l = sample();
        l.set_weights(vec![1.0; 5]);
        assert_eq!(l.total_weight(), 5.0);
    }

    #[test]
    fn filter_edges_prunes_and_renumbers() {
        let l = sample();
        let pruned = l.filter_edges(|_, _, w| w >= 3.0);
        assert_eq!(pruned.num_edges(), 3);
        assert!(pruned.has_edge(1, 1));
        assert!(!pruned.has_edge(0, 0));
        // renumbered ids are contiguous row-major again
        let ids: Vec<_> = pruned.edge_iter().map(|(_, _, e)| e).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn filter_edges_keep_all_is_identity() {
        let l = sample();
        assert_eq!(l.filter_edges(|_, _, _| true), l);
    }
}
