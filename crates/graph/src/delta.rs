//! Structural deltas against frozen graphs.
//!
//! The aligners freeze every structure up front (CSR matrices, the
//! dual-CSR candidate graph), which is exactly right for one solve but
//! wrong for an *evolving* problem where a handful of edges arrive or
//! expire between solves. This module provides the delta layer:
//!
//! * [`CsrDelta`] — a set of pending entry edits against a frozen
//!   [`CsrMatrix`] base, with an explicit [`CsrDelta::compact`] back to
//!   a plain CSR that is bit-identical to rebuilding the matrix from
//!   the edited entry list.
//! * [`GraphDelta`] — edge inserts/removes against an undirected
//!   [`Graph`] (`A`/`B`), applied by canonical rebuild.
//! * [`CandidateDelta`] — edge inserts/expires/reweights against the
//!   candidate graph `L`, applied by canonical rebuild **plus** the
//!   old→new edge-id map the incremental aligner needs to carry
//!   per-edge state (messages, squares rows) across the renumbering.
//!
//! "Canonical rebuild" means the result is the same object the
//! constructor (`Graph::from_edges` / `BipartiteGraph::from_entries`)
//! would build from the edited edge list — so downstream consumers see
//! no difference between a patched graph and a cold-loaded one, and the
//! survivor id maps are strictly increasing (both orderings are
//! row-major).

use crate::bipartite::BipartiteGraph;
use crate::csr::CsrMatrix;
use crate::undirected::Graph;
use crate::{EdgeId, VertexId};
use std::collections::BTreeMap;

/// Sentinel in old→new edge-id maps for an edge that was removed.
pub const REMOVED: usize = usize::MAX;

/// Why a delta could not be applied. All variants are *input* errors:
/// the base graph is never modified, so the caller can report the
/// problem and keep serving from the unchanged base.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// An endpoint is outside the base graph's vertex range.
    OutOfRange(String),
    /// An inserted edge already exists (use a reweight for `L`).
    AlreadyPresent(String),
    /// A removed or reweighted edge does not exist.
    Missing(String),
    /// The same edge appears in more than one edit list.
    Conflicting(String),
    /// A weight is not finite, or the edited graph is invalid
    /// (e.g. `L` left with no edges).
    Invalid(String),
    /// The delta is well-formed but cannot be replayed against the
    /// recorded base (wrong config, missing trajectory, recoveries).
    Unsupported(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::OutOfRange(m) => write!(f, "out of range: {m}"),
            DeltaError::AlreadyPresent(m) => write!(f, "already present: {m}"),
            DeltaError::Missing(m) => write!(f, "missing: {m}"),
            DeltaError::Conflicting(m) => write!(f, "conflicting edits: {m}"),
            DeltaError::Invalid(m) => write!(f, "invalid: {m}"),
            DeltaError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DeltaError {}

// ---------------------------------------------------------------------
// CsrDelta
// ---------------------------------------------------------------------

/// Pending entry edits against a frozen CSR base.
///
/// Edits accumulate in sorted per-row maps; the base matrix is never
/// touched. [`CsrDelta::compact`] merges the edits into a fresh
/// [`CsrMatrix`] that is bit-identical to rebuilding from the edited
/// entry list. Removes are applied before upserts, so
/// `remove(r, c)` followed by `insert(r, c, v)` leaves `(r, c, v)`.
pub struct CsrDelta<'a> {
    base: &'a CsrMatrix,
    /// Per (row, col): `Some(v)` = upsert, `None` = remove.
    edits: BTreeMap<(usize, usize), Option<f64>>,
}

impl<'a> CsrDelta<'a> {
    /// A delta with no pending edits.
    pub fn new(base: &'a CsrMatrix) -> Self {
        CsrDelta {
            base,
            edits: BTreeMap::new(),
        }
    }

    /// The frozen base.
    pub fn base(&self) -> &CsrMatrix {
        self.base
    }

    /// Upsert entry `(row, col) = val`: replaces the base value if the
    /// entry exists, inserts it otherwise. Overwrites any earlier
    /// pending edit of the same entry.
    pub fn insert(&mut self, row: usize, col: usize, val: f64) -> Result<(), DeltaError> {
        self.check_range(row, col)?;
        if !val.is_finite() {
            return Err(DeltaError::Invalid(format!(
                "value at ({row}, {col}) must be finite"
            )));
        }
        self.edits.insert((row, col), Some(val));
        Ok(())
    }

    /// Expire entry `(row, col)`. Fails if the entry exists neither in
    /// the base nor as a pending insert.
    pub fn remove(&mut self, row: usize, col: usize) -> Result<(), DeltaError> {
        self.check_range(row, col)?;
        let in_base = self.base.find_entry(row, col as VertexId).is_some();
        let pending = matches!(self.edits.get(&(row, col)), Some(Some(_)));
        if !in_base && !pending {
            return Err(DeltaError::Missing(format!("entry ({row}, {col})")));
        }
        self.edits.insert((row, col), None);
        Ok(())
    }

    /// Number of pending edits.
    pub fn num_pending(&self) -> usize {
        self.edits.len()
    }

    /// True when no edits are pending.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Merge the pending edits into a fresh CSR, bit-identical to
    /// rebuilding the matrix from the edited entry list.
    pub fn compact(&self) -> CsrMatrix {
        let nrows = self.base.nrows();
        let base_rowptr = self.base.rowptr();
        let base_colidx = self.base.colidx();
        let base_vals = self.base.vals();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0usize);
        let mut edits = self.edits.iter().peekable();
        for row in 0..nrows {
            // Merge the sorted base row with the sorted edits of this
            // row (BTreeMap iterates (row, col) lexicographically).
            let mut b = base_rowptr[row];
            let bend = base_rowptr[row + 1];
            loop {
                let next_edit = match edits.peek() {
                    Some(((r, c), v)) if *r == row => Some((*c, **v)),
                    _ => None,
                };
                match (b < bend, next_edit) {
                    (false, None) => break,
                    (true, None) => {
                        colidx.push(base_colidx[b]);
                        vals.push(base_vals[b]);
                        b += 1;
                    }
                    (false, Some((c, v))) => {
                        if let Some(v) = v {
                            colidx.push(c as VertexId);
                            vals.push(v);
                        }
                        edits.next();
                    }
                    (true, Some((c, v))) => {
                        let bc = base_colidx[b] as usize;
                        if bc < c {
                            colidx.push(base_colidx[b]);
                            vals.push(base_vals[b]);
                            b += 1;
                        } else {
                            if let Some(v) = v {
                                colidx.push(c as VertexId);
                                vals.push(v);
                            }
                            if bc == c {
                                b += 1; // edited entry shadows the base one
                            }
                            edits.next();
                        }
                    }
                }
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix::from_raw(nrows, self.base.ncols(), rowptr, colidx, vals)
    }

    fn check_range(&self, row: usize, col: usize) -> Result<(), DeltaError> {
        if row >= self.base.nrows() || col >= self.base.ncols() {
            return Err(DeltaError::OutOfRange(format!(
                "entry ({row}, {col}) outside {}x{}",
                self.base.nrows(),
                self.base.ncols()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// GraphDelta (undirected A / B)
// ---------------------------------------------------------------------

/// Edge inserts/removes against an undirected graph. Endpoint order is
/// irrelevant (edges normalize to `u < v`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphDelta {
    /// Edges to add (must not exist).
    pub insert: Vec<(VertexId, VertexId)>,
    /// Edges to expire (must exist).
    pub remove: Vec<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// True when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.remove.is_empty()
    }

    /// Vertices whose adjacency this delta changes, sorted and deduped.
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self
            .insert
            .iter()
            .chain(self.remove.iter())
            .flat_map(|&(a, b)| [a, b])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Apply to `base`, returning the canonically rebuilt graph —
    /// bit-identical to [`Graph::from_edges`] on the edited edge list.
    pub fn apply(&self, base: &Graph) -> Result<Graph, DeltaError> {
        let n = base.num_vertices() as VertexId;
        let norm = |(u, v): (VertexId, VertexId)| if u <= v { (u, v) } else { (v, u) };
        let mut removed: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.remove.len());
        for &e in &self.remove {
            let (u, v) = norm(e);
            if u >= n || v >= n {
                return Err(DeltaError::OutOfRange(format!("edge ({u}, {v})")));
            }
            if !base.has_edge(u, v) {
                return Err(DeltaError::Missing(format!("edge ({u}, {v})")));
            }
            removed.push((u, v));
        }
        removed.sort_unstable();
        if removed.windows(2).any(|w| w[0] == w[1]) {
            return Err(DeltaError::Conflicting("duplicate remove".into()));
        }
        let mut inserted: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.insert.len());
        for &e in &self.insert {
            let (u, v) = norm(e);
            if u >= n || v >= n {
                return Err(DeltaError::OutOfRange(format!("edge ({u}, {v})")));
            }
            if u == v {
                return Err(DeltaError::Invalid(format!("self-loop ({u}, {v})")));
            }
            if base.has_edge(u, v) {
                return Err(DeltaError::AlreadyPresent(format!("edge ({u}, {v})")));
            }
            // insert ∩ remove is impossible here: removes must exist in
            // the base and inserts must not.
            inserted.push((u, v));
        }
        inserted.sort_unstable();
        if inserted.windows(2).any(|w| w[0] == w[1]) {
            return Err(DeltaError::Conflicting("duplicate insert".into()));
        }
        let edges = base
            .edges()
            .filter(|e| removed.binary_search(e).is_err())
            .chain(inserted.iter().copied());
        Ok(Graph::from_edges(base.num_vertices(), edges))
    }
}

// ---------------------------------------------------------------------
// CandidateDelta (bipartite L)
// ---------------------------------------------------------------------

/// Edge inserts/expires/reweights against the candidate graph `L`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CandidateDelta {
    /// New candidate edges (must not exist; use `reweight` otherwise).
    pub insert: Vec<(VertexId, VertexId, f64)>,
    /// Expired candidate edges (must exist).
    pub remove: Vec<(VertexId, VertexId)>,
    /// Weight changes on existing edges (must exist).
    pub reweight: Vec<(VertexId, VertexId, f64)>,
}

impl CandidateDelta {
    /// True when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.remove.is_empty() && self.reweight.is_empty()
    }

    /// True when the delta changes the edge *set* of `L` (and therefore
    /// renumbers edge ids), as opposed to weights only.
    pub fn changes_structure(&self) -> bool {
        !self.insert.is_empty() || !self.remove.is_empty()
    }

    /// Apply to `base`, returning the canonically rebuilt graph plus
    /// the id maps incremental consumers need.
    pub fn apply(&self, base: &BipartiteGraph) -> Result<AppliedCandidateDelta, DeltaError> {
        let (na, nb) = (base.num_left() as VertexId, base.num_right() as VertexId);
        let check = |a: VertexId, b: VertexId| {
            if a >= na || b >= nb {
                Err(DeltaError::OutOfRange(format!("candidate ({a}, {b})")))
            } else {
                Ok(())
            }
        };
        // One sorted edit map — also catches the same pair appearing in
        // two lists.
        #[derive(Clone, Copy)]
        enum Edit {
            Insert(f64),
            Remove,
            Reweight(f64),
        }
        let mut edits: BTreeMap<(VertexId, VertexId), Edit> = BTreeMap::new();
        let mut add = |a: VertexId, b: VertexId, e: Edit| -> Result<(), DeltaError> {
            if edits.insert((a, b), e).is_some() {
                return Err(DeltaError::Conflicting(format!(
                    "candidate ({a}, {b}) edited twice"
                )));
            }
            Ok(())
        };
        for &(a, b, w) in &self.insert {
            check(a, b)?;
            if !w.is_finite() {
                return Err(DeltaError::Invalid(format!(
                    "weight of candidate ({a}, {b}) must be finite"
                )));
            }
            if base.has_edge(a, b) {
                return Err(DeltaError::AlreadyPresent(format!(
                    "candidate ({a}, {b}); use reweight"
                )));
            }
            add(a, b, Edit::Insert(w))?;
        }
        for &(a, b) in &self.remove {
            check(a, b)?;
            if !base.has_edge(a, b) {
                return Err(DeltaError::Missing(format!("candidate ({a}, {b})")));
            }
            add(a, b, Edit::Remove)?;
        }
        for &(a, b, w) in &self.reweight {
            check(a, b)?;
            if !w.is_finite() {
                return Err(DeltaError::Invalid(format!(
                    "weight of candidate ({a}, {b}) must be finite"
                )));
            }
            if !base.has_edge(a, b) {
                return Err(DeltaError::Missing(format!("candidate ({a}, {b})")));
            }
            add(a, b, Edit::Reweight(w))?;
        }

        let mut entries: Vec<(VertexId, VertexId, f64)> =
            Vec::with_capacity(base.num_edges() + self.insert.len());
        for (a, b, e) in base.edge_iter() {
            match edits.get(&(a, b)) {
                Some(Edit::Remove) => continue,
                Some(Edit::Reweight(w)) => entries.push((a, b, *w)),
                Some(Edit::Insert(_)) => unreachable!("insert of an existing edge was rejected"),
                None => entries.push((a, b, base.weight(e))),
            }
        }
        for (&(a, b), e) in &edits {
            if let Edit::Insert(w) = e {
                entries.push((a, b, *w));
            }
        }
        if entries.is_empty() {
            return Err(DeltaError::Invalid(
                "edited candidate graph has no edges".into(),
            ));
        }
        let graph = BipartiteGraph::try_from_entries(na as usize, nb as usize, entries)
            .map_err(|e| DeltaError::Invalid(format!("edited candidate graph: {e}")))?;

        // Survivor map (strictly increasing: both orderings row-major)
        // plus the new ids of inserts and reweights.
        let mut old_to_new = vec![REMOVED; base.num_edges()];
        for (a, b, e) in base.edge_iter() {
            if !matches!(edits.get(&(a, b)), Some(Edit::Remove)) {
                old_to_new[e] = graph
                    .edge_id(a, b)
                    .expect("surviving edge is in the rebuilt graph");
            }
        }
        let mut new_edges = Vec::with_capacity(self.insert.len());
        let mut reweighted = Vec::with_capacity(self.reweight.len());
        for (&(a, b), e) in &edits {
            let id = || graph.edge_id(a, b).expect("edited edge is in the graph");
            match e {
                Edit::Insert(_) => new_edges.push(id()),
                Edit::Reweight(_) => reweighted.push(id()),
                Edit::Remove => {}
            }
        }
        new_edges.sort_unstable();
        reweighted.sort_unstable();
        Ok(AppliedCandidateDelta {
            graph,
            old_to_new,
            new_edges,
            reweighted,
        })
    }
}

/// A [`CandidateDelta`] applied to a base graph.
pub struct AppliedCandidateDelta {
    /// The canonically rebuilt candidate graph.
    pub graph: BipartiteGraph,
    /// Old edge id → new edge id; [`REMOVED`] for expired edges.
    /// Strictly increasing over survivors.
    pub old_to_new: Vec<usize>,
    /// New ids of the inserted edges, sorted.
    pub new_edges: Vec<EdgeId>,
    /// New ids of the reweighted edges, sorted.
    pub reweighted: Vec<EdgeId>,
}

impl AppliedCandidateDelta {
    /// Inverse survivor map: new edge id → old edge id, [`REMOVED`]
    /// for brand-new edges.
    pub fn new_to_old(&self) -> Vec<usize> {
        let mut map = vec![REMOVED; self.graph.num_edges()];
        for (old, &new) in self.old_to_new.iter().enumerate() {
            if new != REMOVED {
                map[new] = old;
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_csr() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (2, 3, 5.0),
            ],
        )
    }

    #[test]
    fn compact_without_edits_is_the_base() {
        let m = base_csr();
        let d = CsrDelta::new(&m);
        assert!(d.is_empty());
        assert_eq!(d.compact(), m);
    }

    #[test]
    fn compact_matches_rebuild() {
        let m = base_csr();
        let mut d = CsrDelta::new(&m);
        d.insert(0, 0, 9.0).unwrap(); // new, before existing cols
        d.insert(0, 3, 7.0).unwrap(); // upsert
        d.remove(2, 2).unwrap();
        d.insert(1, 3, 6.0).unwrap(); // new, after existing cols
        assert_eq!(d.num_pending(), 4);
        let rebuilt = CsrMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 9.0),
                (0, 1, 1.0),
                (0, 3, 7.0),
                (1, 0, 3.0),
                (1, 3, 6.0),
                (2, 3, 5.0),
            ],
        );
        assert_eq!(d.compact(), rebuilt);
    }

    #[test]
    fn remove_then_insert_reinstates() {
        let m = base_csr();
        let mut d = CsrDelta::new(&m);
        d.remove(0, 1).unwrap();
        d.insert(0, 1, 8.0).unwrap();
        assert_eq!(d.compact().get(0, 1), 8.0);
        // And removing a pending insert works too.
        let mut d = CsrDelta::new(&m);
        d.insert(1, 2, 1.5).unwrap();
        d.remove(1, 2).unwrap();
        assert_eq!(d.compact(), m);
    }

    #[test]
    fn csr_delta_rejects_bad_edits() {
        let m = base_csr();
        let mut d = CsrDelta::new(&m);
        assert!(matches!(
            d.remove(0, 0),
            Err(DeltaError::Missing(_)) // not in base
        ));
        assert!(matches!(
            d.insert(3, 0, 1.0),
            Err(DeltaError::OutOfRange(_))
        ));
        assert!(matches!(
            d.insert(0, 0, f64::NAN),
            Err(DeltaError::Invalid(_))
        ));
    }

    #[test]
    fn graph_delta_applies_canonically() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = GraphDelta {
            insert: vec![(4, 0)], // normalizes to (0, 4)
            remove: vec![(2, 1)], // normalizes to (1, 2)
        };
        let g2 = d.apply(&g).unwrap();
        let rebuilt = Graph::from_edges(5, vec![(0, 1), (2, 3), (3, 4), (0, 4)]);
        assert_eq!(g2, rebuilt);
        assert_eq!(d.touched_vertices(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn graph_delta_rejects_bad_edits() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        let missing = GraphDelta {
            remove: vec![(1, 2)],
            ..Default::default()
        };
        assert!(matches!(missing.apply(&g), Err(DeltaError::Missing(_))));
        let dup = GraphDelta {
            insert: vec![(0, 2), (2, 0)], // same edge twice after normalization
            ..Default::default()
        };
        assert!(matches!(dup.apply(&g), Err(DeltaError::Conflicting(_))));
        let present = GraphDelta {
            insert: vec![(1, 0)],
            ..Default::default()
        };
        assert!(matches!(
            present.apply(&g),
            Err(DeltaError::AlreadyPresent(_))
        ));
    }

    fn base_l() -> BipartiteGraph {
        BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 0.5), (1, 1, 2.0), (2, 2, 3.0)],
        )
    }

    #[test]
    fn candidate_delta_maps_survivors_monotonically() {
        let l = base_l();
        let d = CandidateDelta {
            insert: vec![(0, 1, 4.0), (2, 0, 1.5)],
            remove: vec![(0, 2)],
            reweight: vec![(1, 1, 2.5)],
        };
        let applied = d.apply(&l).unwrap();
        let rebuilt = BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 1, 4.0),
                (1, 1, 2.5),
                (2, 0, 1.5),
                (2, 2, 3.0),
            ],
        );
        assert_eq!(applied.graph, rebuilt);
        // old order: (0,0)=0, (0,2)=1, (1,1)=2, (2,2)=3
        // new order: (0,0)=0, (0,1)=1, (1,1)=2, (2,0)=3, (2,2)=4
        assert_eq!(applied.old_to_new, vec![0, REMOVED, 2, 4]);
        assert_eq!(applied.new_edges, vec![1, 3]);
        assert_eq!(applied.reweighted, vec![2]);
        assert_eq!(applied.new_to_old(), vec![0, REMOVED, 2, REMOVED, 4 - 1]);
        // Survivor map is strictly increasing.
        let survivors: Vec<usize> = applied
            .old_to_new
            .iter()
            .copied()
            .filter(|&x| x != REMOVED)
            .collect();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn candidate_delta_rejects_bad_edits() {
        let l = base_l();
        let d = CandidateDelta {
            insert: vec![(0, 0, 1.0)],
            ..Default::default()
        };
        assert!(matches!(d.apply(&l), Err(DeltaError::AlreadyPresent(_))));
        let d = CandidateDelta {
            reweight: vec![(2, 0, 1.0)],
            ..Default::default()
        };
        assert!(matches!(d.apply(&l), Err(DeltaError::Missing(_))));
        let d = CandidateDelta {
            remove: vec![(0, 2)],
            reweight: vec![(0, 2, 9.0)],
            ..Default::default()
        };
        assert!(matches!(d.apply(&l), Err(DeltaError::Conflicting(_))));
        let d = CandidateDelta {
            remove: vec![(0, 0), (0, 2), (1, 1), (2, 2)],
            ..Default::default()
        };
        assert!(matches!(d.apply(&l), Err(DeltaError::Invalid(_))));
    }
}
