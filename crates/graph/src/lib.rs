//! Graph substrate for multithreaded network alignment.
//!
//! This crate provides the data structures and generators that the
//! SC'12 network-alignment reproduction is built on:
//!
//! * [`csr`] — compressed-sparse-row matrices with *fixed structure* and
//!   swappable value arrays, plus the permutation-transpose trick the paper
//!   uses for the structurally-symmetric matrices `S` and `U`.
//! * [`undirected`] — the input graphs `A` and `B`.
//! * [`bipartite`] — the weighted bipartite graph `L` between `V_A` and
//!   `V_B`, stored as dual CSR with a global edge ordering; every
//!   per-edge quantity in the aligners (`w`, `x`, `y`, `z`, …) is a
//!   `Vec<f64>` indexed by this ordering.
//! * [`generators`] — seeded random graph generators (power-law /
//!   Chung–Lu, Erdős–Rényi, perturbation) used by the synthetic
//!   experiments.
//! * [`io`] — SMAT and edge-list readers/writers compatible with the
//!   formats used by the original `netalign` codes.
//! * [`nacs`] / [`mmap`] — the on-disk `NACS` CSR container and the
//!   memory-mapping layer behind out-of-core alignment; a mapped
//!   [`nacs::CsrView`] serves the same accessor trait
//!   ([`csr::CsrAccess`]) as the in-core matrix.
//! * [`permutation`] — permutation vectors and validation helpers.
//! * [`delta`] — structural deltas (edge insert/expire/reweight) against
//!   frozen graphs, with canonical-rebuild application and the old→new
//!   edge-id maps incremental aligners need.

pub mod bipartite;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod mmap;
pub mod nacs;
pub mod permutation;
pub mod stats;
pub mod undirected;

pub mod prelude {
    //! Convenient re-exports of the most used types.
    pub use crate::bipartite::{BipartiteGraph, BipartiteGraphBuilder, GraphError};
    pub use crate::csr::{CsrAccess, CsrMatrix};
    pub use crate::delta::{CandidateDelta, CsrDelta, DeltaError, GraphDelta};
    pub use crate::nacs::{CsrView, NacsError, NacsWriter};
    pub use crate::permutation::Permutation;
    pub use crate::undirected::{Graph, GraphBuilder};
}

pub use bipartite::{BipartiteGraph, GraphError};
pub use csr::CsrMatrix;
pub use undirected::Graph;

/// Vertex index type used across the workspace.
///
/// `u32` comfortably covers the paper's largest instances
/// (lcsh-rameau: ~0.5M vertices, 21M edges in `L`) while halving the
/// memory traffic of `usize` indices — the aligners are memory-bandwidth
/// bound (paper §VIII.C).
pub type VertexId = u32;

/// Edge index into the global edge ordering of a [`BipartiteGraph`].
pub type EdgeId = usize;
