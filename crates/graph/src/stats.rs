//! Structural statistics for graphs and candidate sets — used by the
//! dataset reports (Table II's "degree distribution in L is fairly
//! regular, the non-zero distribution in S is highly irregular").

use crate::{BipartiteGraph, Graph, VertexId};
use std::collections::VecDeque;

/// Summary statistics of an integer distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistSummary {
    /// Smallest value.
    pub min: usize,
    /// Largest value.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); 0 for constant or
    /// empty distributions.
    pub cv: f64,
}

/// Summarize a sequence of counts.
pub fn summarize(counts: impl IntoIterator<Item = usize>) -> DistSummary {
    let v: Vec<usize> = counts.into_iter().collect();
    if v.is_empty() {
        return DistSummary {
            min: 0,
            max: 0,
            mean: 0.0,
            cv: 0.0,
        };
    }
    let min = *v.iter().min().unwrap();
    let max = *v.iter().max().unwrap();
    let mean = v.iter().sum::<usize>() as f64 / v.len() as f64;
    let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    DistSummary { min, max, mean, cv }
}

/// Degree distribution summary of an undirected graph.
pub fn degree_summary(g: &Graph) -> DistSummary {
    summarize((0..g.num_vertices() as VertexId).map(|v| g.degree(v)))
}

/// Left-side degree distribution summary of a bipartite graph.
pub fn left_degree_summary(l: &BipartiteGraph) -> DistSummary {
    summarize((0..l.num_left() as VertexId).map(|a| l.left_degree(a)))
}

/// Number of connected components of an undirected graph (isolated
/// vertices count as singleton components).
pub fn connected_components(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        if seen[s as usize] {
            continue;
        }
        components += 1;
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

/// Size of the largest connected component.
pub fn largest_component(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut best = 0;
    let mut queue = VecDeque::new();
    for s in 0..n as VertexId {
        if seen[s as usize] {
            continue;
        }
        let mut size = 1;
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    size += 1;
                    queue.push_back(v);
                }
            }
        }
        best = best.max(size);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_distribution() {
        let s = summarize(vec![3, 3, 3]);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn summary_of_skewed_distribution_has_high_cv() {
        let regular = summarize(vec![4, 5, 4, 5, 4]);
        let skewed = summarize(vec![1, 1, 1, 1, 100]);
        assert!(skewed.cv > 5.0 * regular.cv);
    }

    #[test]
    fn empty_summary() {
        let s = summarize(Vec::new());
        assert_eq!(
            s,
            DistSummary {
                min: 0,
                max: 0,
                mean: 0.0,
                cv: 0.0
            }
        );
    }

    #[test]
    fn components_of_path_plus_isolated() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2)]);
        assert_eq!(connected_components(&g), 3); // {0,1,2}, {3}, {4}
        assert_eq!(largest_component(&g), 3);
    }

    #[test]
    fn single_component_cycle() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(connected_components(&g), 1);
        assert_eq!(largest_component(&g), 4);
    }

    #[test]
    fn bipartite_degree_summary() {
        let l = BipartiteGraph::from_entries(3, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let s = left_degree_summary(&l);
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean, 1.0);
    }
}
