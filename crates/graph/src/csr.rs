//! Compressed-sparse-row matrices with fixed structure.
//!
//! The aligners in this workspace follow the paper's memory discipline
//! (§IV.A): every sparse matrix keeps its non-zero *structure* fixed for
//! the whole run, and iteration-varying matrices (`S^{(k)}`, `U^{(k)}`,
//! `F`, `S_L`) merely carry their own value arrays over the shared
//! structure. Transposes of structurally-symmetric matrices are realized
//! as a precomputed *value permutation* instead of an explicit transpose
//! (`transpose_permutation`).

use crate::permutation::Permutation;
use crate::VertexId;
use rayon::prelude::*;

/// Minimum elements per parallel work chunk — the same dynamic-schedule
/// granularity as the aligner kernels (paper §IV.A,
/// `schedule(dynamic, 1000)`).
const PAR_CHUNK: usize = 1000;

/// A sparse matrix in compressed-sparse-row format.
///
/// ```
/// use netalign_graph::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 3, vec![(0, 1, 1.5), (1, 0, 2.0)]);
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(0, 1), 1.5);
/// assert_eq!(m.get(0, 0), 0.0);
/// let mut y = vec![0.0; 2];
/// m.spmv(&[1.0, 2.0, 3.0], &mut y);
/// assert_eq!(y, vec![3.0, 2.0]);
/// ```
///
/// Column indices within each row are kept sorted, which enables
/// binary-search lookups and makes iteration order deterministic.
///
/// The structure arrays (`rowptr`, `colidx`) are immutable after
/// construction; only `vals` may be rewritten. Algorithms that need
/// several matrices over the same pattern should share one `CsrMatrix`
/// for the structure and keep extra `Vec<f64>` value arrays of length
/// [`CsrMatrix::nnz`].
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<VertexId>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build a CSR matrix from (row, col, value) triplets.
    ///
    /// Triplets may be given in any order; duplicates are summed.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Self {
        let mut trips: Vec<(VertexId, VertexId, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &trips {
            assert!(
                (r as usize) < nrows,
                "row index {r} out of bounds ({nrows} rows)"
            );
            assert!(
                (c as usize) < ncols,
                "col index {c} out of bounds ({ncols} cols)"
            );
        }
        trips.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut rowptr = vec![0usize; nrows + 1];
        let mut colidx = Vec::with_capacity(trips.len());
        let mut vals = Vec::with_capacity(trips.len());
        let mut last: Option<(VertexId, VertexId)> = None;
        for (r, c, v) in trips {
            if last == Some((r, c)) {
                // Sorted by (row, col): duplicates are adjacent, sum them.
                *vals.last_mut().unwrap() += v;
                continue;
            }
            colidx.push(c);
            vals.push(v);
            rowptr[r as usize + 1] = colidx.len();
            last = Some((r, c));
        }
        // Forward-fill rows that received no entries.
        for i in 1..=nrows {
            if rowptr[i] < rowptr[i - 1] {
                rowptr[i] = rowptr[i - 1];
            }
        }
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, unsorted or
    /// out-of-range column indices, non-monotone `rowptr`).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<VertexId>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr must have nrows+1 entries");
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(
            *rowptr.last().unwrap(),
            colidx.len(),
            "rowptr must end at nnz"
        );
        assert_eq!(
            colidx.len(),
            vals.len(),
            "colidx and vals must have equal length"
        );
        for i in 0..nrows {
            assert!(rowptr[i] <= rowptr[i + 1], "rowptr must be non-decreasing");
            let row = &colidx[rowptr[i]..rowptr[i + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "column indices must be strictly increasing in row {i}"
                );
            }
            if let Some(&last) = row.last() {
                assert!(
                    (last as usize) < ncols,
                    "column index out of range in row {i}"
                );
            }
        }
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array (`nnz` entries, sorted within each row).
    #[inline]
    pub fn colidx(&self) -> &[VertexId] {
        &self.colidx
    }

    /// Value array (`nnz` entries).
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array; the structure stays fixed.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Half-open range of entry indices belonging to `row`.
    #[inline]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.rowptr[row]..self.rowptr[row + 1]
    }

    /// Column indices of `row`.
    #[inline]
    pub fn row_cols(&self, row: usize) -> &[VertexId] {
        &self.colidx[self.row_range(row)]
    }

    /// Values of `row`.
    #[inline]
    pub fn row_vals(&self, row: usize) -> &[f64] {
        &self.vals[self.row_range(row)]
    }

    /// Iterate over `(col, value)` pairs of a row.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let r = self.row_range(row);
        self.colidx[r.clone()]
            .iter()
            .copied()
            .zip(self.vals[r].iter().copied())
    }

    /// Entry index of `(row, col)` if stored, via binary search.
    pub fn find_entry(&self, row: usize, col: VertexId) -> Option<usize> {
        let r = self.row_range(row);
        self.colidx[r.clone()]
            .binary_search(&col)
            .ok()
            .map(|off| r.start + off)
    }

    /// Value at `(row, col)`, or `0.0` when the entry is not stored.
    pub fn get(&self, row: usize, col: VertexId) -> f64 {
        self.find_entry(row, col).map_or(0.0, |e| self.vals[e])
    }

    /// True if the sparsity pattern is symmetric (requires a square matrix).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for row in 0..self.nrows {
            for &col in self.row_cols(row) {
                if self.find_entry(col as usize, row as VertexId).is_none() {
                    return false;
                }
            }
        }
        true
    }

    /// Compute the transpose as a new matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0 as VertexId; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut next = rowptr.clone();
        for row in 0..self.nrows {
            for e in self.row_range(row) {
                let c = self.colidx[e] as usize;
                let slot = next[c];
                next[c] += 1;
                colidx[slot] = row as VertexId;
                vals[slot] = self.vals[e];
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Permutation `p` such that `transpose().vals[k] == vals[p[k]]`.
    ///
    /// For a *structurally symmetric* matrix the transpose shares the
    /// `rowptr`/`colidx` arrays, so transposing reduces to permuting the
    /// value array — the paper's "permutation trick" (§IV.A). The
    /// permutation is computed once; each transpose afterwards is a
    /// gather with no structural work.
    ///
    /// # Panics
    /// Panics if the matrix is not structurally symmetric.
    pub fn transpose_permutation(&self) -> Permutation {
        assert!(
            self.is_structurally_symmetric(),
            "transpose_permutation requires a structurally symmetric matrix"
        );
        let mut perm = vec![0usize; self.nnz()];
        // Entry k of the transpose lives in row c = colidx[k-of-transpose].
        // Because the structure is symmetric, walking the original rows in
        // order and appending to each target row reproduces sorted order.
        let mut next = self.rowptr.clone();
        for row in 0..self.nrows {
            for e in self.row_range(row) {
                let c = self.colidx[e] as usize;
                let slot = next[c];
                next[c] += 1;
                perm[slot] = e;
            }
        }
        Permutation::from_vec(perm)
    }

    /// Gather values through a permutation: `out[k] = vals[perm[k]]`.
    ///
    /// Used together with [`CsrMatrix::transpose_permutation`] to read a
    /// transpose without forming it. Parallel over the output with the
    /// same dynamic-schedule chunking as the aligner kernels.
    pub fn permute_vals_into(vals: &[f64], perm: &Permutation, out: &mut [f64]) {
        assert_eq!(vals.len(), perm.len());
        assert_eq!(out.len(), perm.len());
        let perm = perm.as_slice();
        out.par_iter_mut()
            .enumerate()
            .with_min_len(PAR_CHUNK)
            .for_each(|(k, o)| *o = vals[perm[k]]);
    }

    /// `y = M x`, row-parallel. Each output entry is its own serial
    /// row sum, so the result is bit-identical to the serial loop at
    /// every pool size.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.par_iter_mut()
            .enumerate()
            .with_min_len(PAR_CHUNK)
            .for_each(|(row, yr)| {
                let mut acc = 0.0;
                for (c, v) in self.row_iter(row) {
                    acc += v * x[c as usize];
                }
                *yr = acc;
            });
    }

    /// Dense representation, for tests and tiny matrices only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for row in 0..self.nrows {
            for (c, v) in self.row_iter(row) {
                d[row][c as usize] = v;
            }
        }
        d
    }
}

/// Common read accessor surface over CSR structure, implemented by both
/// the in-core [`CsrMatrix`] and the mmap-backed
/// [`CsrView`](crate::nacs::CsrView), so kernels written against plain
/// `rowptr`/`colidx` slices run unchanged on either storage.
pub trait CsrAccess {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// Number of stored entries.
    fn nnz(&self) -> usize;
    /// Row pointer array (`nrows + 1` entries).
    fn rowptr(&self) -> &[usize];
    /// Column index array (`nnz` entries).
    fn colidx(&self) -> &[VertexId];

    /// Entry range of one row.
    fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        let p = self.rowptr();
        p[row]..p[row + 1]
    }

    /// Column indices of one row.
    fn row_cols(&self, row: usize) -> &[VertexId] {
        &self.colidx()[self.row_range(row)]
    }
}

impl CsrAccess for CsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.colidx.len()
    }
    fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }
    fn colidx(&self) -> &[VertexId] {
        &self.colidx
    }
}

impl CsrAccess for crate::nacs::CsrView {
    fn nrows(&self) -> usize {
        CsrView::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrView::ncols(self)
    }
    fn nnz(&self) -> usize {
        CsrView::nnz(self)
    }
    fn rowptr(&self) -> &[usize] {
        CsrView::rowptr(self)
    }
    fn colidx(&self) -> &[VertexId] {
        CsrView::colidx(self)
    }
}

use crate::nacs::CsrView;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
    }

    #[test]
    fn triplets_build_sorted_rows() {
        let m = CsrMatrix::from_triplets(2, 3, vec![(1, 2, 5.0), (0, 1, 1.0), (1, 0, 3.0)]);
        assert_eq!(m.rowptr(), &[0, 1, 3]);
        assert_eq!(m.row_cols(1), &[0, 2]);
        assert_eq!(m.row_vals(1), &[3.0, 5.0]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn empty_rows_have_empty_ranges() {
        let m = sample();
        assert_eq!(m.row_range(1), 2..2);
        assert!(m.row_cols(1).is_empty());
    }

    #[test]
    fn get_and_find_entry() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.find_entry(2, 1), Some(3));
        assert_eq!(m.find_entry(2, 2), None);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        let d = m.to_dense();
        let dt = t.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[i][j], dt[j][i]);
            }
        }
    }

    #[test]
    fn structural_symmetry_detection() {
        let m = sample();
        assert!(!m.is_structurally_symmetric());
        let s = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 9.0), (0, 0, 2.0)]);
        assert!(s.is_structurally_symmetric());
    }

    #[test]
    fn transpose_permutation_equals_real_transpose() {
        let s = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 2, 3.0),
                (2, 1, 4.0),
                (0, 0, 5.0),
                (2, 2, 6.0),
            ],
        );
        let perm = s.transpose_permutation();
        let mut permuted = vec![0.0; s.nnz()];
        CsrMatrix::permute_vals_into(s.vals(), &perm, &mut permuted);
        let t = s.transpose();
        // structurally symmetric: same rowptr/colidx, values permuted
        assert_eq!(s.rowptr(), t.rowptr());
        assert_eq!(s.colidx(), t.colidx());
        assert_eq!(permuted, t.vals());
    }

    #[test]
    fn spmv_reference() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 0.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplets_out_of_bounds_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn from_raw_roundtrip() {
        let m = sample();
        let r = CsrMatrix::from_raw(
            3,
            3,
            m.rowptr().to_vec(),
            m.colidx().to_vec(),
            m.vals().to_vec(),
        );
        assert_eq!(m, r);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_rejects_unsorted_columns() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }
}
