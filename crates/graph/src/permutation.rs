//! Permutation vectors with validity checking.

/// A permutation of `0..n`, stored as the image vector: `perm[i]` is
/// where index `i` reads from (gather convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
        }
    }

    /// Wrap a vector, checking it really is a permutation of `0..n`.
    ///
    /// # Panics
    /// Panics if `perm` is not a bijection on `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(p < perm.len(), "permutation entry {p} out of range");
            assert!(!seen[p], "permutation entry {p} repeated");
            seen[p] = true;
        }
        Self { perm }
    }

    /// Length of the permuted domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Raw permutation slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Image of `i`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        self.perm[i]
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        Permutation { perm: inv }
    }

    /// Gather: `out[i] = src[perm[i]]`.
    pub fn gather<T: Copy>(&self, src: &[T], out: &mut [T]) {
        assert_eq!(src.len(), self.perm.len());
        assert_eq!(out.len(), self.perm.len());
        for (o, &p) in out.iter_mut().zip(&self.perm) {
            *o = src[p];
        }
    }

    /// True for an involution (`perm ∘ perm = id`), which holds for
    /// transpose permutations of structurally symmetric matrices.
    pub fn is_involution(&self) -> bool {
        self.perm
            .iter()
            .enumerate()
            .all(|(i, &p)| self.perm[p] == i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert!(p.is_involution());
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.get(p.get(i)), i);
        }
    }

    #[test]
    fn gather_reads_through() {
        let p = Permutation::from_vec(vec![2, 0, 1]);
        let src = [10.0, 20.0, 30.0];
        let mut out = [0.0; 3];
        p.gather(&src, &mut out);
        assert_eq!(out, [30.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_non_bijection() {
        let _ = Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn involution_detection() {
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_involution());
        assert!(!Permutation::from_vec(vec![1, 2, 0]).is_involution());
    }
}
