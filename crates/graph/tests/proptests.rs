//! Property-based tests of the graph substrate invariants.

use netalign_graph::delta::CsrDelta;
use netalign_graph::generators::{graph_from_degree_sequence, power_law_degree_sequence};
use netalign_graph::{BipartiteGraph, CsrMatrix, Graph};
use proptest::prelude::*;

fn arb_triplets() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -5.0f64..5.0), 0..40)
            .prop_map(move |t| (r, c, t))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_matches_dense_semantics((r, c, trips) in arb_triplets()) {
        let m = CsrMatrix::from_triplets(r, c, trips.clone());
        // dense accumulation oracle
        let mut dense = vec![vec![0.0f64; c]; r];
        for (i, j, v) in &trips {
            dense[*i as usize][*j as usize] += v;
        }
        for i in 0..r {
            for j in 0..c {
                prop_assert!((m.get(i, j as u32) - dense[i][j]).abs() < 1e-12);
            }
        }
        // nnz never exceeds input triplets
        prop_assert!(m.nnz() <= trips.len());
    }

    #[test]
    fn transpose_is_involution((r, c, trips) in arb_triplets()) {
        let m = CsrMatrix::from_triplets(r, c, trips);
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
    }

    #[test]
    fn spmv_matches_dense((r, c, trips) in arb_triplets()) {
        let m = CsrMatrix::from_triplets(r, c, trips);
        let x: Vec<f64> = (0..c).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; r];
        m.spmv(&x, &mut y);
        let d = m.to_dense();
        for i in 0..r {
            let expect: f64 = (0..c).map(|j| d[i][j] * x[j]).sum();
            prop_assert!((y[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn bipartite_dual_csr_consistency((r, c, trips) in arb_triplets()) {
        let l = BipartiteGraph::from_entries(r, c, trips);
        // every edge id appears exactly once on each side
        let mut seen_left = vec![false; l.num_edges()];
        for a in 0..l.num_left() as u32 {
            for (_, e) in l.left_edges(a) {
                prop_assert!(!seen_left[e]);
                seen_left[e] = true;
            }
        }
        prop_assert!(seen_left.iter().all(|&s| s));
        let mut seen_right = vec![false; l.num_edges()];
        for b in 0..l.num_right() as u32 {
            for (a, e) in l.right_edges(b) {
                prop_assert!(!seen_right[e]);
                seen_right[e] = true;
                prop_assert_eq!(l.endpoints(e), (a, b));
            }
        }
        prop_assert!(seen_right.iter().all(|&s| s));
    }

    #[test]
    fn graph_edges_roundtrip(edges in proptest::collection::vec((0u32..15, 0u32..15), 0..50)) {
        let clean: Vec<(u32, u32)> = edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = Graph::from_edges(15, clean.clone());
        // rebuild from the edges() iterator
        let g2 = Graph::from_edges(15, g.edges());
        prop_assert_eq!(&g, &g2);
        // degree sum = 2m
        let degsum: usize = (0..15u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
        // has_edge agrees with the input set
        for (u, v) in &clean {
            prop_assert!(g.has_edge(*u, *v));
            prop_assert!(g.has_edge(*v, *u));
        }
    }

    #[test]
    fn degree_sequence_realization_is_simple(
        n in 6usize..40,
        exp in 1.5f64..3.5,
        seed in 0u64..500,
    ) {
        let maxd = (n / 2).max(2).min(n - 1);
        let degs = power_law_degree_sequence(n, exp, maxd, seed);
        let g = graph_from_degree_sequence(&degs, seed);
        // simple graph: no vertex exceeds its prescribed degree
        for v in 0..n as u32 {
            prop_assert!(g.degree(v) <= degs[v as usize]);
        }
        // neighbours sorted & unique
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(!nb.contains(&v));
        }
    }

    #[test]
    fn smat_roundtrip_preserves_matrix((r, c, trips) in arb_triplets()) {
        let m = CsrMatrix::from_triplets(r, c, trips);
        let mut buf = Vec::new();
        netalign_graph::io::write_smat(&m, &mut buf).unwrap();
        let back = netalign_graph::io::read_smat(&buf[..]).unwrap();
        prop_assert_eq!(m, back);
    }

    /// `CsrDelta::compact()` is bit-identical to rebuilding the CSR
    /// from the edited entry list — the delta overlay is a pure
    /// optimisation, never a semantic fork.
    #[test]
    fn csr_delta_compact_equals_rebuild(
        (r, c, trips) in arb_triplets(),
        ops in proptest::collection::vec((0u32..2, 0u32..12, 0u32..12, -5.0f64..5.0), 0..30),
    ) {
        // Unique base entries: duplicate triplets accumulate in
        // implementation-defined order, which would make the f64
        // comparison about summation order instead of the delta.
        let mut base_entries = trips;
        base_entries.sort_by_key(|&(i, j, _)| (i, j));
        base_entries.dedup_by_key(|&mut (i, j, _)| (i, j));
        let base = CsrMatrix::from_triplets(r, c, base_entries.clone());

        let mut model: std::collections::BTreeMap<(u32, u32), f64> =
            base_entries.iter().map(|&(i, j, v)| ((i, j), v)).collect();
        let base_keys: std::collections::BTreeSet<(u32, u32)> =
            base_entries.into_iter().map(|(i, j, _)| (i, j)).collect();
        let mut delta = CsrDelta::new(&base);
        for (op, row, col, val) in ops {
            let (row, col) = (row % r as u32, col % c as u32);
            if op == 0 {
                delta.insert(row as usize, col as usize, val).unwrap();
                model.insert((row, col), val);
            } else if base_keys.contains(&(row, col)) || model.contains_key(&(row, col)) {
                // Removes of base entries are idempotent (the base is
                // frozen); removes of never-present entries fail.
                delta.remove(row as usize, col as usize).unwrap();
                model.remove(&(row, col));
            } else {
                prop_assert!(delta.remove(row as usize, col as usize).is_err());
            }
        }

        let rebuilt = CsrMatrix::from_triplets(
            r,
            c,
            model.into_iter().map(|((i, j), v)| (i, j, v)),
        );
        prop_assert_eq!(delta.compact(), rebuilt);
    }
}
