//! Adversarial-input suite for the SMAT / edge-list loaders.
//!
//! Two layers:
//!
//! 1. a curated corpus of corrupt files under `tests/data/corrupt/`
//!    (repo root), one per failure class — truncated bodies, surplus
//!    bodies, out-of-range indices, overflowing header dims, header
//!    counts that contradict the dims, non-finite values, self-loops,
//!    binary noise — each of which must come back as a typed
//!    [`IoError`], never a panic and never an allocation scaled to the
//!    header's claims;
//! 2. a fuzz-style sweep that truncates a valid file at every byte
//!    offset and substitutes every byte position with a palette of
//!    hostile bytes, asserting the loaders never panic on any mutant
//!    (they may accept or reject — mutation can produce valid files);
//! 3. the same adversarial treatment for the binary NACS container
//!    ([`CsrView::open`]): the corruption is generated programmatically
//!    from a freshly written valid file, since a binary corpus would be
//!    unreviewable. Every mutant must come back as a typed
//!    [`NacsError`] or be byte-identical to the original — the
//!    checksummed header and sections leave no silently-accepted
//!    middle ground.

use netalign_graph::io::{
    read_bipartite_smat, read_edge_list, read_graph_smat, read_smat, IoError,
};
use netalign_graph::nacs::{CsrView, NacsError};
use netalign_graph::CsrMatrix;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corrupt")
}

fn read_corpus(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("corpus file {} missing: {e}", path.display()))
}

/// Run every loader that accepts this extension over the bytes,
/// catching panics; returns the per-loader results.
fn run_loaders(name: &str, bytes: &[u8]) -> Vec<(&'static str, Result<bool, IoError>)> {
    let mut out = Vec::new();
    let mut run = |loader: &'static str, f: &dyn Fn(&[u8]) -> Result<(), IoError>| {
        let r = catch_unwind(AssertUnwindSafe(|| f(bytes)));
        match r {
            Ok(Ok(())) => out.push((loader, Ok(true))),
            Ok(Err(e)) => out.push((loader, Err(e))),
            Err(_) => panic!("loader {loader} PANICKED on {name}"),
        }
    };
    if name.ends_with(".smat") {
        run("read_smat", &|b| read_smat(b).map(|_| ()));
        run("read_bipartite_smat", &|b| {
            read_bipartite_smat(b).map(|_| ())
        });
        run("read_graph_smat", &|b| read_graph_smat(b).map(|_| ()));
    } else {
        run("read_edge_list", &|b| read_edge_list(b).map(|_| ()));
    }
    out
}

#[test]
fn every_corpus_file_is_rejected_with_a_typed_error() {
    let dir = corpus_dir();
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("corrupt corpus directory") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.ends_with(".smat") || name.ends_with(".edges")) {
            continue;
        }
        seen += 1;
        let bytes = std::fs::read(&path).expect("read corpus file");
        // Some files are corrupt only for a specific loader (e.g. a
        // rectangular adjacency matrix is valid generic SMAT), so the
        // sweep requires that no loader panics and that at least one
        // loader for the format rejects the file.
        let results = run_loaders(&name, &bytes);
        assert!(
            results.iter().any(|(_, r)| r.is_err()),
            "every loader accepted corrupt corpus file {name}"
        );
    }
    assert!(seen >= 12, "corpus unexpectedly small: {seen} files");
}

#[test]
fn corpus_failure_classes_map_to_the_right_variants() {
    let class = |name: &str| {
        let bytes = read_corpus(name);
        if name.ends_with(".smat") {
            read_smat(&bytes[..]).unwrap_err()
        } else {
            read_edge_list(&bytes[..]).unwrap_err()
        }
    };
    assert!(matches!(
        class("truncated_body.smat"),
        IoError::CountMismatch { .. }
    ));
    assert!(matches!(
        class("surplus_body.smat"),
        IoError::CountMismatch { .. }
    ));
    assert!(matches!(
        class("out_of_range.smat"),
        IoError::OutOfRange { .. }
    ));
    assert!(matches!(
        class("huge_nnz.smat"),
        IoError::HeaderOverflow { .. }
    ));
    assert!(matches!(
        class("overflow_dims.smat"),
        IoError::HeaderOverflow { .. }
    ));
    assert!(matches!(
        class("nnz_exceeds_cells.smat"),
        IoError::HeaderOverflow { .. }
    ));
    assert!(matches!(class("empty.smat"), IoError::Parse { .. }));
    assert!(matches!(
        class("garbage_header.smat"),
        IoError::Parse { .. }
    ));
    assert!(matches!(
        class("huge_n.edges"),
        IoError::HeaderOverflow { .. }
    ));
    assert!(matches!(
        class("endpoint_out_of_range.edges"),
        IoError::OutOfRange { .. }
    ));
    assert!(matches!(
        class("truncated.edges"),
        IoError::CountMismatch { .. }
    ));
    assert!(matches!(
        class("impossible_count.edges"),
        IoError::HeaderOverflow { .. }
    ));
    assert!(class("self_loop.edges").to_string().contains("self-loop"));
}

/// Byte palette used for substitution mutations: digits that shift
/// counts, separators that split tokens, a sign, a letter, and raw
/// non-UTF8 noise.
const PALETTE: [u8; 8] = [b'0', b'9', b' ', b'\n', b'-', b'x', 0x00, 0xFF];

fn assert_never_panics(name: &str, base: &[u8]) {
    // Every truncation prefix.
    for cut in 0..=base.len() {
        run_loaders(name, &base[..cut]);
    }
    // Every single-byte substitution from the palette.
    for pos in 0..base.len() {
        for &b in &PALETTE {
            let mut mutant = base.to_vec();
            mutant[pos] = b;
            run_loaders(name, &mutant);
        }
    }
}

#[test]
fn fuzzed_smat_mutants_never_panic() {
    let base = b"3 4 5\n0 0 1.5\n0 3 2.0\n1 1 -0.5\n2 0 4.25\n2 2 0.125\n";
    assert_never_panics("fuzz.smat", base);
}

#[test]
fn fuzzed_edge_list_mutants_never_panic() {
    let base = b"5 4\n0 1\n1 2\n3 4\n0 4\n";
    assert_never_panics("fuzz.edges", base);
}

// ---------------------------------------------------------------------
// NACS container (binary, checksummed)
// ---------------------------------------------------------------------

fn nacs_scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "netalign-corrupt-nacs-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small matrix with every optional section present (weights + perm),
/// so the sweeps cover the full section table.
fn nacs_bytes(dir: &Path) -> Vec<u8> {
    // Structurally symmetric (the transpose permutation demands it).
    let m = CsrMatrix::from_triplets(
        4,
        4,
        vec![
            (0, 1, 1.5),
            (1, 0, -2.0),
            (0, 3, 0.25),
            (3, 0, 4.0),
            (1, 2, 8.5),
            (2, 1, 0.125),
            (2, 2, 7.0),
            (3, 3, -0.5),
        ],
    );
    let path = dir.join("base.nacs");
    m.write_nacs(&path, false, Some(m.transpose_permutation().as_slice()))
        .unwrap();
    std::fs::read(&path).unwrap()
}

/// `CsrView::open` on the bytes, panics trapped.
fn open_mutant(dir: &Path, what: &str, bytes: &[u8]) -> Result<(), NacsError> {
    let path = dir.join("mutant.nacs");
    std::fs::write(&path, bytes).unwrap();
    match catch_unwind(AssertUnwindSafe(|| CsrView::open(&path).map(|_| ()))) {
        Ok(r) => r,
        Err(_) => panic!("CsrView::open PANICKED on {what}"),
    }
}

/// Every truncation prefix of a valid NACS file is rejected with a
/// typed error — short reads must never map or panic.
#[test]
fn truncated_nacs_is_always_rejected() {
    let dir = nacs_scratch("trunc");
    let base = nacs_bytes(&dir);
    for cut in 0..base.len() {
        let r = open_mutant(&dir, &format!("truncation at {cut}"), &base[..cut]);
        assert!(r.is_err(), "accepted a NACS file truncated at byte {cut}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-byte substitutions over the whole file: a mutant is either
/// rejected with a typed error or byte-identical to the original (the
/// palette can write back the byte it replaces). Checksums over the
/// header and every section mean no changed byte may be accepted.
#[test]
fn corrupted_nacs_bytes_are_always_detected() {
    let dir = nacs_scratch("subst");
    let base = nacs_bytes(&dir);
    for pos in 0..base.len() {
        for &b in &PALETTE {
            if base[pos] == b {
                continue; // identity mutation: legitimately accepted
            }
            let mut mutant = base.clone();
            mutant[pos] = b;
            let r = open_mutant(&dir, &format!("substitution {b:#04x} at {pos}"), &mutant);
            assert!(
                r.is_err(),
                "accepted a NACS file with byte {pos} changed to {b:#04x}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Surplus trailing bytes contradict the section table and are
/// rejected, as is an empty file and a file of pure noise.
#[test]
fn nacs_shape_violations_are_rejected() {
    let dir = nacs_scratch("shape");
    let base = nacs_bytes(&dir);
    let mut surplus = base.clone();
    surplus.extend_from_slice(&[0u8; 16]);
    assert!(open_mutant(&dir, "surplus bytes", &surplus).is_err());
    assert!(open_mutant(&dir, "empty file", &[]).is_err());
    let noise: Vec<u8> = (0..512u32)
        .map(|i| (i.wrapping_mul(97) % 251) as u8)
        .collect();
    assert!(open_mutant(&dir, "pure noise", &noise).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
