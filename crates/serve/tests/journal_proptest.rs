//! Property tests of journal torn-tail recovery.
//!
//! The journal's contract: damage at ANY byte — a truncation or a
//! single flipped bit — yields on reopen exactly the prefix of
//! committed records whose bytes lie wholly before the damage, never
//! an error, never a half-record, and the journal stays appendable
//! afterwards. The record framing is fixed-size here (25-byte header +
//! 9-byte begin/commit payload = 34 bytes per record, one begin +
//! one commit per entry), so the surviving prefix is computable from
//! the damage offset alone and the assertions are exact, not "some
//! prefix".

use netalign_serve::durable::DurableStore;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// On-disk size of one journal record as written by
/// `begin_record`/`commit_record`: 25-byte header (magic + kind + seq
/// + len + checksum) + 9-byte payload (op tag + fingerprint).
const RECORD_BYTES: usize = 34;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case directory (proptest reuses the process).
fn case_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "najl-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write `k` committed entries (fingerprints `1..=k`) and return the
/// journal path. Every commit fsyncs, so the bytes are exactly
/// `k * 2 * RECORD_BYTES`.
fn build_journal(dir: &Path, k: u64) -> PathBuf {
    let (mut store, _, _) = DurableStore::open(dir, 1 << 20).expect("open fresh");
    for fp in 1..=k {
        store.begin_record(fp).expect("begin");
        store.commit_record(fp).expect("commit");
    }
    drop(store);
    let path = dir.join("journal.log");
    let len = std::fs::metadata(&path).expect("journal exists").len();
    assert_eq!(
        len as usize,
        k as usize * 2 * RECORD_BYTES,
        "framing drifted"
    );
    path
}

/// What recovery must report given damage starting at `offset`:
/// records wholly before the offset survive; a commit only counts with
/// its record intact; a surviving begin whose commit was damaged is
/// one incomplete entry.
struct Expect {
    replayed: u64,
    incomplete: u64,
    live: Vec<u64>,
}

fn expect_at(offset: usize) -> Expect {
    let intact_records = offset / RECORD_BYTES;
    let replayed = (intact_records / 2) as u64;
    Expect {
        replayed,
        incomplete: (intact_records % 2) as u64,
        live: (1..=replayed).collect(),
    }
}

/// Common verification: reopen after damage, check the exact prefix,
/// then prove the journal is still appendable and that the appended
/// entry survives another reopen.
fn check_recovery(dir: &Path, expect: &Expect, expect_torn: u64) {
    let (mut store, report, entries) = DurableStore::open(dir, 1 << 20).expect("damaged reopen");
    assert_eq!(report.journal_torn_discarded, expect_torn, "torn count");
    assert_eq!(report.journal_replayed, expect.replayed, "replayed count");
    assert_eq!(report.incomplete_discarded, expect.incomplete, "incomplete");
    assert_eq!(report.live_after_replay, expect.live, "committed prefix");
    // No spill files were ever written: every replayed commit is a
    // counted load error and nothing is half-loaded.
    assert_eq!(report.spill_load_errors, expect.replayed);
    assert!(entries.is_empty());
    assert!(store.live().is_empty());

    // The truncated tail must leave the file on a record boundary:
    // appends parse cleanly on the next scan, alongside the prefix.
    store.begin_record(0x9999).expect("begin post-damage");
    store.commit_record(0x9999).expect("commit post-damage");
    drop(store);
    let (_, report2, _) = DurableStore::open(dir, 1 << 20).expect("post-append reopen");
    assert_eq!(
        report2.journal_torn_discarded, 0,
        "append landed off-boundary"
    );
    assert_eq!(report2.journal_replayed, expect.replayed + 1);
    let mut live2 = expect.live.clone();
    live2.push(0x9999);
    assert_eq!(report2.live_after_replay, live2);
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_at_any_offset_yields_exactly_the_intact_prefix(
        k in 1u64..6,
        cut in 0.0f64..1.0,
    ) {
        let dir = case_dir();
        let path = build_journal(&dir, k);
        let len = k as usize * 2 * RECORD_BYTES;
        // Truncate to any length strictly shorter than the file.
        let keep = ((len as f64) * cut) as usize;
        let bytes = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &bytes[..keep]).expect("truncate");

        // A cut on a record boundary is a clean (if short) journal;
        // anything else is a torn tail the scan must count.
        let torn = u64::from(!keep.is_multiple_of(RECORD_BYTES));
        check_recovery(&dir, &expect_at(keep), torn);
    }

    #[test]
    fn a_single_flipped_bit_discards_that_record_and_the_tail(
        k in 1u64..6,
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = case_dir();
        let path = build_journal(&dir, k);
        let len = k as usize * 2 * RECORD_BYTES;
        let byte = (((len as f64) * pos) as usize).min(len - 1);
        let mut bytes = std::fs::read(&path).expect("read journal");
        bytes[byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("flip");

        // The record containing the flipped bit fails its checksum (or
        // magic/length sanity), so the scan stops at its start; the
        // tail after it is discarded even where bitwise intact.
        check_recovery(&dir, &expect_at(byte), 1);
    }
}
