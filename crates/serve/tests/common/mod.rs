//! Shared helpers for the black-box service tests: spawn a real
//! `netalignd` child process on an ephemeral port, build wire-level
//! align documents, and decode replies.

#![allow(dead_code)]

use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_graph::{BipartiteGraph, Graph};
use netalign_serve::client::Client;
use netalign_trace::Json;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// A `netalignd` child on an ephemeral port; killed on drop.
pub struct Daemon {
    child: Child,
    pub addr: SocketAddr,
}

impl Daemon {
    /// Spawn with `--addr 127.0.0.1:0` plus `extra` flags and scrape
    /// the bound address from the announced `listening on` line.
    pub fn spawn(extra: &[&str]) -> Daemon {
        Self::spawn_env(extra, &[])
    }

    /// [`spawn`](Self::spawn) with extra environment variables — the
    /// chaos tests inject `NETALIGN_FAULT_KILL` this way. Works for
    /// `--supervise` too: the supervisor announces `supervising on
    /// <addr>` first, which the same scrape parses.
    pub fn spawn_env(extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_netalignd"));
        cmd.args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn netalignd");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable listening line: {line:?}"));
        Daemon { child, addr }
    }

    /// A fresh connection to this daemon.
    pub fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to daemon")
    }

    /// The daemon's process id (for /proc inspection).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Wait up to `timeout` for the child to exit on its own.
    pub fn wait_for_exit(mut self, timeout: Duration) -> Option<ExitStatus> {
        let end = Instant::now() + timeout;
        while Instant::now() < end {
            if let Ok(Some(status)) = self.child.try_wait() {
                return Some(status);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        None
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Try a clean drain first. Under `--supervise` the listener
        // lives in a grandchild; killing only the supervisor would
        // orphan it (and a leaked child keeps the test harness's
        // output pipes open). The shutdown op reaches the serving
        // process directly, whichever generation it is.
        let end = Instant::now() + Duration::from_secs(3);
        let mut asked = false;
        while Instant::now() < end {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            if !asked {
                // The child may be mid-restart (nothing listening
                // yet); keep trying until the shutdown lands.
                if let Ok(mut c) = Client::connect(self.addr) {
                    let _ = c.set_timeout(Some(Duration::from_secs(1)));
                    asked = c
                        .request(&Json::obj(vec![("op", Json::str("shutdown"))]))
                        .is_ok();
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Serialize a graph the way the wire expects it.
pub fn graph_json(g: &Graph) -> Json {
    let edges = g
        .edges()
        .map(|(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
        .collect();
    Json::obj(vec![
        ("n", Json::U64(g.num_vertices() as u64)),
        ("edges", Json::Arr(edges)),
    ])
}

/// Serialize a candidate graph the way the wire expects it.
pub fn candidate_json(l: &BipartiteGraph) -> Json {
    let entries = (0..l.num_edges())
        .map(|e| {
            let (a, b) = l.endpoints(e);
            Json::Arr(vec![
                Json::U64(a as u64),
                Json::U64(b as u64),
                Json::F64(l.weight(e)),
            ])
        })
        .collect();
    Json::obj(vec![("entries", Json::Arr(entries))])
}

/// One synthetic align request: the paper's recipe, deterministic in
/// `seed`. Weights are exactly representable so wire round-trips are
/// bit-exact.
pub fn align_doc(n: usize, seed: u64, iterations: usize, deadline_ms: Option<u64>) -> Json {
    let base = power_law_graph(n, 2.5, 12, 0x5eed + seed);
    let a = add_random_edges(&base, 1.0 / n as f64, 2 * seed + 1);
    let b = add_random_edges(&base, 1.0 / n as f64, 2 * seed + 2);
    let l = identity_plus_noise_l(n, n, 4.0 / n as f64, 1.0, 0.5, 3 * seed + 5);
    let mut pairs = vec![
        ("op", Json::str("align")),
        ("method", Json::str("bp")),
        (
            "config",
            Json::obj(vec![("iterations", Json::U64(iterations as u64))]),
        ),
        ("a", graph_json(&a)),
        ("b", graph_json(&b)),
        ("l", candidate_json(&l)),
    ];
    if let Some(d) = deadline_ms {
        pairs.push(("deadline_ms", Json::U64(d)));
    }
    Json::obj(pairs)
}

/// A deliberately build-heavy align request: dense candidate set and
/// high-degree graphs so the squares-matrix construction — the cost a
/// warm serve skips — is a large, stable fraction of a cold serve.
pub fn heavy_align_doc(n: usize, seed: u64, iterations: usize) -> Json {
    let base = power_law_graph(n, 2.2, 50, 0x5eed + seed);
    let a = add_random_edges(&base, 2.0 / n as f64, 2 * seed + 1);
    let b = add_random_edges(&base, 2.0 / n as f64, 2 * seed + 2);
    let l = identity_plus_noise_l(n, n, 40.0 / n as f64, 1.0, 0.5, 3 * seed + 5);
    Json::obj(vec![
        ("op", Json::str("align")),
        ("method", Json::str("bp")),
        (
            "config",
            Json::obj(vec![("iterations", Json::U64(iterations as u64))]),
        ),
        ("a", graph_json(&a)),
        ("b", graph_json(&b)),
        ("l", candidate_json(&l)),
    ])
}

/// Decode the matching array of a 200 reply into sorted pairs.
pub fn reply_matching(reply: &Json) -> Vec<(u64, u64)> {
    let mut pairs: Vec<(u64, u64)> = reply
        .get("matching")
        .and_then(Json::as_arr)
        .expect("matching array")
        .iter()
        .map(|p| {
            let p = p.as_arr().expect("pair");
            (p[0].as_u64().unwrap(), p[1].as_u64().unwrap())
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Fetch `field` (a f64) from a reply, panicking with context.
pub fn reply_f64(reply: &Json, field: &str) -> f64 {
    reply
        .get(field)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing f64 field '{field}' in {}", reply.render()))
}

/// Fetch the server metrics snapshot.
pub fn fetch_metrics(daemon: &Daemon) -> Json {
    let mut c = daemon.client();
    c.set_timeout(Some(Duration::from_secs(15)))
        .expect("timeout");
    let reply = c
        .request(&Json::obj(vec![("op", Json::str("metrics"))]))
        .expect("metrics request");
    reply.get("metrics").expect("metrics body").clone()
}

/// Walk a dotted path into nested objects.
pub fn metric_u64(metrics: &Json, path: &str) -> u64 {
    let mut cur = metrics;
    for part in path.split('.') {
        cur = cur
            .get(part)
            .unwrap_or_else(|| panic!("missing metric '{path}'"));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("metric '{path}' is not a u64"))
}
