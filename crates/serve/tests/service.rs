//! Black-box tests of `netalignd`: every test spawns the real binary
//! on an ephemeral port and speaks the wire protocol — nothing in here
//! reaches into server internals.

mod common;

use common::{align_doc, fetch_metrics, metric_u64, reply_f64, reply_matching, Daemon};
use netalign_core::harness::RunHarness;
use netalign_core::problem::NetAlignProblem;
use netalign_serve::client::response_code;
use netalign_serve::protocol::{parse_request, Request};
use netalign_trace::Json;
use std::time::{Duration, Instant};

/// Re-parse a wire document exactly the way the server does and solve
/// it directly with the run harness — the reference the service must
/// match bit for bit.
fn direct_reference(doc: &Json) -> (f64, Vec<(u64, u64)>, u64) {
    let payload = doc.render();
    let Request::Align(req) = parse_request(payload.as_bytes()).expect("parse own doc") else {
        panic!("expected align request");
    };
    let problem = NetAlignProblem::new(req.a.clone(), req.b.clone(), req.l.clone());
    let outcome = RunHarness::new()
        .run_bp(&problem, &req.config)
        .expect("direct solve");
    let mut pairs: Vec<(u64, u64)> = outcome
        .result
        .matching
        .pairs()
        .map(|(a, b)| (a as u64, b as u64))
        .collect();
    pairs.sort_unstable();
    (
        outcome.result.objective,
        pairs,
        outcome.iterations_run as u64,
    )
}

#[test]
fn served_alignment_is_bit_identical_to_direct_harness() {
    let daemon = Daemon::spawn(&[]);
    let doc = align_doc(70, 1, 8, None);
    let (objective, pairs, iterations) = direct_reference(&doc);

    let mut client = daemon.client();
    let reply = client.request(&doc).expect("align request");
    assert_eq!(response_code(&reply), 200, "reply: {}", reply.render());
    assert_eq!(
        reply_f64(&reply, "objective").to_bits(),
        objective.to_bits(),
        "served objective must be bit-identical to the direct harness"
    );
    assert_eq!(reply_matching(&reply), pairs);
    assert_eq!(
        reply.get("iterations_run").and_then(Json::as_u64),
        Some(iterations)
    );
    assert_eq!(
        reply.get("completion").and_then(Json::as_str),
        Some("completed")
    );
}

#[test]
fn warm_repeat_is_flagged_and_faster_and_still_bit_identical() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    // Build-heavy problem, one iteration: the squares-matrix build the
    // warm serve skips is ~a third of the cold serve, far above timing
    // noise.
    let doc = common::heavy_align_doc(200, 2, 1);

    let cold = client.request(&doc).expect("cold request");
    assert_eq!(response_code(&cold), 200);
    assert_eq!(cold.get("warm").and_then(Json::as_bool), Some(false));

    let warm_started = Instant::now();
    let warm = client.request(&doc).expect("warm request");
    let warm_wall = warm_started.elapsed();
    assert_eq!(response_code(&warm), 200);
    assert_eq!(
        warm.get("warm").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from the engine cache"
    );

    // Warm reuse must never change the answer.
    assert_eq!(
        reply_f64(&warm, "objective").to_bits(),
        reply_f64(&cold, "objective").to_bits()
    );
    assert_eq!(reply_matching(&warm), reply_matching(&cold));

    // And it must be measurably cheaper: the warm serve skips the
    // problem build entirely.
    let cold_solve = reply_f64(&cold, "solve_ms");
    let warm_solve = reply_f64(&warm, "solve_ms");
    assert!(
        warm_solve < cold_solve,
        "warm solve ({warm_solve:.2}ms) should beat cold ({cold_solve:.2}ms)"
    );
    assert!(
        warm_wall < Duration::from_secs(30),
        "warm serve took implausibly long"
    );

    let metrics = fetch_metrics(&daemon);
    assert!(metric_u64(&metrics, "cache.hits") >= 1);
    assert_eq!(metric_u64(&metrics, "cache.misses"), 1);
}

#[test]
fn tight_deadline_returns_best_so_far_not_an_error() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    // Far more iterations than 20ms allows: the SLO must clip the run.
    let doc = align_doc(120, 3, 200_000, Some(20));
    let reply = client.request(&doc).expect("deadline request");
    assert_eq!(
        response_code(&reply),
        200,
        "a tight deadline is not an error: {}",
        reply.render()
    );
    assert_eq!(
        reply.get("completion").and_then(Json::as_str),
        Some("deadline-best-so-far")
    );
    let iterations = reply
        .get("iterations_run")
        .and_then(Json::as_u64)
        .expect("iterations_run");
    assert!(
        iterations < 200_000,
        "the run must have been clipped, ran {iterations}"
    );
    // Best-so-far still carries a usable (feasible, scored) result.
    assert!(reply_f64(&reply, "objective").is_finite());
    let metrics = fetch_metrics(&daemon);
    assert_eq!(metric_u64(&metrics, "deadline_best_so_far"), 1);
}

#[test]
fn align_delta_replays_the_recorded_base_and_matches_a_cold_realign() {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();

    // Recorded base align: same doc as a plain align plus record:true.
    let mut doc = align_doc(70, 9, 10, None);
    let Json::Obj(pairs) = &mut doc else { panic!() };
    pairs.push(("record".to_string(), Json::Bool(true)));
    let base_reply = client.request(&doc).expect("recorded align");
    assert_eq!(response_code(&base_reply), 200, "{}", base_reply.render());
    assert_eq!(
        base_reply.get("recorded").and_then(Json::as_bool),
        Some(true)
    );
    let base_fp = base_reply
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();

    // Pick delta edits against our own doc: reweight the first
    // candidate edge and insert a currently-absent candidate pair.
    let Request::Align(req) = parse_request(doc.render().as_bytes()).expect("parse own doc") else {
        panic!("expected align request");
    };
    let (r0, r1) = req.l.endpoints(0);
    let existing: std::collections::HashSet<(u32, u32)> =
        (0..req.l.num_edges()).map(|e| req.l.endpoints(e)).collect();
    let (iu, iv) = (0..req.l.num_left() as u32)
        .flat_map(|u| (0..req.l.num_right() as u32).map(move |v| (u, v)))
        .find(|p| !existing.contains(p))
        .expect("a free candidate slot");

    let delta_doc = Json::obj(vec![
        ("op", Json::str("align_delta")),
        ("id", Json::str("d-1")),
        ("base", Json::str(base_fp.clone())),
        (
            "l",
            Json::obj(vec![
                (
                    "insert",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::U64(iu as u64),
                        Json::U64(iv as u64),
                        Json::F64(0.5),
                    ])]),
                ),
                (
                    "reweight",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::U64(r0 as u64),
                        Json::U64(r1 as u64),
                        Json::F64(1.25),
                    ])]),
                ),
            ]),
        ),
    ]);
    let delta_reply = client.request(&delta_doc).expect("align_delta");
    assert_eq!(response_code(&delta_reply), 200, "{}", delta_reply.render());
    let new_fp = delta_reply
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("new fingerprint")
        .to_string();
    assert_ne!(new_fp, base_fp, "the patched problem must be re-keyed");
    let reused = delta_reply
        .get("delta")
        .and_then(|d| d.get("reused_iterations"))
        .and_then(Json::as_u64)
        .expect("delta.reused_iterations");
    assert!(reused >= 1, "replay must reuse recorded iterations");

    // The reference: a cold align of the *patched* graphs, solved
    // directly. Entry order is immaterial — L is canonicalized on
    // build — so the client-side rebuild is the same problem.
    let patched_entries: Vec<Json> = (0..req.l.num_edges())
        .map(|e| {
            let (a, b) = req.l.endpoints(e);
            let w = if (a, b) == (r0, r1) {
                1.25
            } else {
                req.l.weight(e)
            };
            Json::Arr(vec![Json::U64(a as u64), Json::U64(b as u64), Json::F64(w)])
        })
        .chain(std::iter::once(Json::Arr(vec![
            Json::U64(iu as u64),
            Json::U64(iv as u64),
            Json::F64(0.5),
        ])))
        .collect();
    let patched_doc = Json::obj(vec![
        ("op", Json::str("align")),
        ("method", Json::str("bp")),
        ("config", Json::obj(vec![("iterations", Json::U64(10))])),
        ("a", common::graph_json(&req.a)),
        ("b", common::graph_json(&req.b)),
        (
            "l",
            Json::obj(vec![("entries", Json::Arr(patched_entries))]),
        ),
    ]);
    let Request::Align(patched_req) = parse_request(patched_doc.render().as_bytes()).unwrap()
    else {
        panic!("expected align request");
    };
    assert_eq!(
        netalign_serve::fingerprint::render_fingerprint(patched_req.fingerprint),
        new_fp,
        "the delta reply's fingerprint must equal a cold client's key for the patched graphs"
    );
    let (objective, matching, _) = direct_reference(&patched_doc);
    assert_eq!(
        reply_f64(&delta_reply, "objective").to_bits(),
        objective.to_bits(),
        "delta re-align must be bit-identical to a cold solve of the patched problem"
    );
    assert_eq!(reply_matching(&delta_reply), matching);

    // Deltas chain: the re-keyed entry answers to the new fingerprint.
    let chain_doc = Json::obj(vec![
        ("op", Json::str("align_delta")),
        ("base", Json::str(new_fp.clone())),
        (
            "l",
            Json::obj(vec![(
                "reweight",
                Json::Arr(vec![Json::Arr(vec![
                    Json::U64(r0 as u64),
                    Json::U64(r1 as u64),
                    Json::F64(0.75),
                ])]),
            )]),
        ),
    ]);
    let chain_reply = client.request(&chain_doc).expect("chained delta");
    assert_eq!(response_code(&chain_reply), 200, "{}", chain_reply.render());

    // The old key is gone (re-keyed away) → typed 422, the fallback
    // signal a client needs to re-align with record:true.
    let stale = client.request(&delta_doc).expect("stale-base delta");
    assert_eq!(response_code(&stale), 422, "{}", stale.render());

    // An align served WITHOUT record cannot be a delta base → 422.
    let unrecorded = align_doc(40, 4, 4, None);
    let reply = client.request(&unrecorded).expect("plain align");
    assert_eq!(response_code(&reply), 200);
    let plain_fp = reply
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let bad = Json::obj(vec![
        ("op", Json::str("align_delta")),
        ("base", Json::str(plain_fp)),
        (
            "l",
            Json::obj(vec![(
                "reweight",
                Json::Arr(vec![Json::Arr(vec![
                    Json::U64(0),
                    Json::U64(0),
                    Json::F64(2.0),
                ])]),
            )]),
        ),
    ]);
    let reply = client.request(&bad).expect("unrecorded-base delta");
    assert_eq!(response_code(&reply), 422, "{}", reply.render());

    let metrics = fetch_metrics(&daemon);
    assert_eq!(metric_u64(&metrics, "delta.served"), 2);
    assert_eq!(metric_u64(&metrics, "delta.rejected"), 2);
    assert!(metric_u64(&metrics, "delta.reused_iterations") >= 1);
}

#[test]
fn malformed_and_oversized_requests_get_typed_errors_and_service_continues() {
    let daemon = Daemon::spawn(&["--max-frame-bytes", "4096"]);
    let mut client = daemon.client();

    // Garbage bytes → 400.
    let reply = client.request_raw(b"this is not json").expect("raw send");
    assert_eq!(response_code(&reply), 400);

    // Valid JSON, unknown op → 400.
    let reply = client
        .request(&Json::obj(vec![("op", Json::str("teleport"))]))
        .expect("unknown op");
    assert_eq!(response_code(&reply), 400);

    // Well-formed align with an out-of-range edge → 422.
    let bad = r#"{"op":"align","a":{"n":2,"edges":[[0,7]]},
                  "b":{"n":2,"edges":[[0,1]]},"l":{"entries":[[0,0,1.0]]}}"#;
    let reply = client.request_raw(bad.as_bytes()).expect("invalid align");
    assert_eq!(response_code(&reply), 422);

    // A frame over the limit → 413, and the connection stays usable.
    let reply = client.request_raw(&vec![b'x'; 8192]).expect("oversized");
    assert_eq!(response_code(&reply), 413);

    // Same connection, same server: real work still succeeds.
    let reply = client
        .request(&Json::obj(vec![("op", Json::str("ping"))]))
        .expect("ping after errors");
    assert_eq!(response_code(&reply), 200);
    let reply = client.request(&align_doc(40, 4, 4, None)).expect("align");
    assert_eq!(response_code(&reply), 200);

    let metrics = fetch_metrics(&daemon);
    assert_eq!(metric_u64(&metrics, "errors.malformed"), 2);
    assert_eq!(metric_u64(&metrics, "errors.invalid"), 1);
    assert_eq!(metric_u64(&metrics, "errors.oversized"), 1);
}

#[test]
fn metrics_and_health_expose_distributed_run_counters() {
    let daemon = Daemon::spawn(&[]);

    // The counters must be present (and zero) even in a daemon that
    // has never coordinated a distributed run — dashboards scrape them
    // unconditionally, and `metric_u64` panics on a missing key.
    let metrics = fetch_metrics(&daemon);
    for key in [
        "dist.solves",
        "dist.worker_restarts",
        "dist.retransmissions",
        "dist.repartitions",
        "dist.recoveries",
    ] {
        assert_eq!(metric_u64(&metrics, key), 0, "{key}");
    }

    // `health` carries the same counters so a supervisor can spot
    // recovery churn without the full metrics document.
    let mut client = daemon.client();
    let reply = client
        .request(&Json::obj(vec![("op", Json::str("health"))]))
        .expect("health request");
    assert_eq!(response_code(&reply), 200, "{}", reply.render());
    let dist = reply.get("dist").expect("health reply must carry dist");
    assert_eq!(dist.get("solves").and_then(Json::as_u64), Some(0));
    assert_eq!(dist.get("recoveries").and_then(Json::as_u64), Some(0));
}

#[test]
fn shutdown_drains_in_flight_work_then_exits_cleanly() {
    let daemon = Daemon::spawn(&[]);

    // Client A: a solve heavy enough to still be running when the
    // shutdown lands (no deadline — it must be drained, not clipped).
    let mut client_a = daemon.client();
    let in_flight = std::thread::spawn(move || client_a.request(&align_doc(150, 5, 400, None)));
    std::thread::sleep(Duration::from_millis(200));

    // Client B orders the drain.
    let mut client_b = daemon.client();
    let reply = client_b
        .request(&Json::obj(vec![("op", Json::str("shutdown"))]))
        .expect("shutdown request");
    assert_eq!(response_code(&reply), 200);

    // New work is refused (typed 503) or the connection is already
    // closed — either way, nothing new is admitted.
    match client_b.request(&align_doc(40, 6, 4, None)) {
        Ok(reply) => assert_eq!(response_code(&reply), 503, "{}", reply.render()),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
    }

    // The in-flight request is answered in full, not dropped.
    let reply = in_flight
        .join()
        .expect("client thread")
        .expect("in-flight reply");
    assert_eq!(response_code(&reply), 200, "{}", reply.render());
    assert_eq!(
        reply.get("completion").and_then(Json::as_str),
        Some("completed")
    );

    // And the daemon exits 0 on its own.
    let status = daemon
        .wait_for_exit(Duration::from_secs(30))
        .expect("daemon should exit after draining");
    assert!(status.success(), "exit status: {status:?}");
}
