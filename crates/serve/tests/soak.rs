//! Concurrency soak: many clients, more distinct problems than the
//! cache holds, every response re-validated as a feasible matching,
//! determinism pinned across warm/cold/evicted serves, and a bounded
//! memory envelope.

mod common;

use common::{align_doc, fetch_metrics, metric_u64, reply_f64, reply_matching, Daemon};
use netalign_serve::client::response_code;
use netalign_serve::protocol::{parse_request, Request};
use netalign_trace::Json;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 18;
const PROBLEMS: u64 = 5; // > cache capacity below → constant eviction
const VERTICES: usize = 60;
const ITERATIONS: usize = 6;

/// The legal edge set and sides of problem `seed`, derived through the
/// same parser the server uses.
struct LegalEdges {
    edges: HashSet<(u64, u64)>,
}

fn legal_edges(seed: u64) -> LegalEdges {
    let doc = align_doc(VERTICES, seed, ITERATIONS, None);
    let Request::Align(req) = parse_request(doc.render().as_bytes()).expect("parse") else {
        panic!("expected align");
    };
    let edges = (0..req.l.num_edges())
        .map(|e| {
            let (a, b) = req.l.endpoints(e);
            (a as u64, b as u64)
        })
        .collect();
    LegalEdges { edges }
}

/// A feasible matching: every pair is an edge of `L`, and no endpoint
/// repeats on either side.
fn assert_feasible(legal: &LegalEdges, pairs: &[(u64, u64)], context: &str) {
    let mut left = HashSet::new();
    let mut right = HashSet::new();
    for &(a, b) in pairs {
        assert!(
            legal.edges.contains(&(a, b)),
            "{context}: matched pair ({a},{b}) is not an edge of L"
        );
        assert!(left.insert(a), "{context}: left vertex {a} matched twice");
        assert!(right.insert(b), "{context}: right vertex {b} matched twice");
    }
}

#[test]
fn soak_concurrent_clients_with_cache_thrash() {
    // Capacity 2 with 5 live fingerprints: every client round forces
    // evictions, so the reset-on-evict and rebuild paths run hot.
    let daemon = Daemon::spawn(&["--cache-capacity", "2", "--queue-capacity", "64"]);

    let legal: Vec<LegalEdges> = (0..PROBLEMS).map(legal_edges).collect();

    // Deterministic warm phase: an immediate repeat of the same
    // fingerprint with nothing else running MUST hit the cache. (The
    // storm below cycles 5 problems through 2 slots — an access
    // pattern that can legitimately defeat LRU entirely, so it cannot
    // be relied on for hits.)
    {
        let mut warmup = daemon.client();
        let doc = align_doc(VERTICES, 0, ITERATIONS, None);
        for _ in 0..2 {
            let reply = warmup.request(&doc).expect("warmup align");
            assert_eq!(response_code(&reply), 200);
        }
        let metrics = fetch_metrics(&daemon);
        assert_eq!(metric_u64(&metrics, "cache.hits"), 1);
    }
    // objective bits + matching per problem, from whichever response
    // lands first; all later responses must agree bit-for-bit.
    type Pinned = HashMap<u64, (u64, Vec<(u64, u64)>)>;
    let pinned: Mutex<Pinned> = Mutex::new(HashMap::new());

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let legal = &legal;
            let pinned = &pinned;
            let daemon = &daemon;
            scope.spawn(move || {
                let mut client = daemon.client();
                for i in 0..REQUESTS_PER_CLIENT {
                    // Interleaved strides: clients collide on problems
                    // in different orders, thrashing the LRU.
                    let seed = ((client_idx + i * 3) as u64) % PROBLEMS;
                    let doc = align_doc(VERTICES, seed, ITERATIONS, None);
                    let reply = client.request(&doc).expect("align during soak");
                    let context = format!("client {client_idx} request {i} problem {seed}");
                    assert_eq!(response_code(&reply), 200, "{context}: {}", reply.render());
                    let pairs = reply_matching(&reply);
                    assert_feasible(&legal[seed as usize], &pairs, &context);
                    let bits = reply_f64(&reply, "objective").to_bits();
                    assert!(reply_f64(&reply, "objective").is_finite(), "{context}");

                    let mut pinned = pinned.lock().unwrap();
                    match pinned.get(&seed) {
                        None => {
                            pinned.insert(seed, (bits, pairs));
                        }
                        Some((expect_bits, expect_pairs)) => {
                            assert_eq!(
                                bits, *expect_bits,
                                "{context}: objective drifted across serves"
                            );
                            assert_eq!(
                                &pairs, expect_pairs,
                                "{context}: matching drifted across serves"
                            );
                        }
                    }
                }
            });
        }
    });

    let metrics = fetch_metrics(&daemon);
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 2;
    assert_eq!(metric_u64(&metrics, "align_ok"), total);
    assert_eq!(metric_u64(&metrics, "errors.internal"), 0);
    assert_eq!(metric_u64(&metrics, "errors.overload"), 0);
    // 5 problems in a 2-slot cache: misses and evictions are certain;
    // repeats across 72 requests still land plenty of hits.
    assert!(metric_u64(&metrics, "cache.hits") > 0, "no warm serves");
    assert!(
        metric_u64(&metrics, "cache.evictions") > 0,
        "cache never thrashed"
    );
    assert!(metric_u64(&metrics, "cache.entries") <= 2);

    // Memory envelope: tiny problems, so anything near a gigabyte
    // means the cache or the queue is leaking whole problems.
    let rss_kb = metrics
        .get("process")
        .and_then(|p| p.get("vm_rss_kb"))
        .and_then(Json::as_u64)
        .expect("vm_rss_kb on Linux");
    assert!(
        rss_kb < 1_000_000,
        "daemon RSS {rss_kb} kB exceeds the 1 GB soak envelope"
    );
}
