//! Chaos suite: SIGKILL-grade crashes at every fault point, supervised
//! restart, journal replay — and the recovered server must answer
//! `align_delta` **bit-identically** to an uncrashed control run.
//!
//! Every test follows the same shape:
//!
//! 1. A control daemon (no faults) records a base and serves one
//!    delta; its reply is the reference bits.
//! 2. A supervised chaos daemon with `NETALIGN_FAULT_KILL=<point>@1`
//!    and a fresh `--state-dir` takes the same traffic. The first
//!    recorded align dies at the fault point (`std::process::abort`,
//!    the SIGKILL equivalent: no unwinding, no flushing).
//! 3. The supervisor restarts the child (fault env stripped), which
//!    replays the journal. Clients reconnect-and-retry; none may hang
//!    (every socket op carries a timeout) and none may see a
//!    malformed frame (`Client` rejects those as errors).
//! 4. The post-recovery delta reply must match the control bit for
//!    bit: objective/weight/overlap `to_bits()`, the full matching,
//!    and the patched fingerprint.

mod common;

use common::{align_doc, fetch_metrics, metric_u64, Daemon};
use netalign_serve::client::{response_code, Client};
use netalign_serve::protocol::{parse_request, Request};
use netalign_trace::Json;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Every client op is bounded by this; a hung server fails the test
/// instead of wedging it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(15);
/// Outer patience for crash + backoff + restart + recovery.
const PATIENCE: Duration = Duration::from_secs(60);

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netalignd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The recorded-base request all runs share (deterministic, so the
/// control and chaos daemons compute the same fingerprint).
fn recorded_doc() -> Json {
    let mut doc = align_doc(48, 7, 6, None);
    let Json::Obj(pairs) = &mut doc else { panic!() };
    pairs.push(("record".to_string(), Json::Bool(true)));
    doc
}

/// A valid delta against `recorded_doc`'s candidate set: reweight its
/// first candidate edge.
fn delta_doc(base_fp: &str) -> Json {
    let doc = recorded_doc();
    let Request::Align(req) = parse_request(doc.render().as_bytes()).expect("parse own doc") else {
        panic!("expected align request");
    };
    let (r0, r1) = req.l.endpoints(0);
    Json::obj(vec![
        ("op", Json::str("align_delta")),
        ("base", Json::str(base_fp)),
        (
            "l",
            Json::obj(vec![(
                "reweight",
                Json::Arr(vec![Json::Arr(vec![
                    Json::U64(r0 as u64),
                    Json::U64(r1 as u64),
                    Json::F64(1.25),
                ])]),
            )]),
        ),
    ])
}

/// Keep reconnecting-and-retrying `doc` until a 200 lands: connection
/// errors mean the server is mid-crash or mid-restart, a 503 with
/// `retry_after_ms` means boot recovery is still replaying. Any other
/// reply code is a hard failure (the crash must never surface as a
/// 4xx/5xx to a retrying client).
fn request_until_ok(addr: SocketAddr, doc: &Json) -> Json {
    let deadline = Instant::now() + PATIENCE;
    loop {
        assert!(
            Instant::now() < deadline,
            "no 200 within {PATIENCE:?} for {}",
            doc.render()
        );
        let Ok(mut client) = Client::connect(addr) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
        match client.request(doc) {
            Ok(reply) => match response_code(&reply) {
                200 => return reply,
                503 if reply.get("retry_after_ms").is_some() => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => panic!("unexpected reply code {other}: {}", reply.render()),
            },
            // Crashed mid-request: reconnect and retry.
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Connect with patience: the supervisor announces the address before
/// the serving child has bound it, so the first connect can be
/// refused. Retry until the listener is up.
fn connect_patient(addr: SocketAddr) -> Client {
    let deadline = Instant::now() + PATIENCE;
    loop {
        match Client::connect(addr) {
            Ok(mut client) => {
                client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
                return client;
            }
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "no listener within {PATIENCE:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Poll `health` until the serving child reports ready.
fn wait_until_ready(addr: SocketAddr) {
    let doc = Json::obj(vec![("op", Json::str("health"))]);
    let deadline = Instant::now() + PATIENCE;
    loop {
        assert!(Instant::now() < deadline, "server never became ready");
        if let Ok(mut client) = Client::connect(addr) {
            client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
            if let Ok(reply) = client.request(&doc) {
                if reply.get("ready").and_then(Json::as_bool) == Some(true) {
                    return;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The bits a delta reply must reproduce exactly.
#[derive(Debug, PartialEq)]
struct ReplyBits {
    objective: u64,
    weight: u64,
    overlap: u64,
    matching: Vec<(u64, u64)>,
    fingerprint: String,
}

fn reply_bits(reply: &Json) -> ReplyBits {
    let f = |k: &str| {
        reply
            .get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing {k} in {}", reply.render()))
            .to_bits()
    };
    ReplyBits {
        objective: f("objective"),
        weight: f("weight"),
        overlap: f("overlap"),
        matching: common::reply_matching(reply),
        fingerprint: reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_string(),
    }
}

/// The uncrashed reference: record + delta on a plain daemon.
fn control_bits() -> (String, ReplyBits) {
    let daemon = Daemon::spawn(&[]);
    let mut client = daemon.client();
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    let rec = client.request(&recorded_doc()).expect("control record");
    assert_eq!(response_code(&rec), 200, "{}", rec.render());
    let fp = rec
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("control fingerprint")
        .to_string();
    let delta = client.request(&delta_doc(&fp)).expect("control delta");
    assert_eq!(response_code(&delta), 200, "{}", delta.render());
    (fp, reply_bits(&delta))
}

/// Spawn the supervised chaos daemon with a kill point armed.
fn chaos_daemon(dir: &Path, point: &str) -> Daemon {
    Daemon::spawn_env(
        &[
            "--supervise",
            "--state-dir",
            dir.to_str().expect("utf-8 dir"),
            "--allow-crash-op",
        ],
        &[("NETALIGN_FAULT_KILL", &format!("{point}@1"))],
    )
}

/// Shut the supervised daemon down cleanly and check the clean exit
/// propagates through the supervisor as status 0.
fn clean_shutdown(daemon: Daemon) {
    if let Ok(mut client) = Client::connect(daemon.addr) {
        client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
        let _ = client.request(&Json::obj(vec![("op", Json::str("shutdown"))]));
    }
    let status = daemon
        .wait_for_exit(Duration::from_secs(20))
        .expect("supervisor exits after drain");
    assert!(status.success(), "clean drain must propagate exit 0");
}

/// The common crash-and-verify flow for fault points that lose the
/// in-flight record (`solve`, `journal-append`, `spill-rename`): the
/// retried record must land 200 on the restarted child, and the delta
/// against it must match the control bit for bit.
fn crash_then_retry_record(point: &str) -> Json {
    let (_, control) = control_bits();
    let dir = state_dir(point);
    let daemon = chaos_daemon(&dir, point);

    // The first attempt dies at the fault point; retries land on the
    // restarted child.
    let rec = request_until_ok(daemon.addr, &recorded_doc());
    let fp = rec
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    let delta = request_until_ok(daemon.addr, &delta_doc(&fp));
    assert_eq!(
        reply_bits(&delta),
        control,
        "post-recovery delta must be bit-identical to the uncrashed control"
    );

    let metrics = fetch_metrics(&daemon);
    assert!(
        metric_u64(&metrics, "durable.restarts") >= 1,
        "the serving child must have been restarted: {}",
        metrics.render()
    );
    clean_shutdown(daemon);
    let _ = std::fs::remove_dir_all(&dir);
    metrics
}

#[test]
fn kill_mid_solve_restarts_and_serves_bit_identically() {
    crash_then_retry_record("solve");
}

#[test]
fn kill_mid_journal_append_discards_torn_tail_and_recovers() {
    let metrics = crash_then_retry_record("journal-append");
    // The half-written commit record is the torn tail the recovery
    // scan must detect, count, and truncate.
    assert!(
        metric_u64(&metrics, "durable.journal_torn_discarded") >= 1,
        "torn journal tail must be counted: {}",
        metrics.render()
    );
}

#[test]
fn kill_mid_spill_rename_discards_orphan_and_recovers() {
    let metrics = crash_then_retry_record("spill-rename");
    // The begin was journaled but never committed; recovery discards
    // it rather than loading the orphaned tmp spill.
    assert_eq!(
        metric_u64(&metrics, "durable.spill_load_errors"),
        0,
        "an uncommitted spill must be invisible, not a load error: {}",
        metrics.render()
    );
}

#[test]
fn kill_before_reply_replays_committed_base_from_the_journal() {
    // At the `reply` point the spill + commit are already durable —
    // only the answer is lost. The restarted child must serve
    // `align_delta` from the *journal-recovered* base without any
    // re-align, bit-identically to the control.
    let (control_fp, control) = control_bits();
    let dir = state_dir("reply");
    let daemon = chaos_daemon(&dir, "reply");

    // This request's reply dies with the child; the work it did
    // survives in the state dir.
    let mut first = connect_patient(daemon.addr);
    let died = first.request(&recorded_doc());
    assert!(died.is_err(), "the armed reply kill must drop the reply");

    wait_until_ready(daemon.addr);
    let delta = request_until_ok(daemon.addr, &delta_doc(&control_fp));
    assert_eq!(
        reply_bits(&delta),
        control,
        "journal-recovered base must replay deltas bit-identically"
    );

    let metrics = fetch_metrics(&daemon);
    assert!(metric_u64(&metrics, "durable.restarts") >= 1);
    assert!(
        metric_u64(&metrics, "durable.recoveries") >= 1,
        "boot must count a journal recovery: {}",
        metrics.render()
    );
    assert!(metric_u64(&metrics, "durable.journal_replayed") >= 1);
    clean_shutdown(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_op_is_gated_and_supervised_restart_recovers_from_it() {
    // The `crash` op (SIGKILL stand-in without env plumbing) must be
    // refused without the gate...
    let plain = Daemon::spawn(&[]);
    let mut client = plain.client();
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    let refused = client
        .request(&Json::obj(vec![("op", Json::str("crash"))]))
        .expect("gated crash reply");
    assert_eq!(response_code(&refused), 422, "{}", refused.render());
    drop(plain);

    // ...and with the gate + supervision, a crash after a committed
    // record is fully recoverable: the restarted child serves the
    // delta from the journal alone.
    let (control_fp, control) = control_bits();
    let dir = state_dir("crash-op");
    let daemon = Daemon::spawn_env(
        &[
            "--supervise",
            "--state-dir",
            dir.to_str().expect("utf-8 dir"),
            "--allow-crash-op",
        ],
        &[],
    );
    let rec = request_until_ok(daemon.addr, &recorded_doc());
    assert_eq!(
        rec.get("fingerprint").and_then(Json::as_str),
        Some(control_fp.as_str())
    );
    let mut killer = connect_patient(daemon.addr);
    let crashed = killer.request(&Json::obj(vec![("op", Json::str("crash"))]));
    assert!(crashed.is_err(), "crash op aborts without a reply");

    wait_until_ready(daemon.addr);
    let delta = request_until_ok(daemon.addr, &delta_doc(&control_fp));
    assert_eq!(reply_bits(&delta), control);
    let metrics = fetch_metrics(&daemon);
    assert!(metric_u64(&metrics, "durable.restarts") >= 1);
    assert!(metric_u64(&metrics, "durable.journal_replayed") >= 1);
    clean_shutdown(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conn_timeout_answers_408_and_preserves_other_connections() {
    let daemon = Daemon::spawn(&["--conn-timeout-ms", "300"]);

    // A drip-feeding client: frame header promises bytes that never
    // arrive. The server must answer a typed 408 and close — not hang,
    // not silently drop.
    let mut slow = std::net::TcpStream::connect(daemon.addr).expect("connect");
    slow.set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    {
        use std::io::Write;
        slow.write_all(&8u32.to_be_bytes()).expect("header");
        slow.write_all(b"{\"op").expect("partial payload");
    }
    let reply = {
        use std::io::Read;
        let mut len = [0u8; 4];
        slow.read_exact(&mut len).expect("408 frame header");
        let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
        slow.read_exact(&mut payload).expect("408 frame payload");
        String::from_utf8(payload).expect("utf-8 reply")
    };
    assert!(reply.contains("408"), "expected a 408 reply, got {reply}");
    {
        // The connection is closed after the 408.
        use std::io::Read;
        let mut buf = [0u8; 1];
        assert_eq!(slow.read(&mut buf).expect("eof"), 0);
    }

    // An idle connection is never timed out, and a healthy one still
    // serves.
    let mut fine = daemon.client();
    fine.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    std::thread::sleep(Duration::from_millis(500));
    let pong = fine
        .request(&Json::obj(vec![("op", Json::str("ping"))]))
        .expect("ping after idle");
    assert_eq!(response_code(&pong), 200);

    let metrics = fetch_metrics(&daemon);
    assert!(metric_u64(&metrics, "errors.timeouts") >= 1);
}
