//! Property tests of the problem fingerprint — the engine-cache key.
//!
//! The cache is only correct if the fingerprint is (a) *order
//! independent*: two requests describing the same problem with edges
//! in different orders must collide, and (b) *sensitive*: any change
//! that alters the solve trajectory — an edge, a weight bit, the
//! method, a config knob — must separate the keys. Observability
//! toggles must NOT separate them (a traced rerun should stay warm).

use netalign_core::config::AlignConfig;
use netalign_graph::bipartite::BipartiteGraph;
use netalign_graph::undirected::Graph;
use netalign_serve::fingerprint::{
    candidate_fingerprint, graph_structure_fingerprint, problem_fingerprint, Method,
};
use proptest::prelude::*;

/// A small graph as an explicit edge list (unique, no self-loops),
/// derived from a bitmask over the upper-triangular pair enumeration
/// so uniqueness is structural, not filtered.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..9, 0u64..u64::MAX).prop_map(|(n, mask)| {
        let mut edges = Vec::new();
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if mask >> (bit % 64) & 1 == 1 {
                    edges.push((u, v));
                }
                bit += 1;
            }
        }
        // Keep the graph non-empty so `from_edges` always has work.
        if edges.is_empty() {
            edges.push((0, 1));
        }
        (n, edges)
    })
}

/// A candidate graph as (na, nb, unique weighted entries).
fn arb_candidate() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f64)>)> {
    (2usize..7, 2usize..7, 0u64..u64::MAX, 0.1f64..8.0).prop_map(|(na, nb, mask, wbase)| {
        let mut entries = Vec::new();
        for a in 0..na as u32 {
            for b in 0..nb as u32 {
                let bit = (a as usize * nb + b as usize) % 64;
                if mask >> bit & 1 == 1 {
                    entries.push((a, b, wbase + a as f64 * 0.25 + b as f64 * 0.0625));
                }
            }
        }
        if entries.is_empty() {
            entries.push((0, 0, wbase));
        }
        (na, nb, entries)
    })
}

/// Deterministic reorder: reverse, then rotate by `r`.
fn permuted<T: Clone>(items: &[T], r: usize) -> Vec<T> {
    let mut v: Vec<T> = items.iter().rev().cloned().collect();
    let len = v.len();
    if len > 0 {
        v.rotate_left(r % len);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn graph_fingerprint_ignores_edge_order(
        (n, edges) in arb_graph(),
        rot in 0usize..16,
    ) {
        let g1 = Graph::from_edges(n, edges.clone());
        let g2 = Graph::from_edges(n, permuted(&edges, rot));
        // Listing each edge with its endpoints swapped is the same
        // undirected graph too.
        let swapped: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        let g3 = Graph::from_edges(n, swapped);
        prop_assert_eq!(
            graph_structure_fingerprint(&g1),
            graph_structure_fingerprint(&g2)
        );
        prop_assert_eq!(
            graph_structure_fingerprint(&g1),
            graph_structure_fingerprint(&g3)
        );
    }

    #[test]
    fn graph_fingerprint_sees_any_structural_change(
        (n, edges) in arb_graph(),
    ) {
        let g = Graph::from_edges(n, edges.clone());
        // Add one vertex: different structure.
        let grown = Graph::from_edges(n + 1, edges.clone());
        prop_assert_ne!(
            graph_structure_fingerprint(&g),
            graph_structure_fingerprint(&grown)
        );
        // Drop one edge (when that leaves a non-empty graph).
        if edges.len() > 1 {
            let fewer = Graph::from_edges(n, edges[1..].to_vec());
            prop_assert_ne!(
                graph_structure_fingerprint(&g),
                graph_structure_fingerprint(&fewer)
            );
        }
    }

    #[test]
    fn candidate_fingerprint_ignores_order_but_sees_weights(
        (na, nb, entries) in arb_candidate(),
        rot in 0usize..16,
    ) {
        let l1 = BipartiteGraph::from_entries(na, nb, entries.clone());
        let l2 = BipartiteGraph::from_entries(na, nb, permuted(&entries, rot));
        prop_assert_eq!(candidate_fingerprint(&l1), candidate_fingerprint(&l2));
        // Perturb one weight by one ulp-scale nudge: different key.
        let mut nudged = entries.clone();
        nudged[0].2 += 1e-9;
        let l3 = BipartiteGraph::from_entries(na, nb, nudged);
        prop_assert_ne!(candidate_fingerprint(&l1), candidate_fingerprint(&l3));
    }

    #[test]
    fn problem_fingerprint_separates_trajectory_knobs_only(
        (n, edges) in arb_graph(),
        (na, nb, entries) in arb_candidate(),
    ) {
        // Shape L to the graphs so the fingerprint inputs are coherent.
        let _ = (na, nb);
        let a = Graph::from_edges(n, edges.clone());
        let b = Graph::from_edges(n, edges);
        let entries: Vec<(u32, u32, f64)> = entries
            .into_iter()
            .map(|(x, y, w)| (x % n as u32, y % n as u32, w))
            .collect();
        let l = BipartiteGraph::from_entries(n, n, entries);
        let base = AlignConfig::default();
        let fp = |m: Method, c: &AlignConfig| problem_fingerprint(&a, &b, &l, m, c);

        // Method is part of the key.
        prop_assert_ne!(fp(Method::Bp, &base), fp(Method::Mr, &base));

        // Trajectory-relevant config fields separate keys.
        let mut c = base;
        c.alpha += 0.5;
        prop_assert_ne!(fp(Method::Bp, &base), fp(Method::Bp, &c));
        let mut c = base;
        c.iterations += 1;
        prop_assert_ne!(fp(Method::Bp, &base), fp(Method::Bp, &c));
        let mut c = base;
        c.gamma *= 0.5;
        prop_assert_ne!(fp(Method::Bp, &base), fp(Method::Bp, &c));

        // Observability toggles do not: a traced rerun stays warm.
        let mut c = base;
        c.record_history = !c.record_history;
        c.trace_matcher = !c.trace_matcher;
        prop_assert_eq!(fp(Method::Bp, &base), fp(Method::Bp, &c));
    }
}
