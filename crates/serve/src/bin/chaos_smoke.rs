//! `chaos_smoke` — the crash-recovery gate, as a bench bin.
//!
//! For each injected fault point it runs the full kill/recover cycle
//! against a real supervised `netalignd` (spawned from the same build
//! directory) and checks the chaos contract end to end:
//!
//! 1. A control daemon (no faults) records a base and serves one
//!    `align_delta`; its reply is the reference bits.
//! 2. A supervised daemon with `NETALIGN_FAULT_KILL=<point>@1` and a
//!    fresh `--state-dir` takes the same traffic. The armed request
//!    dies mid-flight (`std::process::abort`, the SIGKILL stand-in);
//!    the client reconnects-and-retries until a 200 lands on the
//!    restarted child.
//! 3. The post-recovery delta must be bit-identical to the control
//!    (objective/weight/overlap bits, the full matching, the
//!    fingerprint), with zero hung clients and zero malformed frames.
//!
//! The JSON report (default `results/CHAOS_8.json`; CI's
//! `chaos-matrix` job parses per-point copies) carries per-point
//! verdicts, recovery walls, client-side error accounting, and the
//! recovered server's own `durable` metrics. Exits non-zero if any
//! point misses the contract.
//!
//! Flags: `--points` (comma list, default all four), `--threads`,
//! `--vertices`, `--iterations`, `--seed`, `--out PATH`.

use netalign_core::exitcode;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_graph::{BipartiteGraph, Graph};
use netalign_serve::client::{response_code, Client};
use netalign_serve::protocol::{parse_request, Request};
use netalign_trace::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const HELP: &str = "\
chaos_smoke — crash/recovery gate for netalignd

USAGE:
    chaos_smoke [OPTIONS]

OPTIONS:
    --points LIST    comma-separated fault points to kill at
                     (default solve,journal-append,spill-rename,reply)
    --threads N      solver threads for the daemons (default 1)
    --vertices N     vertices per generated graph (default 48)
    --iterations N   aligner iterations per request (default 6)
    --seed N         workload seed (default 7)
    --out PATH       report path (default results/CHAOS_8.json)
    --help           print this help
";

const KNOWN_POINTS: [&str; 4] = ["solve", "journal-append", "spill-rename", "reply"];
/// Every client op is bounded by this; a hung server surfaces as an
/// error, never a wedge.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(15);
/// Outer patience for crash + backoff + restart + recovery.
const PATIENCE: Duration = Duration::from_secs(60);

struct Opts {
    points: Vec<String>,
    threads: usize,
    vertices: usize,
    iterations: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        points: KNOWN_POINTS.iter().map(|p| p.to_string()).collect(),
        threads: 1,
        vertices: 48,
        iterations: 6,
        seed: 7,
        out: "results/CHAOS_8.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{HELP}");
            std::process::exit(exitcode::OK);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag}: {e}");
        match flag.as_str() {
            "--points" => {
                o.points = value.split(',').map(|p| p.trim().to_string()).collect();
                for p in &o.points {
                    if !KNOWN_POINTS.contains(&p.as_str()) {
                        return Err(format!(
                            "--points: unknown fault point '{p}' (known: {})",
                            KNOWN_POINTS.join(", ")
                        ));
                    }
                }
            }
            "--threads" => o.threads = value.parse().map_err(|e| bad(&e))?,
            "--vertices" => o.vertices = value.parse().map_err(|e| bad(&e))?,
            "--iterations" => o.iterations = value.parse().map_err(|e| bad(&e))?,
            "--seed" => o.seed = value.parse().map_err(|e| bad(&e))?,
            "--out" => o.out = value,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Opts { ..o })
}

/// `git rev-parse HEAD`, or `Json::Null` outside a work tree.
fn git_rev() -> Json {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| Json::str(s.trim()))
        .unwrap_or(Json::Null)
}

// ---------------------------------------------------------------------
// Daemon plumbing (the bench-bin twin of the test-suite helper)
// ---------------------------------------------------------------------

/// A spawned `netalignd` (or its supervisor); drained-or-killed on
/// drop so a failed point can't leak a serving child.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(extra: &[&str], envs: &[(&str, &str)]) -> Result<Daemon, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("current_exe: {e}"))?
            .with_file_name("netalignd");
        let mut cmd = Command::new(&exe);
        cmd.args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
        let stdout = child.stdout.take().expect("captured stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read listening line: {e}"))?;
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("unparseable listening line: {line:?}"))?;
        Ok(Daemon { child, addr })
    }

    /// Ask for a clean drain and check the exit propagates as 0.
    fn clean_shutdown(mut self) -> Result<(), String> {
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.set_timeout(Some(CLIENT_TIMEOUT));
            let _ = c.request(&Json::obj(vec![("op", Json::str("shutdown"))]));
        }
        let end = Instant::now() + Duration::from_secs(20);
        while Instant::now() < end {
            match self.child.try_wait() {
                Ok(Some(status)) if status.success() => return Ok(()),
                Ok(Some(status)) => return Err(format!("daemon exited {status}")),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        Err("daemon did not drain within 20s".to_string())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Ok(Some(_)) = self.child.try_wait() {
            return;
        }
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.set_timeout(Some(Duration::from_secs(1)));
            let _ = c.request(&Json::obj(vec![("op", Json::str("shutdown"))]));
        }
        let end = Instant::now() + Duration::from_secs(3);
        while Instant::now() < end {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// Workload (the chaos suite's deterministic record + delta pair)
// ---------------------------------------------------------------------

fn graph_json(g: &Graph) -> Json {
    let edges = g
        .edges()
        .map(|(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
        .collect();
    Json::obj(vec![
        ("n", Json::U64(g.num_vertices() as u64)),
        ("edges", Json::Arr(edges)),
    ])
}

fn candidate_json(l: &BipartiteGraph) -> Json {
    let entries = (0..l.num_edges())
        .map(|e| {
            let (a, b) = l.endpoints(e);
            Json::Arr(vec![
                Json::U64(a as u64),
                Json::U64(b as u64),
                Json::F64(l.weight(e)),
            ])
        })
        .collect();
    Json::obj(vec![("entries", Json::Arr(entries))])
}

/// The recorded-base request every run shares (deterministic, so all
/// daemons compute the same fingerprint).
fn recorded_doc(o: &Opts) -> Json {
    let n = o.vertices;
    let seed = o.seed;
    let base = power_law_graph(n, 2.5, 12, 0x5eed + seed);
    let a = add_random_edges(&base, 1.0 / n as f64, 2 * seed + 1);
    let b = add_random_edges(&base, 1.0 / n as f64, 2 * seed + 2);
    let l = identity_plus_noise_l(n, n, 4.0 / n as f64, 1.0, 0.5, 3 * seed + 5);
    Json::obj(vec![
        ("op", Json::str("align")),
        ("method", Json::str("bp")),
        (
            "config",
            Json::obj(vec![("iterations", Json::U64(o.iterations as u64))]),
        ),
        ("a", graph_json(&a)),
        ("b", graph_json(&b)),
        ("l", candidate_json(&l)),
        ("record", Json::Bool(true)),
    ])
}

/// A valid delta against `recorded_doc`'s candidate set: reweight its
/// first candidate edge.
fn delta_doc(o: &Opts, base_fp: &str) -> Json {
    let doc = recorded_doc(o);
    let Ok(Request::Align(req)) = parse_request(doc.render().as_bytes()) else {
        panic!("own doc must parse as align");
    };
    let (r0, r1) = req.l.endpoints(0);
    Json::obj(vec![
        ("op", Json::str("align_delta")),
        ("base", Json::str(base_fp)),
        (
            "l",
            Json::obj(vec![(
                "reweight",
                Json::Arr(vec![Json::Arr(vec![
                    Json::U64(r0 as u64),
                    Json::U64(r1 as u64),
                    Json::F64(1.25),
                ])]),
            )]),
        ),
    ])
}

// ---------------------------------------------------------------------
// Client-side accounting
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    reconnects: u64,
    retried_503: u64,
    malformed_frames: u64,
}

/// Reconnect-and-retry until a 200 lands. Connection errors mean the
/// server is mid-crash or mid-restart; a 503 with `retry_after_ms`
/// means boot recovery is still replaying. A malformed frame is
/// counted and fatal (the contract forbids it); running out of
/// patience returns `Err` (a hung client, also fatal).
fn request_until_ok(addr: SocketAddr, doc: &Json, c: &mut Counters) -> Result<Json, String> {
    let deadline = Instant::now() + PATIENCE;
    loop {
        if Instant::now() >= deadline {
            return Err(format!("no 200 within {PATIENCE:?}"));
        }
        let Ok(mut client) = Client::connect(addr) else {
            c.reconnects += 1;
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        client
            .set_timeout(Some(CLIENT_TIMEOUT))
            .map_err(|e| format!("set_timeout: {e}"))?;
        match client.request(doc) {
            Ok(reply) => match response_code(&reply) {
                200 => return Ok(reply),
                503 if reply.get("retry_after_ms").is_some() => {
                    c.retried_503 += 1;
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => return Err(format!("unexpected reply code {other}: {}", reply.render())),
            },
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                c.malformed_frames += 1;
                return Err(format!("malformed frame: {e}"));
            }
            Err(_) => {
                c.reconnects += 1;
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The bits a delta reply must reproduce exactly.
#[derive(PartialEq)]
struct ReplyBits {
    objective: u64,
    weight: u64,
    overlap: u64,
    matching: Vec<(u64, u64)>,
    fingerprint: String,
}

fn reply_bits(reply: &Json) -> Result<ReplyBits, String> {
    let f = |k: &str| {
        reply
            .get(k)
            .and_then(Json::as_f64)
            .map(f64::to_bits)
            .ok_or_else(|| format!("missing {k} in {}", reply.render()))
    };
    let mut matching: Vec<(u64, u64)> = reply
        .get("matching")
        .and_then(Json::as_arr)
        .ok_or("missing matching")?
        .iter()
        .filter_map(|p| {
            let p = p.as_arr()?;
            Some((p[0].as_u64()?, p[1].as_u64()?))
        })
        .collect();
    matching.sort_unstable();
    Ok(ReplyBits {
        objective: f("objective")?,
        weight: f("weight")?,
        overlap: f("overlap")?,
        matching,
        fingerprint: reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing fingerprint")?
            .to_string(),
    })
}

fn fetch_durable_metrics(addr: SocketAddr) -> Result<Json, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.set_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| format!("set_timeout: {e}"))?;
    let reply = c
        .request(&Json::obj(vec![("op", Json::str("metrics"))]))
        .map_err(|e| format!("metrics: {e}"))?;
    reply
        .get("metrics")
        .cloned()
        .ok_or_else(|| "missing metrics body".to_string())
}

// ---------------------------------------------------------------------
// The per-point cycle
// ---------------------------------------------------------------------

/// The uncrashed reference: the recorded base's fingerprint plus the
/// delta reply bits (whose own fingerprint is the *patched* one).
struct Control {
    record_fp: String,
    delta: ReplyBits,
}

/// One kill/recover cycle; returns the per-point report entry and
/// whether the point met the contract.
fn run_point(o: &Opts, point: &str, control: &Control) -> (Json, bool) {
    let started = Instant::now();
    let dir = std::env::temp_dir().join(format!(
        "netalignd-chaos-smoke-{point}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut counters = Counters::default();

    let verdict = run_point_inner(o, point, control, &dir, &mut counters);
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, error, durable) = match verdict {
        Ok(durable) => (true, Json::Null, durable),
        Err(msg) => {
            eprintln!("chaos_smoke: point '{point}' FAILED: {msg}");
            (false, Json::str(&msg), Json::Null)
        }
    };
    let entry = Json::obj(vec![
        ("point", Json::str(point)),
        ("ok", Json::Bool(ok)),
        ("error", error),
        ("wall_ms", Json::F64(started.elapsed().as_secs_f64() * 1e3)),
        ("reconnects", Json::U64(counters.reconnects)),
        ("retried_503", Json::U64(counters.retried_503)),
        ("malformed_frames", Json::U64(counters.malformed_frames)),
        ("durable", durable),
    ]);
    (entry, ok)
}

fn run_point_inner(
    o: &Opts,
    point: &str,
    control: &Control,
    dir: &Path,
    counters: &mut Counters,
) -> Result<Json, String> {
    let threads = o.threads.to_string();
    let daemon = Daemon::spawn(
        &[
            "--supervise",
            "--state-dir",
            dir.to_str().expect("utf-8 dir"),
            "--threads",
            &threads,
        ],
        &[("NETALIGN_FAULT_KILL", &format!("{point}@1"))],
    )?;

    // The armed request dies at the fault point; retries land on the
    // restarted child. At the `reply` point the recovered child serves
    // the retry warm from the journal-replayed base.
    let rec = request_until_ok(daemon.addr, &recorded_doc(o), counters)?;
    let fp = rec
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or("record reply lacks fingerprint")?
        .to_string();
    if fp != control.record_fp {
        return Err(format!(
            "recorded fingerprint {fp} diverges from control {}",
            control.record_fp
        ));
    }
    let delta = request_until_ok(daemon.addr, &delta_doc(o, &fp), counters)?;
    if reply_bits(&delta)? != control.delta {
        return Err(format!(
            "post-recovery delta is not bit-identical to the control: {}",
            delta.render()
        ));
    }

    let metrics = fetch_durable_metrics(daemon.addr)?;
    let durable = metrics
        .get("durable")
        .cloned()
        .ok_or("metrics lack a durable section")?;
    let restarts = durable.get("restarts").and_then(Json::as_u64).unwrap_or(0);
    if restarts == 0 {
        return Err("the serving child was never restarted".to_string());
    }
    daemon.clean_shutdown()?;
    Ok(durable)
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("chaos_smoke: {msg}\n\n{HELP}");
            std::process::exit(exitcode::USAGE);
        }
    };

    // The uncrashed reference.
    let mut counters = Counters::default();
    let threads = o.threads.to_string();
    let control_daemon = Daemon::spawn(&["--threads", &threads], &[]).unwrap_or_else(|e| {
        eprintln!("chaos_smoke: control spawn failed: {e}");
        std::process::exit(exitcode::INTERNAL);
    });
    let control = (|| -> Result<Control, String> {
        let rec = request_until_ok(control_daemon.addr, &recorded_doc(&o), &mut counters)?;
        let record_fp = rec
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("control record lacks fingerprint")?
            .to_string();
        let delta = request_until_ok(
            control_daemon.addr,
            &delta_doc(&o, &record_fp),
            &mut counters,
        )?;
        Ok(Control {
            record_fp,
            delta: reply_bits(&delta)?,
        })
    })()
    .unwrap_or_else(|e| {
        eprintln!("chaos_smoke: control run failed: {e}");
        std::process::exit(exitcode::INTERNAL);
    });
    drop(control_daemon);

    let mut entries = Vec::new();
    let mut all_ok = true;
    for point in &o.points {
        eprintln!("chaos_smoke: killing at '{point}' ...");
        let (entry, ok) = run_point(&o, point, &control);
        entries.push(entry);
        all_ok &= ok;
    }

    let bench = std::path::Path::new(&o.out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("CHAOS")
        .to_string();
    let report = Json::obj(vec![
        ("bench", Json::str(bench)),
        ("git_rev", git_rev()),
        (
            "config",
            Json::obj(vec![
                (
                    "points",
                    Json::Arr(o.points.iter().map(Json::str).collect()),
                ),
                ("threads", Json::U64(o.threads as u64)),
                ("vertices", Json::U64(o.vertices as u64)),
                ("iterations", Json::U64(o.iterations as u64)),
                ("seed", Json::U64(o.seed)),
            ]),
        ),
        (
            "control",
            Json::obj(vec![
                ("record_fingerprint", Json::str(&control.record_fp)),
                ("delta_fingerprint", Json::str(&control.delta.fingerprint)),
            ]),
        ),
        ("points", Json::Arr(entries)),
        ("ok", Json::Bool(all_ok)),
    ]);

    let rendered = report.render();
    if let Some(dir) = std::path::Path::new(&o.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create report directory");
        }
    }
    std::fs::write(&o.out, &rendered).expect("write report");
    println!("{rendered}");
    std::io::stdout().flush().ok();
    std::process::exit(if all_ok { exitcode::OK } else { 1 });
}
