//! `loadgen` — closed-loop load generator for `netalignd`.
//!
//! Spawns N client threads, each with its own connection, issuing
//! align requests back-to-back for a fixed duration. Each request is
//! either a *repeat* (drawn from a fixed pool of problems, so the
//! engine cache serves it warm after first touch) or *fresh* (a
//! never-seen fingerprint, forcing a cold build), mixed by
//! `--repeat-ratio`. Deadlines are sampled from a small distribution
//! around `--deadline-ms` to exercise the SLO path.
//!
//! A second workload (`--workload delta`) models *evolving* graphs:
//! each client records one base alignment (`record:true`), then
//! streams `align_delta` requests — small batches of candidate
//! reweights, at most 1% of `|E_L|` per request — chaining the
//! fingerprint the server returns after each patch. A 422 (evicted or
//! unrecorded base) triggers the documented fallback: a full recorded
//! re-align of the client's current view, after which the chain
//! resumes.
//!
//! Emits a single JSON report (default `results/BENCH_6.json`) with
//! throughput, p50/p95/p99 wall latency split warm vs cold (plus a
//! `delta` bucket in delta mode), completion counts, the git revision,
//! and the server's own metrics snapshot. Exits non-zero if any
//! request failed.

use netalign_core::exitcode;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};
use netalign_graph::{BipartiteGraph, Graph};
use netalign_serve::client::{response_code, Client};
use netalign_trace::Json;
use std::io::Write;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HELP: &str = "\
loadgen — closed-loop load generator for netalignd

USAGE:
    loadgen --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT     netalignd address (required)
    --clients N          concurrent closed-loop clients (default 4)
    --duration-secs F    wall-clock run length (default 10)
    --repeat-ratio F     fraction of requests drawn from the warm pool (default 0.75)
    --problems N         size of the repeatable problem pool (default 4)
    --vertices N         vertices per generated graph (default 150)
    --iterations N       aligner iterations per request (default 2)
    --method M           bp | mr (default bp)
    --deadline-ms N      SLO base; sampled from {N, 2N, 4N}; 0 = none (default 0)
    --seed N             base RNG seed (default 42)
    --workload W         mixed | delta (default mixed); delta streams
                         align_delta requests against a recorded base and
                         ignores --repeat-ratio/--problems/--deadline-ms
    --out PATH           report path (default results/BENCH_6.json)
    --help               print this help
";

#[derive(Clone)]
struct Opts {
    addr: String,
    clients: usize,
    duration: Duration,
    repeat_ratio: f64,
    problems: usize,
    vertices: usize,
    iterations: usize,
    method: String,
    deadline_ms: u64,
    seed: u64,
    workload: String,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: String::new(),
            clients: 4,
            duration: Duration::from_secs(10),
            repeat_ratio: 0.75,
            problems: 4,
            vertices: 150,
            iterations: 2,
            method: "bp".to_string(),
            deadline_ms: 0,
            seed: 42,
            workload: "mixed".to_string(),
            out: "results/BENCH_6.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{HELP}");
            std::process::exit(exitcode::OK);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag}: {e}");
        match flag.as_str() {
            "--addr" => o.addr = value,
            "--clients" => o.clients = value.parse().map_err(|e| bad(&e))?,
            "--duration-secs" => {
                o.duration = Duration::from_secs_f64(value.parse().map_err(|e| bad(&e))?)
            }
            "--repeat-ratio" => o.repeat_ratio = value.parse().map_err(|e| bad(&e))?,
            "--problems" => o.problems = value.parse().map_err(|e| bad(&e))?,
            "--vertices" => o.vertices = value.parse().map_err(|e| bad(&e))?,
            "--iterations" => o.iterations = value.parse().map_err(|e| bad(&e))?,
            "--method" => o.method = value,
            "--deadline-ms" => o.deadline_ms = value.parse().map_err(|e| bad(&e))?,
            "--seed" => o.seed = value.parse().map_err(|e| bad(&e))?,
            "--workload" => o.workload = value,
            "--out" => o.out = value,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if o.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if !(0.0..=1.0).contains(&o.repeat_ratio) {
        return Err("--repeat-ratio must be in [0, 1]".to_string());
    }
    if o.method != "bp" && o.method != "mr" {
        return Err("--method must be bp or mr".to_string());
    }
    if o.workload != "mixed" && o.workload != "delta" {
        return Err("--workload must be mixed or delta".to_string());
    }
    if o.workload == "delta" && o.method != "bp" {
        return Err("--workload delta requires --method bp".to_string());
    }
    if o.clients == 0 || o.problems == 0 {
        return Err("--clients and --problems must be at least 1".to_string());
    }
    Ok(o)
}

/// SplitMix64: tiny deterministic per-thread RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn graph_json(g: &Graph) -> Json {
    let edges = g
        .edges()
        .map(|(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
        .collect();
    Json::obj(vec![
        ("n", Json::U64(g.num_vertices() as u64)),
        ("edges", Json::Arr(edges)),
    ])
}

fn candidate_json(l: &BipartiteGraph) -> Json {
    let entries = (0..l.num_edges())
        .map(|e| {
            let (a, b) = l.endpoints(e);
            Json::Arr(vec![
                Json::U64(a as u64),
                Json::U64(b as u64),
                Json::F64(l.weight(e)),
            ])
        })
        .collect();
    Json::obj(vec![("entries", Json::Arr(entries))])
}

/// Build one synthetic align request (the paper's §VI.A recipe). The
/// candidate set is dense on purpose: the squares-matrix build is the
/// cost a warm serve skips, so it must be a visible share of a cold
/// serve for the warm/cold split to mean anything.
fn align_doc(o: &Opts, problem_seed: u64, deadline_ms: Option<u64>) -> Json {
    let n = o.vertices;
    let base = power_law_graph(n, 2.2, 40, 0x5eed + problem_seed);
    let a = add_random_edges(&base, 2.0 / n as f64, 2 * problem_seed + 1);
    let b = add_random_edges(&base, 2.0 / n as f64, 2 * problem_seed + 2);
    let l = identity_plus_noise_l(n, n, 24.0 / n as f64, 1.0, 0.5, 3 * problem_seed + 5);
    let mut pairs = vec![
        ("op", Json::str("align")),
        ("method", Json::str(o.method.clone())),
        (
            "config",
            Json::obj(vec![("iterations", Json::U64(o.iterations as u64))]),
        ),
        ("a", graph_json(&a)),
        ("b", graph_json(&b)),
        ("l", candidate_json(&l)),
    ];
    if let Some(d) = deadline_ms {
        pairs.push(("deadline_ms", Json::U64(d)));
    }
    Json::obj(pairs)
}

#[derive(Default)]
struct Samples {
    /// (wall_ms, solve_ms) per 200 reply, split by the reply's `warm`.
    warm: Vec<(f64, f64)>,
    cold: Vec<(f64, f64)>,
    /// (wall_ms, solve_ms) per 200 `align_delta` reply.
    delta: Vec<(f64, f64)>,
    completed: u64,
    best_so_far: u64,
    overload: u64,
    failed: u64,
    /// 422 delta replies answered with a recorded re-align.
    delta_fallbacks: u64,
    /// Sum of `delta.reused_iterations` over all delta replies.
    delta_reused_iterations: u64,
    /// Connections re-established after an I/O failure (a crashed or
    /// restarting server).
    reconnects: u64,
}

fn resolve_addr(o: &Opts) -> std::io::Result<SocketAddr> {
    o.addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))
}

/// A client that survives server restarts: an I/O error drops the
/// connection and retries the request on a fresh one with exponential
/// backoff, and a 503 carrying `retry_after_ms` (boot recovery in
/// progress) waits the hinted interval and retries. A 503 *without*
/// the hint — drain shutdown — is returned as-is: retrying a draining
/// server would spin until the port closes.
struct ResilientClient {
    addr: SocketAddr,
    client: Option<Client>,
    reconnects: u64,
}

impl ResilientClient {
    fn connect(addr: SocketAddr) -> std::io::Result<ResilientClient> {
        Ok(ResilientClient {
            addr,
            client: Some(Client::connect(addr)?),
            reconnects: 0,
        })
    }

    fn request(&mut self, doc: &Json) -> std::io::Result<Json> {
        let mut backoff = Duration::from_millis(10);
        let mut last_err = std::io::Error::new(std::io::ErrorKind::TimedOut, "retries exhausted");
        for _ in 0..24 {
            if self.client.is_none() {
                match Client::connect(self.addr) {
                    Ok(c) => {
                        self.client = Some(c);
                        self.reconnects += 1;
                    }
                    Err(e) => {
                        last_err = e;
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(1));
                        continue;
                    }
                }
            }
            match self.client.as_mut().expect("just connected").request(doc) {
                Ok(reply) => {
                    if response_code(&reply) == 503 {
                        if let Some(ms) = reply.get("retry_after_ms").and_then(Json::as_u64) {
                            std::thread::sleep(Duration::from_millis(ms.clamp(10, 2_000)));
                            continue;
                        }
                    }
                    return Ok(reply);
                }
                Err(e) => {
                    // The connection is dead (or no longer
                    // frame-aligned); rebuild it and retry.
                    self.client = None;
                    last_err = e;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_secs(1));
                }
            }
        }
        Err(last_err)
    }
}

fn client_loop(o: &Opts, idx: usize, fresh_seed: &Arc<AtomicU64>) -> std::io::Result<Samples> {
    if o.workload == "delta" {
        return delta_loop(o, idx);
    }
    let mut client = ResilientClient::connect(resolve_addr(o)?)?;
    let mut rng = Rng(o.seed ^ (0xc11e0 + idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut samples = Samples::default();
    let end = Instant::now() + o.duration;
    while Instant::now() < end {
        let repeat = rng.f64() < o.repeat_ratio;
        let problem_seed = if repeat {
            rng.next() % o.problems as u64
        } else {
            // Fresh fingerprints start above the pool and never repeat.
            o.problems as u64 + fresh_seed.fetch_add(1, Ordering::Relaxed)
        };
        let deadline = match o.deadline_ms {
            0 => None,
            d => Some(d << (rng.next() % 3)),
        };
        let doc = align_doc(o, problem_seed, deadline);
        let sent = Instant::now();
        let reply = client.request(&doc)?;
        let wall_ms = sent.elapsed().as_secs_f64() * 1e3;
        match response_code(&reply) {
            200 => {
                let warm = reply.get("warm").and_then(Json::as_bool).unwrap_or(false);
                let solve_ms = reply.get("solve_ms").and_then(Json::as_f64).unwrap_or(0.0);
                match reply.get("completion").and_then(Json::as_str) {
                    Some("completed") => samples.completed += 1,
                    _ => samples.best_so_far += 1,
                }
                if warm {
                    samples.warm.push((wall_ms, solve_ms));
                } else {
                    samples.cold.push((wall_ms, solve_ms));
                }
            }
            429 => samples.overload += 1,
            _ => samples.failed += 1,
        }
    }
    samples.reconnects = client.reconnects;
    Ok(samples)
}

/// The delta workload: one evolving problem per client. Records a base
/// alignment, then streams reweight deltas (at most 1% of `|E_L|` per
/// request), chaining the fingerprint returned by each patch. A 422 —
/// the base was evicted, say — falls back to a full recorded re-align
/// of the client's current view, after which the chain resumes.
fn delta_loop(o: &Opts, idx: usize) -> std::io::Result<Samples> {
    let mut client = ResilientClient::connect(resolve_addr(o)?)?;
    let mut rng = Rng(o.seed ^ (0xde17a + idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut samples = Samples::default();

    // This client's evolving problem; weights are tracked locally so a
    // fallback re-align reproduces the server's patched state (and
    // therefore its fingerprint chain).
    let n = o.vertices;
    let problem_seed = idx as u64;
    let base = power_law_graph(n, 2.2, 40, 0x5eed + problem_seed);
    let a = add_random_edges(&base, 2.0 / n as f64, 2 * problem_seed + 1);
    let b = add_random_edges(&base, 2.0 / n as f64, 2 * problem_seed + 2);
    let l = identity_plus_noise_l(n, n, 24.0 / n as f64, 1.0, 0.5, 3 * problem_seed + 5);
    let pairs: Vec<(u32, u32)> = (0..l.num_edges()).map(|e| l.endpoints(e)).collect();
    let mut weights: Vec<f64> = (0..l.num_edges()).map(|e| l.weight(e)).collect();
    let k = (pairs.len() / 100).max(1);

    let recorded_doc = |weights: &[f64]| {
        let entries = pairs
            .iter()
            .zip(weights)
            .map(|(&(x, y), &w)| {
                Json::Arr(vec![Json::U64(x as u64), Json::U64(y as u64), Json::F64(w)])
            })
            .collect();
        Json::obj(vec![
            ("op", Json::str("align")),
            ("method", Json::str("bp")),
            ("record", Json::Bool(true)),
            (
                "config",
                Json::obj(vec![("iterations", Json::U64(o.iterations as u64))]),
            ),
            ("a", graph_json(&a)),
            ("b", graph_json(&b)),
            ("l", Json::obj(vec![("entries", Json::Arr(entries))])),
        ])
    };
    let recorded_align = |client: &mut ResilientClient,
                          samples: &mut Samples,
                          weights: &[f64]|
     -> std::io::Result<Option<String>> {
        let sent = Instant::now();
        let reply = client.request(&recorded_doc(weights))?;
        let wall_ms = sent.elapsed().as_secs_f64() * 1e3;
        if response_code(&reply) != 200 {
            samples.failed += 1;
            return Ok(None);
        }
        let solve_ms = reply.get("solve_ms").and_then(Json::as_f64).unwrap_or(0.0);
        if reply.get("warm").and_then(Json::as_bool).unwrap_or(false) {
            samples.warm.push((wall_ms, solve_ms));
        } else {
            samples.cold.push((wall_ms, solve_ms));
        }
        samples.completed += 1;
        Ok(reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .map(str::to_string))
    };

    let Some(mut fp) = recorded_align(&mut client, &mut samples, &weights)? else {
        return Ok(samples);
    };
    let end = Instant::now() + o.duration;
    while Instant::now() < end {
        // k distinct reweights on an exactly-representable grid.
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < k.min(pairs.len()) {
            chosen.insert((rng.next() % pairs.len() as u64) as usize);
        }
        let reweight: Vec<Json> = chosen
            .iter()
            .map(|&i| {
                let (x, y) = pairs[i];
                let w = (16 + (rng.next() % 48)) as f64 / 16.0;
                weights[i] = w;
                Json::Arr(vec![Json::U64(x as u64), Json::U64(y as u64), Json::F64(w)])
            })
            .collect();
        let doc = Json::obj(vec![
            ("op", Json::str("align_delta")),
            ("base", Json::str(fp.clone())),
            ("l", Json::obj(vec![("reweight", Json::Arr(reweight))])),
        ]);
        let sent = Instant::now();
        let reply = client.request(&doc)?;
        let wall_ms = sent.elapsed().as_secs_f64() * 1e3;
        match response_code(&reply) {
            200 => {
                fp = reply
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let solve_ms = reply.get("solve_ms").and_then(Json::as_f64).unwrap_or(0.0);
                samples.delta.push((wall_ms, solve_ms));
                samples.completed += 1;
                samples.delta_reused_iterations += reply
                    .get("delta")
                    .and_then(|d| d.get("reused_iterations"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
            422 => {
                samples.delta_fallbacks += 1;
                match recorded_align(&mut client, &mut samples, &weights)? {
                    Some(new_fp) => fp = new_fp,
                    None => break,
                }
            }
            429 => samples.overload += 1,
            _ => samples.failed += 1,
        }
    }
    samples.reconnects = client.reconnects;
    Ok(samples)
}

/// Best-effort `git rev-parse HEAD`, `null` outside a work tree.
fn git_rev() -> Json {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| Json::str(s.trim().to_string()))
        .unwrap_or(Json::Null)
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn bucket_json(samples: &[(f64, f64)]) -> Json {
    let mut wall: Vec<f64> = samples.iter().map(|s| s.0).collect();
    let mut solve: Vec<f64> = samples.iter().map(|s| s.1).collect();
    wall.sort_by(f64::total_cmp);
    solve.sort_by(f64::total_cmp);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Json::obj(vec![
        ("count", Json::U64(samples.len() as u64)),
        ("wall_mean_ms", Json::F64(mean(&wall))),
        ("wall_p50_ms", Json::F64(quantile(&wall, 0.50))),
        ("wall_p95_ms", Json::F64(quantile(&wall, 0.95))),
        ("wall_p99_ms", Json::F64(quantile(&wall, 0.99))),
        ("solve_mean_ms", Json::F64(mean(&solve))),
        ("solve_p50_ms", Json::F64(quantile(&solve, 0.50))),
        ("solve_p95_ms", Json::F64(quantile(&solve, 0.95))),
        ("solve_p99_ms", Json::F64(quantile(&solve, 0.99))),
    ])
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("loadgen: {msg}\n\n{HELP}");
            std::process::exit(exitcode::USAGE);
        }
    };
    let fresh_seed = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for idx in 0..o.clients {
        let o = o.clone();
        let fresh_seed = fresh_seed.clone();
        threads.push(std::thread::spawn(move || {
            client_loop(&o, idx, &fresh_seed)
        }));
    }
    let mut total = Samples::default();
    let mut client_errors = 0u64;
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok(s) => {
                total.warm.extend(s.warm);
                total.cold.extend(s.cold);
                total.delta.extend(s.delta);
                total.completed += s.completed;
                total.best_so_far += s.best_so_far;
                total.overload += s.overload;
                total.failed += s.failed;
                total.delta_fallbacks += s.delta_fallbacks;
                total.delta_reused_iterations += s.delta_reused_iterations;
                total.reconnects += s.reconnects;
            }
            Err(e) => {
                eprintln!("loadgen: client error: {e}");
                client_errors += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let ok = (total.warm.len() + total.cold.len() + total.delta.len()) as u64;

    // Pull the server's own metrics snapshot into the report.
    let metrics = o
        .addr
        .parse()
        .ok()
        .and_then(|addr| Client::connect(addr).ok())
        .and_then(|mut c| {
            c.request(&Json::obj(vec![("op", Json::str("metrics"))]))
                .ok()
        })
        .and_then(|mut reply| {
            if let Json::Obj(pairs) = &mut reply {
                pairs
                    .iter_mut()
                    .find(|(k, _)| k == "metrics")
                    .map(|(_, v)| std::mem::replace(v, Json::Null))
            } else {
                None
            }
        })
        .unwrap_or(Json::Null);

    let bench = std::path::Path::new(&o.out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_string();
    let report = Json::obj(vec![
        ("bench", Json::str(bench)),
        ("git_rev", git_rev()),
        (
            "config",
            Json::obj(vec![
                ("workload", Json::str(o.workload.clone())),
                ("clients", Json::U64(o.clients as u64)),
                ("duration_secs", Json::F64(o.duration.as_secs_f64())),
                ("repeat_ratio", Json::F64(o.repeat_ratio)),
                ("problems", Json::U64(o.problems as u64)),
                ("vertices", Json::U64(o.vertices as u64)),
                ("iterations", Json::U64(o.iterations as u64)),
                ("method", Json::str(o.method.clone())),
                ("deadline_ms", Json::U64(o.deadline_ms)),
                ("seed", Json::U64(o.seed)),
            ]),
        ),
        (
            "totals",
            Json::obj(vec![
                ("ok", Json::U64(ok)),
                ("failed", Json::U64(total.failed + client_errors)),
                ("overload", Json::U64(total.overload)),
                ("completed", Json::U64(total.completed)),
                ("deadline_best_so_far", Json::U64(total.best_so_far)),
                ("delta_fallbacks", Json::U64(total.delta_fallbacks)),
                (
                    "delta_reused_iterations",
                    Json::U64(total.delta_reused_iterations),
                ),
                ("reconnects", Json::U64(total.reconnects)),
                ("elapsed_secs", Json::F64(elapsed)),
                ("throughput_rps", Json::F64(ok as f64 / elapsed.max(1e-9))),
            ]),
        ),
        ("warm", bucket_json(&total.warm)),
        ("cold", bucket_json(&total.cold)),
        ("delta", bucket_json(&total.delta)),
        ("server_metrics", metrics),
    ]);

    let rendered = report.render();
    if let Some(dir) = std::path::Path::new(&o.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create report directory");
        }
    }
    std::fs::write(&o.out, &rendered).expect("write report");
    println!("{rendered}");
    std::io::stdout().flush().ok();
    if total.failed + client_errors > 0 {
        std::process::exit(1);
    }
    std::process::exit(exitcode::OK);
}
