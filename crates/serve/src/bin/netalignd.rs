//! `netalignd` — the alignment-as-a-service daemon.
//!
//! Binds a TCP listener, prints one parseable `listening on <addr>`
//! line to stdout, and serves the length-prefixed JSON protocol until
//! a `shutdown` op (or SIGKILL) stops it. Exit codes follow the
//! workspace taxonomy: 0 OK, 2 usage, 3 I/O (bind failure), 5
//! internal.
//!
//! With `--supervise` the process becomes a tiny supervisor instead:
//! it resolves the bind address once (so the port survives restarts),
//! then spawns itself as a serving child and restarts it with bounded
//! exponential backoff whenever it dies uncleanly. Combined with
//! `--state-dir`, a crashed child comes back with its recorded delta
//! bases rebuilt from the journal.

use netalign_core::exitcode;
use netalign_serve::{ServerHandle, ServerOptions};
use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

const HELP: &str = "\
netalignd — network alignment as a service

USAGE:
    netalignd [OPTIONS]

OPTIONS:
    --addr ADDR             bind address (default 127.0.0.1:7464; use :0 for ephemeral)
    --cache-capacity N      problems kept warm in the engine cache (default 8)
    --queue-capacity N      admission queue bound; overflow answers 429 (default 64)
    --max-frame-bytes N     largest accepted request frame (default 16777216)
    --watchdog-ms N         per-solve stall watchdog; 0 disables (default 30000)
    --threads N             solver worker threads (default: rayon's choice)
    --state-dir PATH        durable state directory: recorded bases are spilled
                            and journaled there, and a (re)start replays the
                            journal so `align_delta` survives crashes
    --journal-max-bytes N   journal rotation threshold (default 8388608)
    --conn-timeout-ms N     per-connection frame timeout; a frame that started
                            but did not finish in N ms answers 408 and closes;
                            0 disables (default: off)
    --supervise             run as a supervisor: fork a serving child and
                            restart it (bounded exponential backoff) when it
                            crashes; clean exits and usage errors propagate
    --allow-crash-op        honor the `crash` op (chaos testing; default 422)
    --help                  print this help

EXIT CODES:
    0  clean shutdown (drained)
    2  usage error (unknown flag, malformed value)
    3  I/O error (could not bind ADDR)
    5  internal error (supervised child crash-looping)
";

/// Fully parsed command line: the server options plus supervisor-only
/// switches.
struct Cli {
    opts: ServerOptions,
    supervise: bool,
}

fn parse_args(argv: &[String]) -> Result<Cli, String> {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:7464".to_string(),
        ..ServerOptions::default()
    };
    let mut supervise = false;
    let mut args = argv.iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(exitcode::OK);
            }
            "--addr" => opts.addr = value("--addr")?,
            "--cache-capacity" => {
                opts.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--max-frame-bytes" => {
                opts.max_frame_bytes = value("--max-frame-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-frame-bytes: {e}"))?
            }
            "--watchdog-ms" => {
                let ms: u64 = value("--watchdog-ms")?
                    .parse()
                    .map_err(|e| format!("--watchdog-ms: {e}"))?;
                opts.watchdog_ms = (ms > 0).then_some(ms);
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--state-dir" => opts.state_dir = Some(value("--state-dir")?.into()),
            "--journal-max-bytes" => {
                opts.journal_max_bytes = value("--journal-max-bytes")?
                    .parse()
                    .map_err(|e| format!("--journal-max-bytes: {e}"))?
            }
            "--conn-timeout-ms" => {
                let ms: u64 = value("--conn-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--conn-timeout-ms: {e}"))?;
                opts.conn_timeout_ms = (ms > 0).then_some(ms);
            }
            "--supervise" => supervise = true,
            "--allow-crash-op" => opts.allow_crash_op = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Cli { opts, supervise })
}

/// Run as the supervisor: resolve the port once, then keep a serving
/// child alive. Never returns.
fn supervise(argv: &[String], opts: &ServerOptions) -> ! {
    // Resolve `:0` (and hostnames) to one concrete address so every
    // restart binds the same port and clients can simply reconnect.
    let addr = match TcpListener::bind(&opts.addr).and_then(|l| l.local_addr()) {
        Ok(addr) => addr.to_string(),
        Err(e) => {
            eprintln!("netalignd: bind failed: {e}");
            std::process::exit(exitcode::IO);
        }
    };
    println!("netalignd supervising on {addr}");
    std::io::stdout().flush().ok();

    // Child argv = ours minus --supervise and --addr (replaced by the
    // resolved address).
    let mut child_args: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--supervise" => {}
            "--addr" => {
                it.next();
            }
            _ => child_args.push(a.clone()),
        }
    }
    child_args.push("--addr".into());
    child_args.push(addr);

    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("netalignd: cannot find own executable: {e}");
        std::process::exit(exitcode::INTERNAL);
    });
    let mut restarts: u64 = 0;
    let mut fast_failures = 0u32;
    loop {
        let mut cmd = std::process::Command::new(&exe);
        // The supervisor already announced the address; the child's
        // own `listening on` line is redundant, and writing it must
        // not be able to kill the child (a spawner that closed our
        // stdout after scraping the line would otherwise crash-loop
        // every restart on a broken pipe).
        cmd.args(&child_args)
            .stdout(std::process::Stdio::null())
            .env("NETALIGND_RESTARTS", restarts.to_string());
        if restarts > 0 {
            // Injected faults fire in the first child only; a restarted
            // child must come back healthy or chaos tests would loop.
            cmd.env_remove("NETALIGN_FAULT_KILL");
        }
        let born = Instant::now();
        let status = match cmd.status() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("netalignd: spawn failed: {e}");
                std::process::exit(exitcode::INTERNAL);
            }
        };
        match status.code() {
            // Clean drain and configuration errors propagate: a
            // restart would just repeat them.
            Some(0) => std::process::exit(exitcode::OK),
            Some(code @ (2 | 3)) => std::process::exit(code),
            other => {
                if born.elapsed() > Duration::from_secs(5) {
                    fast_failures = 0;
                } else {
                    fast_failures += 1;
                    if fast_failures >= 10 {
                        eprintln!("netalignd: child crash-looping; giving up");
                        std::process::exit(exitcode::INTERNAL);
                    }
                }
                let backoff = Duration::from_millis((100u64 << restarts.min(6)).min(5_000));
                eprintln!(
                    "netalignd: child died ({}); restart #{} in {:?}",
                    other.map_or("signal".to_string(), |c| format!("exit {c}")),
                    restarts + 1,
                    backoff
                );
                std::thread::sleep(backoff);
                restarts += 1;
            }
        }
    }
}

fn main() {
    // Distributed worker re-entry: if a coordinator spawned this
    // binary as a BP worker, run the worker loop instead of serving.
    netalign_core::dist::maybe_run_worker();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&argv) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("netalignd: {msg}\n\n{HELP}");
            std::process::exit(exitcode::USAGE);
        }
    };
    if cli.supervise {
        supervise(&argv, &cli.opts);
    }
    let handle = match ServerHandle::start(cli.opts) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("netalignd: bind failed: {e}");
            std::process::exit(exitcode::IO);
        }
    };
    // One parseable line, flushed, so spawners can scrape the port.
    println!("netalignd listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.wait();
    std::process::exit(exitcode::OK);
}
