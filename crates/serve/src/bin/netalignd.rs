//! `netalignd` — the alignment-as-a-service daemon.
//!
//! Binds a TCP listener, prints one parseable `listening on <addr>`
//! line to stdout, and serves the length-prefixed JSON protocol until
//! a `shutdown` op (or SIGKILL) stops it. Exit codes follow the
//! workspace taxonomy: 0 OK, 2 usage, 3 I/O (bind failure), 5
//! internal.

use netalign_core::exitcode;
use netalign_serve::{ServerHandle, ServerOptions};
use std::io::Write;

const HELP: &str = "\
netalignd — network alignment as a service

USAGE:
    netalignd [OPTIONS]

OPTIONS:
    --addr ADDR             bind address (default 127.0.0.1:7464; use :0 for ephemeral)
    --cache-capacity N      problems kept warm in the engine cache (default 8)
    --queue-capacity N      admission queue bound; overflow answers 429 (default 64)
    --max-frame-bytes N     largest accepted request frame (default 16777216)
    --watchdog-ms N         per-solve stall watchdog; 0 disables (default 30000)
    --threads N             solver worker threads (default: rayon's choice)
    --help                  print this help

EXIT CODES:
    0  clean shutdown (drained)
    2  usage error (unknown flag, malformed value)
    3  I/O error (could not bind ADDR)
    5  internal error
";

fn parse_args() -> Result<ServerOptions, String> {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:7464".to_string(),
        ..ServerOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(exitcode::OK);
            }
            "--addr" => opts.addr = value("--addr")?,
            "--cache-capacity" => {
                opts.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--queue-capacity" => {
                opts.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--max-frame-bytes" => {
                opts.max_frame_bytes = value("--max-frame-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-frame-bytes: {e}"))?
            }
            "--watchdog-ms" => {
                let ms: u64 = value("--watchdog-ms")?
                    .parse()
                    .map_err(|e| format!("--watchdog-ms: {e}"))?;
                opts.watchdog_ms = (ms > 0).then_some(ms);
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("netalignd: {msg}\n\n{HELP}");
            std::process::exit(exitcode::USAGE);
        }
    };
    let handle = match ServerHandle::start(opts) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("netalignd: bind failed: {e}");
            std::process::exit(exitcode::IO);
        }
    };
    // One parseable line, flushed, so spawners can scrape the port.
    println!("netalignd listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.wait();
    std::process::exit(exitcode::OK);
}
