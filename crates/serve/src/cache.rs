//! The warm engine cache: LRU over problem fingerprints.
//!
//! An entry owns everything expensive that a repeat request would
//! otherwise rebuild: the [`NetAlignProblem`] (whose squares matrix
//! `S` dominates cold-start cost), the validated [`AlignConfig`], and
//! the released rounding [`MatcherEngine`]s with their warm matcher
//! memory. The aligner engines themselves (`BpEngine`/`MrEngine`)
//! borrow the problem and are rebuilt per run — their allocation is
//! cheap next to `S` — and *adopt* the cached matcher engines, which
//! carries the PR-4 warm-start machinery across requests.
//!
//! The cache is owned by the single solver thread, so it needs no
//! locking; all concurrency control happens at admission.

use crate::fingerprint::Method;
use netalign_core::config::AlignConfig;
use netalign_core::delta::BpTrajectory;
use netalign_core::problem::NetAlignProblem;
use netalign_matching::MatcherEngine;

/// One cached problem with its warm rounding engines.
pub struct CacheEntry {
    /// The cache key (graphs + method + config fingerprint).
    pub fingerprint: u64,
    /// Aligner this entry's engines were shaped for.
    pub method: Method,
    /// The fully built problem (`A`, `B`, `L`, `S`).
    pub problem: NetAlignProblem,
    /// The validated config the fingerprint committed to.
    pub config: AlignConfig,
    /// Rounding engines released by the last run on this problem,
    /// warm memory included. Empty while a run is in flight.
    pub engines: Vec<MatcherEngine>,
    /// Recorded BP trajectory, present after an `align` with
    /// `record: true` — the base an `align_delta` replays against.
    pub trajectory: Option<BpTrajectory>,
    /// Runs served from this entry (including the one that built it).
    pub uses: u64,
    last_used: u64,
}

/// Outcome of a cache probe, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The fingerprint was cached.
    Hit,
    /// The fingerprint was not cached.
    Miss,
}

/// A strict-capacity LRU keyed by problem fingerprint. Capacities are
/// small (each entry holds a whole problem), so lookup is a linear
/// scan — cheaper than hashing at these sizes and trivially correct.
pub struct EngineCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EngineCache {
    /// Empty cache holding at most `capacity` problems (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EngineCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached problems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Look up a fingerprint, refreshing its recency on a hit.
    pub fn get_mut(&mut self, fingerprint: u64) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        match self
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fingerprint)
        {
            Some(e) => {
                self.hits += 1;
                e.last_used = tick;
                e.uses += 1;
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up a fingerprint WITHOUT touching recency or hit/miss
    /// stats — for re-finding an entry the caller just probed or
    /// inserted.
    pub fn peek_mut(&mut self, fingerprint: u64) -> Option<&mut CacheEntry> {
        self.entries
            .iter_mut()
            .find(|e| e.fingerprint == fingerprint)
    }

    /// Insert a freshly built entry, evicting the least-recently used
    /// one when full. Returns the evicted fingerprint, if any.
    pub fn insert(
        &mut self,
        fingerprint: u64,
        method: Method,
        problem: NetAlignProblem,
        config: AlignConfig,
        engines: Vec<MatcherEngine>,
    ) -> Option<u64> {
        self.tick += 1;
        debug_assert!(
            self.entries.iter().all(|e| e.fingerprint != fingerprint),
            "insert of an already-cached fingerprint"
        );
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("cache is non-empty when full");
            let mut old = self.entries.swap_remove(idx);
            // Gate on the reset contract (pinned by the engine-cache
            // unit tests): an engine leaving the cache must never carry
            // warm memory forward, so even a logic error that resurrects
            // this entry's engines replays the cold path bit-exactly.
            for e in &mut old.engines {
                e.reset();
            }
            self.evictions += 1;
            evicted = Some(old.fingerprint);
        }
        self.entries.push(CacheEntry {
            fingerprint,
            method,
            problem,
            config,
            engines,
            trajectory: None,
            uses: 1,
            last_used: self.tick,
        });
        evicted
    }

    /// Re-key an entry after a delta patched its problem in place: the
    /// entry now answers to the *patched* graphs' fingerprint. Any
    /// stale entry already cached under the new key is evicted first
    /// (the re-keyed entry carries the fresher engines/trajectory).
    /// Returns false when `old` is not cached.
    pub fn rekey(&mut self, old: u64, new: u64) -> bool {
        if old == new {
            return self.entries.iter().any(|e| e.fingerprint == old);
        }
        if !self.entries.iter().any(|e| e.fingerprint == old) {
            return false;
        }
        if let Some(idx) = self.entries.iter().position(|e| e.fingerprint == new) {
            let mut stale = self.entries.swap_remove(idx);
            for e in &mut stale.engines {
                e.reset();
            }
            self.evictions += 1;
        }
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == old)
            .expect("presence checked above");
        entry.fingerprint = new;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::bipartite::BipartiteGraph;
    use netalign_graph::undirected::Graph;

    fn tiny_problem(seed: u32) -> NetAlignProblem {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (seed % 3, 3)]);
        let l = BipartiteGraph::from_entries(4, 4, (0..4).map(|i| (i, i, 1.0 + seed as f64 * 0.1)));
        NetAlignProblem::new(g.clone(), g, l)
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = EngineCache::new(2);
        let cfg = AlignConfig::default();
        assert_eq!(c.insert(1, Method::Bp, tiny_problem(1), cfg, vec![]), None);
        assert_eq!(c.insert(2, Method::Bp, tiny_problem(2), cfg, vec![]), None);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get_mut(1).is_some());
        let evicted = c.insert(3, Method::Bp, tiny_problem(3), cfg, vec![]);
        assert_eq!(evicted, Some(2));
        assert!(c.get_mut(1).is_some());
        assert!(c.get_mut(2).is_none());
        assert!(c.get_mut(3).is_some());
        assert_eq!(c.len(), 2);
        let (hits, misses, evictions) = c.stats();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn rekey_moves_an_entry_and_evicts_a_stale_target() {
        let mut c = EngineCache::new(4);
        let cfg = AlignConfig::default();
        c.insert(1, Method::Bp, tiny_problem(1), cfg, vec![]);
        c.insert(2, Method::Bp, tiny_problem(2), cfg, vec![]);
        assert!(c.rekey(1, 9));
        assert!(c.get_mut(9).is_some());
        assert!(c.get_mut(1).is_none());
        // Re-keying onto an occupied key evicts the stale holder.
        assert!(c.rekey(9, 2));
        assert_eq!(c.len(), 1);
        assert!(c.get_mut(2).is_some());
        let (_, _, evictions) = c.stats();
        assert_eq!(evictions, 1);
        assert!(!c.rekey(42, 43));
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let mut c = EngineCache::new(0);
        let cfg = AlignConfig::default();
        assert_eq!(c.capacity(), 1);
        c.insert(1, Method::Bp, tiny_problem(1), cfg, vec![]);
        c.insert(2, Method::Bp, tiny_problem(2), cfg, vec![]);
        assert_eq!(c.len(), 1);
    }
}
