//! A minimal JSON text parser producing [`netalign_trace::Json`]
//! trees — the workspace already renders `Json`, this is the other
//! direction for the wire protocol. Strict (no trailing commas, no
//! comments, one top-level value), with a depth limit so hostile
//! nesting can't blow the stack.

use netalign_trace::Json;
use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// Where and why a parse failed. Offsets are byte positions into the
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("unescaped control character")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy it through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a') as u32 + 10,
                b'A'..=b'F' => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected a digit"));
        }
        // Leading zeros: "0" alone is fine, "0123" is not.
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected a digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected a digit in the exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rendered_documents() {
        let doc = Json::obj(vec![
            ("s", Json::str("he\"llo\n\\ wörld")),
            ("u", Json::U64(42)),
            ("i", Json::I64(-7)),
            ("f", Json::F64(2.5)),
            ("b", Json::Bool(true)),
            ("n", Json::Null),
            (
                "a",
                Json::Arr(vec![Json::U64(1), Json::Arr(vec![]), Json::Obj(vec![])]),
            ),
        ]);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn numbers_pick_exact_variants() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("-1").unwrap(), Json::I64(-1));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("--1").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"\\q\"",
            "\"unterminated",
            "[1] 2",
            "{\"a\":1,}",
            "\u{0007}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }
}
