//! netalign-serve: alignment-as-a-service.
//!
//! A long-lived daemon (`netalignd`) wraps the PR-1..5 alignment stack
//! behind a length-prefixed JSON protocol:
//!
//! - **Engine cache** ([`cache`]): problems are fingerprinted
//!   ([`fingerprint`]) and kept resident — repeat requests skip the
//!   squares-matrix build and adopt warm matcher engines.
//! - **Per-request SLOs** ([`server`]): each request's `deadline_ms`
//!   (measured from admission, queue wait included) maps onto the
//!   existing [`netalign_core::config::TimeBudget`] / watchdog /
//!   degradation-ladder machinery, so every align reply is a
//!   well-formed outcome — best-so-far under pressure, never a hang.
//! - **Bounded admission** ([`server`]): a typed 429 when the queue is
//!   full, a typed 503 while draining.
//! - **Observability** ([`metrics`]): counters, cache and queue gauges,
//!   and latency histograms behind the `metrics` op.
//!
//! The wire format ([`protocol`]) is a 4-byte big-endian length prefix
//! followed by one UTF-8 JSON object; [`json`] is the strict,
//! dependency-free parser for inbound frames and [`client`] a minimal
//! blocking client used by the tests and `loadgen`.

pub mod cache;
pub mod client;
pub mod durable;
pub mod fingerprint;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::EngineCache;
pub use client::Client;
pub use fingerprint::{problem_fingerprint, Method};
pub use server::{ServerHandle, ServerOptions};
