//! Wire protocol of `netalignd`.
//!
//! # Framing
//!
//! Every message — both directions — is one *frame*: a 4-byte
//! big-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON. A frame longer than the server's `max_frame_bytes` is
//! answered with code 413 and *drained* (the connection stays usable).
//!
//! # Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"metrics"}
//! {"op":"health"}                   // ready/degraded + restart counters
//! {"op":"crash"}                    // abort now (needs --allow-crash-op)
//! {"op":"shutdown"}
//! {"op":"align", "id":"r-1", "method":"bp"|"mr",
//!  "deadline_ms":500,              // optional SLO, includes queue wait
//!  "cold":true,                    // optional: bypass warm engine reuse
//!  "record":true,                  // optional: record a delta base (bp only)
//!  "config":{"alpha":1.0,"beta":2.0,"gamma":0.99,"iterations":100,
//!            "batch":1,"mstep":10,"rounding":"ld"|"suitor",
//!            "warm_start":true,"enriched_rounding":false,
//!            "final_exact_round":false},   // all optional
//!  "a":{"n":5,"edges":[[0,1],[1,2]]},
//!  "b":{"n":5,"edges":[[0,1]]},
//!  "l":{"entries":[[0,0,1.0],[1,1,0.9]]}}
//! {"op":"align_delta", "id":"r-2",
//!  "base":"00f1a2b3c4d5e6f7",      // fingerprint of a recorded base
//!  "a":{"insert":[[0,3]],"remove":[[1,2]]},   // graph deltas, optional
//!  "b":{},
//!  "l":{"insert":[[0,2,0.5]],"remove":[[1,1]],"reweight":[[0,0,1.5]]}}
//! ```
//!
//! `align_delta` re-aligns a *recorded* cached base against an edge
//! delta instead of shipping (and re-solving) the whole problem. The
//! server patches the cached problem in place and the entry answers to
//! the patched graphs' fingerprint afterwards, so clients chain deltas
//! by tracking the returned `fingerprint`. An unknown or unrecorded
//! base is a 422 — the client falls back to a full `align` with
//! `record:true`.
//!
//! # Responses
//!
//! Every response carries `code` (HTTP-flavored):
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 200  | OK (aligned, completed or deadline-best-so-far)     |
//! | 400  | malformed frame (bad JSON, wrong shape)             |
//! | 408  | connection frame timeout (`--conn-timeout-ms`)      |
//! | 413  | frame exceeds `max_frame_bytes`                     |
//! | 422  | well-formed but invalid (graph/config out of range) |
//! | 429  | admission queue full — retry later                  |
//! | 500  | internal error (solver panicked; server survives)   |
//! | 503  | shutting down, or boot recovery still in progress — |
//! |      | the latter carries `retry_after_ms`                 |
//! | 504  | deadline elapsed with no result assembled           |
//!
//! An `align` 200 reply carries the outcome: `completion`
//! (`"completed"`, `"deadline-best-so-far"`, `"cancelled"`), `warm`
//! (whether the engine cache supplied the problem), `fingerprint`,
//! `recorded` (whether a delta base was captured), objective/weight/
//! overlap, the matching as `[[a,b],...]`, matcher counters, and
//! queue/solve timings in milliseconds.
//!
//! An `align_delta` 200 reply carries the same outcome fields plus
//! `base_fingerprint` (the key the delta was applied to),
//! `fingerprint` (the patched problem's new key), and a `delta`
//! object with the replay accounting (`reused_iterations`,
//! `rows_recomputed`, `row_slots_total`, stage reuse, squares-patch
//! counters).

use crate::fingerprint::{parse_fingerprint, problem_fingerprint, Method};
use crate::json;
use netalign_core::config::AlignConfig;
use netalign_core::delta::{DeltaStats, ProblemDelta};
use netalign_core::harness::AlignOutcome;
use netalign_graph::bipartite::BipartiteGraph;
use netalign_graph::delta::{CandidateDelta, GraphDelta};
use netalign_graph::undirected::Graph;
use netalign_matching::RoundingMatcher;
use netalign_trace::Json;
use std::io::{Read, Write};

/// OK.
pub const CODE_OK: u16 = 200;
/// Malformed frame or JSON.
pub const CODE_MALFORMED: u16 = 400;
/// Frame exceeds the server's `max_frame_bytes`.
pub const CODE_OVERSIZED: u16 = 413;
/// Per-connection frame timeout tripped mid-frame.
pub const CODE_TIMEOUT: u16 = 408;
/// Well-formed but semantically invalid request.
pub const CODE_INVALID: u16 = 422;
/// Admission queue full.
pub const CODE_OVERLOAD: u16 = 429;
/// The solver panicked on this request.
pub const CODE_INTERNAL: u16 = 500;
/// Server is draining; no new work accepted.
pub const CODE_SHUTTING_DOWN: u16 = 503;
/// Deadline elapsed without any result to return.
pub const CODE_DEADLINE: u16 = 504;

/// Ceiling on declared vertex counts (per side) — bounds allocation
/// from a hostile header before any edge is read.
pub const MAX_VERTICES: usize = 50_000_000;
/// Ceiling on `iterations` accepted over the wire.
pub const MAX_ITERATIONS: usize = 1_000_000;

/// One parsed request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Metrics snapshot.
    Metrics,
    /// Readiness probe: `ready` once boot recovery (if any) finished.
    Health,
    /// Abort the process immediately (chaos testing; gated on
    /// `--allow-crash-op`, 422 otherwise).
    Crash,
    /// Drain and stop the server.
    Shutdown,
    /// Run an alignment.
    Align(Box<AlignRequest>),
    /// Re-align a recorded cached base against an edge delta.
    AlignDelta(Box<DeltaRequest>),
}

/// A validated `align` request, ready for admission.
#[derive(Debug)]
pub struct AlignRequest {
    /// Client-chosen echo tag.
    pub id: Option<String>,
    /// Aligner to run.
    pub method: Method,
    /// Full run config (server defaults applied).
    pub config: AlignConfig,
    /// SLO in milliseconds, measured from admission (includes queue
    /// wait). `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// Bypass warm engine reuse even on a cache hit (the cached
    /// engines are `reset()` so the solve replays the cold path).
    pub cold: bool,
    /// Record the BP trajectory so later `align_delta` requests can
    /// replay against this run. BP only (422 otherwise at parse).
    pub record: bool,
    /// First input graph.
    pub a: Graph,
    /// Second input graph.
    pub b: Graph,
    /// Weighted candidate graph.
    pub l: BipartiteGraph,
    /// Cache key (see [`crate::fingerprint`]).
    pub fingerprint: u64,
}

/// A validated `align_delta` request. Only *shapes* are checked at
/// parse time; semantic errors (unknown edge, duplicate insert, out of
/// range endpoint) surface as 422 when the delta is applied to the
/// cached base.
#[derive(Debug)]
pub struct DeltaRequest {
    /// Client-chosen echo tag.
    pub id: Option<String>,
    /// Fingerprint of the recorded base entry to patch.
    pub base: u64,
    /// Edge edits to apply to `A`, `B`, `L`.
    pub delta: ProblemDelta,
}

/// Why a frame could not become a [`Request`].
#[derive(Debug)]
pub struct RequestError {
    /// Response code (400 or 422).
    pub code: u16,
    /// Human-readable description, echoed to the client.
    pub message: String,
}

impl RequestError {
    fn malformed(message: impl Into<String>) -> Self {
        RequestError {
            code: CODE_MALFORMED,
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> Self {
        RequestError {
            code: CODE_INVALID,
            message: message.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

// The codec itself lives in `netalign_core::frame` (shared with the
// distributed execution transport); this module keeps `io::Result`
// wrappers so existing call sites — which classify errors by
// `ErrorKind` — stay unchanged. Torn tails surface as
// `UnexpectedEof` with the typed counts in the message.
pub use netalign_core::frame::{write_frame, FrameRead};

/// Read one length-prefixed frame, enforcing `max_len`.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> std::io::Result<FrameRead> {
    netalign_core::frame::read_frame(r, max_len).map_err(Into::into)
}

/// Render and send a [`Json`] document as one frame.
pub fn write_json(w: &mut impl Write, doc: &Json) -> std::io::Result<()> {
    write_frame(w, doc.render().as_bytes())
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    obj.get(key).and_then(Json::as_str)
}

/// Parse and validate one request payload.
pub fn parse_request(payload: &[u8]) -> Result<Request, RequestError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| RequestError::malformed("payload is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| RequestError::malformed(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(RequestError::malformed("request must be a JSON object"));
    }
    match get_str(&doc, "op") {
        Some("ping") => Ok(Request::Ping),
        Some("metrics") => Ok(Request::Metrics),
        Some("health") => Ok(Request::Health),
        Some("crash") => Ok(Request::Crash),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("align") => parse_align(&doc).map(|r| Request::Align(Box::new(r))),
        Some("align_delta") => parse_delta(&doc).map(|r| Request::AlignDelta(Box::new(r))),
        Some(other) => Err(RequestError::malformed(format!("unknown op '{other}'"))),
        None => Err(RequestError::malformed("missing string field 'op'")),
    }
}

fn parse_align(doc: &Json) -> Result<AlignRequest, RequestError> {
    let id = get_str(doc, "id").map(str::to_string);
    let method = match get_str(doc, "method") {
        None => Method::Bp,
        Some(name) => Method::parse(name)
            .ok_or_else(|| RequestError::invalid(format!("unknown method '{name}'")))?,
    };
    let deadline_ms =
        match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                RequestError::invalid("deadline_ms must be a non-negative integer")
            })?),
        };
    let cold = match doc.get("cold") {
        None | Some(Json::Null) => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::invalid("cold must be a boolean"))?,
    };
    let record = match doc.get("record") {
        None | Some(Json::Null) => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::invalid("record must be a boolean"))?,
    };
    if record && method != Method::Bp {
        return Err(RequestError::invalid(
            "record requires method \"bp\" (delta replay is bp-only)",
        ));
    }
    let config = parse_config(doc.get("config"))?;
    let a = parse_graph(doc.get("a"), "a")?;
    let b = parse_graph(doc.get("b"), "b")?;
    let l = parse_candidate(doc.get("l"), a.num_vertices(), b.num_vertices())?;
    let fingerprint = problem_fingerprint(&a, &b, &l, method, &config);
    Ok(AlignRequest {
        id,
        method,
        config,
        deadline_ms,
        cold,
        record,
        a,
        b,
        l,
        fingerprint,
    })
}

fn parse_delta(doc: &Json) -> Result<DeltaRequest, RequestError> {
    let id = get_str(doc, "id").map(str::to_string);
    let base = get_str(doc, "base")
        .ok_or_else(|| RequestError::invalid("missing string field 'base'"))
        .and_then(|s| {
            parse_fingerprint(s)
                .ok_or_else(|| RequestError::invalid("base must be a hex fingerprint"))
        })?;
    let delta = ProblemDelta {
        a: parse_graph_delta(doc.get("a"), "a")?,
        b: parse_graph_delta(doc.get("b"), "b")?,
        l: parse_candidate_delta(doc.get("l"))?,
    };
    if delta.is_empty() {
        return Err(RequestError::invalid("delta edits nothing"));
    }
    Ok(DeltaRequest { id, base, delta })
}

fn vertex_pair(v: &Json, what: &str, i: usize) -> Result<(u32, u32), RequestError> {
    let pair = v
        .as_arr()
        .filter(|p| p.len() == 2)
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}] must be [u, v]")))?;
    let u = pair[0]
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}][0] must be a vertex id")))?;
    let v = pair[1]
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}][1] must be a vertex id")))?;
    Ok((u, v))
}

fn weighted_triple(v: &Json, what: &str, i: usize) -> Result<(u32, u32, f64), RequestError> {
    let triple = v
        .as_arr()
        .filter(|t| t.len() == 3)
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}] must be [a, b, w]")))?;
    let a = triple[0]
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}][0] must be a vertex id")))?;
    let b = triple[1]
        .as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}][1] must be a vertex id")))?;
    let w = triple[2]
        .as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| RequestError::invalid(format!("{what}[{i}][2] must be finite")))?;
    Ok((a, b, w))
}

fn pair_list(v: &Json, what: &str) -> Result<Vec<(u32, u32)>, RequestError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| RequestError::invalid(format!("{what} must be an array")))?;
    arr.iter()
        .enumerate()
        .map(|(i, e)| vertex_pair(e, what, i))
        .collect()
}

fn triple_list(v: &Json, what: &str) -> Result<Vec<(u32, u32, f64)>, RequestError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| RequestError::invalid(format!("{what} must be an array")))?;
    arr.iter()
        .enumerate()
        .map(|(i, e)| weighted_triple(e, what, i))
        .collect()
}

fn parse_graph_delta(value: Option<&Json>, name: &str) -> Result<GraphDelta, RequestError> {
    let mut d = GraphDelta::default();
    let Some(obj) = value else { return Ok(d) };
    if matches!(obj, Json::Null) {
        return Ok(d);
    }
    let Json::Obj(pairs) = obj else {
        return Err(RequestError::invalid(format!("{name} must be an object")));
    };
    for (key, v) in pairs {
        match key.as_str() {
            "insert" => d.insert = pair_list(v, &format!("{name}.insert"))?,
            "remove" => d.remove = pair_list(v, &format!("{name}.remove"))?,
            other => {
                return Err(RequestError::invalid(format!(
                    "unknown {name} delta field '{other}'"
                )))
            }
        }
    }
    Ok(d)
}

fn parse_candidate_delta(value: Option<&Json>) -> Result<CandidateDelta, RequestError> {
    let mut d = CandidateDelta::default();
    let Some(obj) = value else { return Ok(d) };
    if matches!(obj, Json::Null) {
        return Ok(d);
    }
    let Json::Obj(pairs) = obj else {
        return Err(RequestError::invalid("l must be an object"));
    };
    for (key, v) in pairs {
        match key.as_str() {
            "insert" => d.insert = triple_list(v, "l.insert")?,
            "remove" => d.remove = pair_list(v, "l.remove")?,
            "reweight" => d.reweight = triple_list(v, "l.reweight")?,
            other => {
                return Err(RequestError::invalid(format!(
                    "unknown l delta field '{other}'"
                )))
            }
        }
    }
    Ok(d)
}

/// Server-side config defaults: engine-mode warm rounding with matcher
/// tracing on (cheap, and the service reports the counters), history
/// off.
pub fn default_config() -> AlignConfig {
    AlignConfig {
        iterations: 50,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        trace_matcher: true,
        record_history: false,
        ..AlignConfig::default()
    }
}

fn parse_config(value: Option<&Json>) -> Result<AlignConfig, RequestError> {
    let mut c = default_config();
    let Some(obj) = value else { return Ok(c) };
    if !matches!(obj, Json::Obj(_)) {
        return Err(RequestError::invalid("config must be an object"));
    }
    let Json::Obj(pairs) = obj else {
        unreachable!()
    };
    for (key, v) in pairs {
        match key.as_str() {
            "alpha" => c.alpha = num_f64(v, "config.alpha")?,
            "beta" => c.beta = num_f64(v, "config.beta")?,
            "gamma" => c.gamma = num_f64(v, "config.gamma")?,
            "iterations" => c.iterations = num_usize(v, "config.iterations")?,
            "batch" => c.batch = num_usize(v, "config.batch")?,
            "mstep" => c.mstep = num_usize(v, "config.mstep")?,
            "warm_start" => c.warm_start = boolean(v, "config.warm_start")?,
            "enriched_rounding" => c.enriched_rounding = boolean(v, "config.enriched_rounding")?,
            "final_exact_round" => c.final_exact_round = boolean(v, "config.final_exact_round")?,
            "rounding" => {
                c.rounding = match v.as_str() {
                    Some("ld") => Some(RoundingMatcher::Ld),
                    Some("suitor") => Some(RoundingMatcher::Suitor),
                    _ => {
                        return Err(RequestError::invalid(
                            "config.rounding must be \"ld\" or \"suitor\"",
                        ))
                    }
                }
            }
            other => {
                return Err(RequestError::invalid(format!(
                    "unknown config field '{other}'"
                )))
            }
        }
    }
    // Mirror AlignConfig::validate (which panics) as typed 422s, plus
    // service-level resource ceilings.
    // num_f64 already rejected NaN, so plain comparisons are total here.
    if c.alpha < 0.0 || c.beta < 0.0 || (c.alpha == 0.0 && c.beta == 0.0) {
        return Err(RequestError::invalid(
            "alpha/beta must be non-negative with at least one positive",
        ));
    }
    if c.gamma <= 0.0 || c.gamma > 1.0 {
        return Err(RequestError::invalid("gamma must be in (0, 1]"));
    }
    if c.iterations == 0 || c.iterations > MAX_ITERATIONS {
        return Err(RequestError::invalid(format!(
            "iterations must be in 1..={MAX_ITERATIONS}"
        )));
    }
    if c.batch == 0 || c.mstep == 0 {
        return Err(RequestError::invalid("batch and mstep must be at least 1"));
    }
    if c.warm_start && c.rounding.is_none() {
        return Err(RequestError::invalid("warm_start requires rounding"));
    }
    Ok(c)
}

fn num_f64(v: &Json, what: &str) -> Result<f64, RequestError> {
    v.as_f64()
        .filter(|x| x.is_finite())
        .ok_or_else(|| RequestError::invalid(format!("{what} must be a finite number")))
}

fn num_usize(v: &Json, what: &str) -> Result<usize, RequestError> {
    v.as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{what} must be a non-negative integer")))
}

fn boolean(v: &Json, what: &str) -> Result<bool, RequestError> {
    v.as_bool()
        .ok_or_else(|| RequestError::invalid(format!("{what} must be a boolean")))
}

fn parse_graph(value: Option<&Json>, name: &str) -> Result<Graph, RequestError> {
    let obj = value.ok_or_else(|| RequestError::invalid(format!("missing graph '{name}'")))?;
    let n = obj
        .get("n")
        .and_then(Json::as_u64)
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| RequestError::invalid(format!("{name}.n must be a non-negative integer")))?;
    if n == 0 || n > MAX_VERTICES {
        return Err(RequestError::invalid(format!(
            "{name}.n must be in 1..={MAX_VERTICES}"
        )));
    }
    let edges = obj
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| RequestError::invalid(format!("{name}.edges must be an array")))?;
    let mut list = Vec::with_capacity(edges.len());
    for (i, e) in edges.iter().enumerate() {
        let pair = e
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| RequestError::invalid(format!("{name}.edges[{i}] must be [u, v]")))?;
        let u = pair[0]
            .as_u64()
            .filter(|&x| (x as usize) < n)
            .ok_or_else(|| RequestError::invalid(format!("{name}.edges[{i}][0] out of range")))?;
        let v = pair[1]
            .as_u64()
            .filter(|&x| (x as usize) < n)
            .ok_or_else(|| RequestError::invalid(format!("{name}.edges[{i}][1] out of range")))?;
        if u == v {
            return Err(RequestError::invalid(format!(
                "{name}.edges[{i}] is a self-loop"
            )));
        }
        list.push((u as u32, v as u32));
    }
    Ok(Graph::from_edges(n, list))
}

fn parse_candidate(
    value: Option<&Json>,
    na: usize,
    nb: usize,
) -> Result<BipartiteGraph, RequestError> {
    let obj = value.ok_or_else(|| RequestError::invalid("missing candidate graph 'l'"))?;
    let entries = obj
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| RequestError::invalid("l.entries must be an array"))?;
    if entries.is_empty() {
        return Err(RequestError::invalid("l.entries must be non-empty"));
    }
    let mut list = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let triple = e
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| RequestError::invalid(format!("l.entries[{i}] must be [a, b, w]")))?;
        let a = triple[0]
            .as_u64()
            .filter(|&x| (x as usize) < na)
            .ok_or_else(|| RequestError::invalid(format!("l.entries[{i}][0] out of range")))?;
        let b = triple[1]
            .as_u64()
            .filter(|&x| (x as usize) < nb)
            .ok_or_else(|| RequestError::invalid(format!("l.entries[{i}][1] out of range")))?;
        let w = triple[2]
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| RequestError::invalid(format!("l.entries[{i}][2] must be finite")))?;
        list.push((a as u32, b as u32, w));
    }
    BipartiteGraph::try_from_entries(na, nb, list)
        .map_err(|e| RequestError::invalid(format!("invalid candidate graph: {e}")))
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// A typed error reply.
pub fn error_response(code: u16, message: &str, id: Option<&str>) -> Json {
    let mut pairs = vec![
        ("code", Json::U64(code as u64)),
        ("error", Json::str(message)),
    ];
    if let Some(id) = id {
        pairs.push(("id", Json::str(id)));
    }
    Json::obj(pairs)
}

/// A typed error reply that tells the client when to retry. Clients
/// use the *presence* of `retry_after_ms` to distinguish a transient
/// condition (boot recovery in progress) from a terminal one (drain
/// shutdown), so terminal errors must go through [`error_response`].
pub fn retry_response(code: u16, message: &str, retry_after_ms: u64, id: Option<&str>) -> Json {
    let mut pairs = vec![
        ("code", Json::U64(code as u64)),
        ("error", Json::str(message)),
        ("retry_after_ms", Json::U64(retry_after_ms)),
    ];
    if let Some(id) = id {
        pairs.push(("id", Json::str(id)));
    }
    Json::obj(pairs)
}

/// The outcome fields shared by `align` and `align_delta` replies.
fn outcome_fields(outcome: &AlignOutcome) -> Vec<(&'static str, Json)> {
    let r = &outcome.result;
    let matching: Vec<Json> = r
        .matching
        .pairs()
        .map(|(a, b)| Json::Arr(vec![Json::U64(a as u64), Json::U64(b as u64)]))
        .collect();
    vec![
        ("completion", Json::str(outcome.completion.label())),
        ("iterations_run", Json::U64(outcome.iterations_run as u64)),
        ("ladder_rung", Json::U64(outcome.ladder_rung as u64)),
        ("objective", Json::F64(r.objective)),
        ("weight", Json::F64(r.weight)),
        ("overlap", Json::F64(r.overlap)),
        ("best_iteration", Json::U64(r.best_iteration as u64)),
        ("upper_bound", r.upper_bound.map_or(Json::Null, Json::F64)),
        ("cardinality", Json::U64(r.matching.cardinality() as u64)),
        ("matching", Json::Arr(matching)),
        (
            "matcher",
            Json::obj(vec![
                ("warm_hits", Json::U64(r.trace.matcher.warm_hits)),
                (
                    "reseeded_vertices",
                    Json::U64(r.trace.matcher.reseeded_vertices),
                ),
            ]),
        ),
    ]
}

/// A 200 align reply.
pub fn align_response(
    req: &AlignRequest,
    outcome: &AlignOutcome,
    warm: bool,
    recorded: bool,
    queue_ms: f64,
    solve_ms: f64,
) -> Json {
    let mut pairs = vec![("code", Json::U64(CODE_OK as u64))];
    if let Some(id) = &req.id {
        pairs.push(("id", Json::str(id.clone())));
    }
    pairs.extend([
        ("method", Json::str(req.method.name())),
        (
            "fingerprint",
            Json::str(crate::fingerprint::render_fingerprint(req.fingerprint)),
        ),
        ("warm", Json::Bool(warm)),
        ("recorded", Json::Bool(recorded)),
    ]);
    pairs.extend(outcome_fields(outcome));
    pairs.extend([
        ("queue_ms", Json::F64(queue_ms)),
        ("solve_ms", Json::F64(solve_ms)),
    ]);
    Json::obj(pairs)
}

/// A 200 align_delta reply: the shared outcome fields plus the
/// patched problem's new fingerprint and the replay accounting.
pub fn delta_response(
    req: &DeltaRequest,
    new_fingerprint: u64,
    outcome: &AlignOutcome,
    stats: &DeltaStats,
    queue_ms: f64,
    solve_ms: f64,
) -> Json {
    let mut pairs = vec![("code", Json::U64(CODE_OK as u64))];
    if let Some(id) = &req.id {
        pairs.push(("id", Json::str(id.clone())));
    }
    pairs.extend([
        ("method", Json::str(Method::Bp.name())),
        (
            "base_fingerprint",
            Json::str(crate::fingerprint::render_fingerprint(req.base)),
        ),
        (
            "fingerprint",
            Json::str(crate::fingerprint::render_fingerprint(new_fingerprint)),
        ),
        ("warm", Json::Bool(true)),
    ]);
    pairs.extend(outcome_fields(outcome));
    pairs.extend([
        (
            "delta",
            Json::obj(vec![
                (
                    "reused_iterations",
                    Json::U64(stats.delta_reused_iterations as u64),
                ),
                ("iterations_total", Json::U64(stats.iterations_total as u64)),
                ("rows_recomputed", Json::U64(stats.rows_recomputed as u64)),
                ("row_slots_total", Json::U64(stats.row_slots_total as u64)),
                ("seed_rows", Json::U64(stats.seed_rows as u64)),
                ("stages_reused", Json::U64(stats.stages_reused as u64)),
                ("stages_rematched", Json::U64(stats.stages_rematched as u64)),
                (
                    "escaped_at",
                    stats.escaped_at.map_or(Json::Null, |k| Json::U64(k as u64)),
                ),
                (
                    "squares",
                    Json::obj(vec![
                        (
                            "rows_reenumerated",
                            Json::U64(stats.squares.rows_reenumerated as u64),
                        ),
                        ("rows_reused", Json::U64(stats.squares.rows_reused as u64)),
                        (
                            "entries_reused",
                            Json::U64(stats.squares.entries_reused as u64),
                        ),
                        ("nnz", Json::U64(stats.squares.nnz as u64)),
                    ]),
                ),
            ]),
        ),
        ("queue_ms", Json::F64(queue_ms)),
        ("solve_ms", Json::F64(solve_ms)),
    ]);
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_roundtrip(payload: &[u8], max: u32) -> FrameRead {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        read_frame(&mut buf.as_slice(), max).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        match frame_roundtrip(b"{\"op\":\"ping\"}", 1024) {
            FrameRead::Frame(p) => assert_eq!(p, b"{\"op\":\"ping\"}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_drained_not_fatal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        write_frame(&mut buf, b"after").unwrap();
        let mut r = buf.as_slice();
        match read_frame(&mut r, 10).unwrap() {
            FrameRead::Oversized(len) => assert_eq!(len, 100),
            other => panic!("{other:?}"),
        }
        // The stream stays frame-aligned: the next frame parses.
        match read_frame(&mut r, 10).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"after"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_at_boundary_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, 10).unwrap(),
            FrameRead::Closed
        ));
    }

    fn align_doc() -> String {
        r#"{"op":"align","method":"bp","id":"t",
            "config":{"iterations":4},
            "a":{"n":3,"edges":[[0,1],[1,2]]},
            "b":{"n":3,"edges":[[0,1],[1,2]]},
            "l":{"entries":[[0,0,1.0],[1,1,1.0],[2,2,1.0]]}}"#
            .to_string()
    }

    #[test]
    fn align_request_parses_and_fingerprints() {
        let Request::Align(req) = parse_request(align_doc().as_bytes()).unwrap() else {
            panic!("expected align")
        };
        assert_eq!(req.method, Method::Bp);
        assert_eq!(req.config.iterations, 4);
        assert!(req.config.warm_start, "server default");
        assert_eq!(req.l.num_edges(), 3);
        assert_ne!(req.fingerprint, 0);
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        // Not JSON at all → 400.
        let e = parse_request(b"not json").unwrap_err();
        assert_eq!(e.code, CODE_MALFORMED);
        // Well-formed, bad semantics → 422.
        let bad = align_doc().replace("[[0,1],[1,2]]", "[[0,9]]");
        let e = parse_request(bad.as_bytes()).unwrap_err();
        assert_eq!(e.code, CODE_INVALID);
        let bad = align_doc().replace("\"iterations\":4", "\"iterations\":0");
        let e = parse_request(bad.as_bytes()).unwrap_err();
        assert_eq!(e.code, CODE_INVALID);
        let bad = align_doc().replace("\"bp\"", "\"simplex\"");
        let e = parse_request(bad.as_bytes()).unwrap_err();
        assert_eq!(e.code, CODE_INVALID);
    }

    #[test]
    fn align_delta_parses_shapes_only() {
        let doc = r#"{"op":"align_delta","id":"d-1","base":"00f1a2b3c4d5e6f7",
            "a":{"insert":[[0,3]],"remove":[[1,2]]},
            "l":{"reweight":[[0,0,1.5]]}}"#;
        let Request::AlignDelta(req) = parse_request(doc.as_bytes()).unwrap() else {
            panic!("expected align_delta")
        };
        assert_eq!(req.base, 0x00f1_a2b3_c4d5_e6f7);
        assert_eq!(req.delta.a.insert, vec![(0, 3)]);
        assert_eq!(req.delta.a.remove, vec![(1, 2)]);
        assert!(req.delta.b.is_empty());
        assert_eq!(req.delta.l.reweight, vec![(0, 0, 1.5)]);

        // Missing base, bad hex, empty delta, record on mr → all 422.
        for bad in [
            r#"{"op":"align_delta","l":{"reweight":[[0,0,1.5]]}}"#.to_string(),
            r#"{"op":"align_delta","base":"zzz","l":{"reweight":[[0,0,1.5]]}}"#.to_string(),
            r#"{"op":"align_delta","base":"ff"}"#.to_string(),
            align_doc().replace("\"bp\"", "\"mr\",\"record\":true"),
        ] {
            let e = parse_request(bad.as_bytes()).unwrap_err();
            assert_eq!(e.code, CODE_INVALID, "{bad}");
        }

        // record on bp parses.
        let recorded =
            align_doc().replace("\"method\":\"bp\"", "\"method\":\"bp\",\"record\":true");
        let Request::Align(r) = parse_request(recorded.as_bytes()).unwrap() else {
            panic!()
        };
        assert!(r.record);
    }

    #[test]
    fn edge_order_does_not_change_the_fingerprint() {
        let Request::Align(r1) = parse_request(align_doc().as_bytes()).unwrap() else {
            panic!()
        };
        let swapped = align_doc().replace("[[0,1],[1,2]]", "[[1,2],[0,1]]");
        let Request::Align(r2) = parse_request(swapped.as_bytes()).unwrap() else {
            panic!()
        };
        assert_eq!(r1.fingerprint, r2.fingerprint);
        // Any weight change separates the keys.
        let reweighted = align_doc().replace("[0,0,1.0]", "[0,0,1.5]");
        let Request::Align(r3) = parse_request(reweighted.as_bytes()).unwrap() else {
            panic!()
        };
        assert_ne!(r1.fingerprint, r3.fingerprint);
    }
}
