//! Problem fingerprints: the engine-cache key.
//!
//! A fingerprint commits to everything that decides whether two align
//! requests may share cached state — both input graphs (structure),
//! the candidate graph `L` (structure *and* weights), the aligner
//! method, and every config field that influences the iteration
//! trajectory (via [`netalign_core::checkpoint::config_fingerprint`],
//! which already excludes observability toggles).
//!
//! Edge *sets* are hashed in canonical (sorted) order, so two requests
//! that list the same edges in different orders collide — exactly what
//! a cache wants — while any added/removed edge, changed weight bit,
//! or changed config knob produces a different key. 64-bit FNV-1a is
//! not collision-proof against adversaries; the solver therefore never
//! trusts the key alone — adopted engines re-verify their graph
//! binding (`MatcherEngine::binds`) and the cache stores the full
//! problem, so a collision costs a rebuild, never a wrong answer.

use netalign_core::checkpoint::config_fingerprint;
use netalign_core::config::AlignConfig;
use netalign_graph::bipartite::BipartiteGraph;
use netalign_graph::undirected::Graph;

/// Aligner selector carried by each request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Belief propagation (the paper's Listing 2).
    Bp,
    /// Klau's matching relaxation.
    Mr,
}

impl Method {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bp => "bp",
            Method::Mr => "mr",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "bp" => Some(Method::Bp),
            "mr" => Some(Method::Mr),
            _ => None,
        }
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Canonical structure hash of an undirected graph: vertex count plus
/// the sorted edge set (each edge normalized to `(min, max)`).
pub fn graph_structure_fingerprint(g: &Graph) -> u64 {
    let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
    edges.sort_unstable();
    edges.dedup();
    let mut h = Fnv::new();
    h.eat(g.num_vertices() as u64);
    h.eat(edges.len() as u64);
    for (u, v) in edges {
        h.eat(u as u64);
        h.eat(v as u64);
    }
    h.0
}

/// Canonical hash of the weighted candidate graph `L`: shape plus the
/// sorted `(a, b, weight-bits)` entry set.
pub fn candidate_fingerprint(l: &BipartiteGraph) -> u64 {
    let mut entries: Vec<(u32, u32, u64)> = (0..l.num_edges())
        .map(|e| {
            let (a, b) = l.endpoints(e);
            (a, b, l.weight(e).to_bits())
        })
        .collect();
    entries.sort_unstable();
    let mut h = Fnv::new();
    h.eat(l.num_left() as u64);
    h.eat(l.num_right() as u64);
    h.eat(entries.len() as u64);
    for (a, b, w) in entries {
        h.eat(a as u64);
        h.eat(b as u64);
        h.eat(w);
    }
    h.0
}

/// The full cache key: both graphs, `L`, the method, and the
/// trajectory-relevant config.
pub fn problem_fingerprint(
    a: &Graph,
    b: &Graph,
    l: &BipartiteGraph,
    method: Method,
    config: &AlignConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.eat(match method {
        Method::Bp => 0xb9,
        Method::Mr => 0x34,
    });
    h.eat(graph_structure_fingerprint(a));
    h.eat(graph_structure_fingerprint(b));
    h.eat(candidate_fingerprint(l));
    h.eat(config_fingerprint(config));
    h.0
}

/// Render a fingerprint the way the protocol carries it.
pub fn render_fingerprint(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse a wire fingerprint (16 lowercase hex digits, as produced by
/// [`render_fingerprint`]; shorter forms and uppercase are tolerated).
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}
