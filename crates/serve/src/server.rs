//! `netalignd` runtime: blocking accept loop + per-connection framing
//! threads + ONE solver thread over a bounded admission queue.
//!
//! The solver stays single-threaded at the *request* level even though
//! cancellation no longer forces it to be: `netalign_trace::cancel`
//! keys its token registry on the runtime's per-thread cancel scope,
//! so concurrent harness runs in one process no longer observe each
//! other's deadlines. What still wants a single owner is the engine
//! cache — `align_delta` patches entries in place and each run
//! borrows an entry's warm engines exclusively, which one solver
//! thread gets for free with no locking or entry pinning.
//! Parallelism lives where the paper puts it — inside each solve, on
//! the persistent worker pool — and at the service edge, where
//! connection threads parse/validate/reply concurrently. Concurrent
//! requests therefore queue at admission: a bounded `sync_channel`
//! whose overflow is a typed 429, never an unbounded buildup.
//!
//! Shutdown drains: the flag stops new admissions (503) and unblocks
//! the accept loop; the solver keeps answering every job already
//! admitted, then exits; connection threads notice the flag at their
//! next read-timeout tick and close.

use crate::cache::EngineCache;
use crate::durable::DurableStore;
use crate::fingerprint::{problem_fingerprint, Method};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    self, AlignRequest, DeltaRequest, FrameRead, Request, CODE_INTERNAL, CODE_INVALID, CODE_OK,
    CODE_OVERLOAD, CODE_OVERSIZED, CODE_SHUTTING_DOWN, CODE_TIMEOUT,
};
use netalign_core::config::TimeBudget;
use netalign_core::delta as core_delta;
use netalign_core::harness::{AlignOutcome, Completion, RunHarness};
use netalign_core::problem::NetAlignProblem;
use netalign_trace::{faults, Json};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fault point: abort before the solver touches an admitted job.
pub const KILL_SOLVE: &str = "solve";
/// Fault point: abort after the solve, before the reply is sent — the
/// client-facing half of a crash (work done, answer lost).
pub const KILL_REPLY: &str = "reply";

/// `retry_after_ms` hinted to clients that arrive while boot recovery
/// is still rebuilding the cache.
const RECOVERY_RETRY_MS: u64 = 200;

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:7464` (`:0` for ephemeral).
    pub addr: String,
    /// Problems kept warm in the engine cache.
    pub cache_capacity: usize,
    /// Admission queue bound; overflow is a typed 429.
    pub queue_capacity: usize,
    /// Largest accepted request frame in bytes.
    pub max_frame_bytes: u32,
    /// Watchdog stall budget applied to every solve (`None` = off).
    pub watchdog_ms: Option<u64>,
    /// Worker threads for the solve pool (`None` = the global pool).
    pub threads: Option<usize>,
    /// Durable state directory (`None` = purely in-memory serving).
    /// With it set, recorded bases are spilled + journaled and a boot
    /// replays the journal back into the cache.
    pub state_dir: Option<PathBuf>,
    /// Journal rotation threshold in bytes.
    pub journal_max_bytes: u64,
    /// Ceiling on how long one *frame* may take to arrive once its
    /// first byte has (`None` = patient forever). Tripping it is a
    /// typed 408 and a close; idle time between frames is never
    /// limited.
    pub conn_timeout_ms: Option<u64>,
    /// Honor the `crash` op (chaos testing) instead of 422-ing it.
    pub allow_crash_op: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 8,
            queue_capacity: 64,
            max_frame_bytes: 16 << 20,
            watchdog_ms: Some(30_000),
            threads: None,
            state_dir: None,
            journal_max_bytes: 8 << 20,
            conn_timeout_ms: None,
            allow_crash_op: false,
        }
    }
}

/// Work admitted to the solver.
enum Work {
    /// Full align (optionally recording a delta base).
    Align(Box<AlignRequest>),
    /// Delta re-align of a recorded cached base.
    Delta(Box<DeltaRequest>),
}

impl Work {
    fn id(&self) -> Option<&str> {
        match self {
            Work::Align(r) => r.id.as_deref(),
            Work::Delta(r) => r.id.as_deref(),
        }
    }
}

/// One admitted request en route to the solver.
struct Job {
    work: Work,
    admitted: Instant,
    reply: Sender<Json>,
}

struct Shared {
    opts: ServerOptions,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    /// `false` until boot recovery (if a state dir is set) has
    /// rebuilt the cache; align work arriving earlier gets a 503 with
    /// `retry_after_ms` instead of racing the replay.
    ready: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`shutdown`](Self::shutdown) or send the `shutdown` op.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    solver_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind and start serving. Returns once the listener is live; the
    /// actual bound address (ephemeral ports resolved) is
    /// [`addr`](Self::addr).
    pub fn start(opts: ServerOptions) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        // Serving starts not-ready iff there is boot recovery to do;
        // the solver flips the flag once the cache is rebuilt.
        let ready = opts.state_dir.is_none();
        let shared = Arc::new(Shared {
            opts,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(ready),
            addr,
        });
        // A supervised child learns its restart ordinal from the
        // supervisor so `metrics`/`health` can report it.
        if let Some(k) = std::env::var("NETALIGND_RESTARTS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            shared.metrics.restarts.store(k, Ordering::Relaxed);
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.opts.queue_capacity);

        let solver_shared = shared.clone();
        let solver_thread = std::thread::Builder::new()
            .name("netalignd-solver".into())
            .spawn(move || solver_loop(solver_shared, job_rx))
            .expect("spawn solver thread");

        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("netalignd-accept".into())
            .spawn(move || accept_loop(accept_shared, listener, job_tx))
            .expect("spawn accept thread");

        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
            solver_thread: Some(solver_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Trigger a drain-and-stop from inside the process (equivalent to
    /// the `shutdown` op).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Block until the server has fully drained and stopped.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.solver_thread.take() {
            let _ = t.join();
        }
        // Give connection threads (detached) a bounded grace period to
        // flush their final replies before the caller exits.
        let grace = Instant::now();
        while self.shared.metrics.connections.load(Ordering::Relaxed) > 0
            && grace.elapsed() < Duration::from_secs(2)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn begin_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(500));
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, job_tx: SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = shared.clone();
        let conn_tx = job_tx.clone();
        let _ = std::thread::Builder::new()
            .name("netalignd-conn".into())
            .spawn(move || {
                ServerMetrics::bump(&conn_shared.metrics.connections);
                let _ = handle_connection(&conn_shared, stream, conn_tx);
                conn_shared
                    .metrics
                    .connections
                    .fetch_sub(1, Ordering::Relaxed);
            });
    }
    // Dropping the last sender lets the solver exit as soon as the
    // queue is drained.
    drop(job_tx);
}

/// `read_frame` that tolerates read timeouts: a timeout checks the
/// shutdown flag and otherwise keeps reading the same frame, so a slow
/// sender is never desynced. With `conn_timeout_ms` set, a frame that
/// has *started* but not finished within the budget surfaces as a
/// `TimedOut` error (progress does not reset the clock — the budget
/// bounds total frame receipt, so a drip-feeding peer cannot pin the
/// thread); idle connections between frames are never timed out.
fn read_frame_patient(
    shared: &Shared,
    stream: &mut TcpStream,
) -> std::io::Result<Option<FrameRead>> {
    struct Patient<'a> {
        shared: &'a Shared,
        stream: &'a mut TcpStream,
        started: bool,
        interrupted: bool,
        frame_started: Option<Instant>,
        conn_timeout: Option<Duration>,
    }
    impl Read for Patient<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.stream.read(buf) {
                    Ok(n) => {
                        self.started = true;
                        if n > 0 && self.frame_started.is_none() {
                            self.frame_started = Some(Instant::now());
                        }
                        return Ok(n);
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Between frames a shutdown closes the
                        // connection; mid-frame we keep waiting so a
                        // half-read frame still completes.
                        if self.shared.shutting_down() && !self.started {
                            self.interrupted = true;
                            return Ok(0);
                        }
                        if let (Some(limit), Some(t0)) = (self.conn_timeout, self.frame_started) {
                            if t0.elapsed() > limit {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::TimedOut,
                                    "frame exceeded the connection timeout",
                                ));
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let mut patient = Patient {
        shared,
        stream,
        started: false,
        interrupted: false,
        frame_started: None,
        conn_timeout: shared.opts.conn_timeout_ms.map(Duration::from_millis),
    };
    let frame = protocol::read_frame(&mut patient, shared.opts.max_frame_bytes);
    if patient.interrupted {
        return Ok(None);
    }
    frame.map(Some)
}

fn handle_connection(
    shared: &Shared,
    mut stream: TcpStream,
    job_tx: SyncSender<Job>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    if let Some(ms) = shared.opts.conn_timeout_ms {
        stream
            .set_write_timeout(Some(Duration::from_millis(ms.max(100))))
            .ok();
    }
    loop {
        let frame = match read_frame_patient(shared, &mut stream) {
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                // The frame budget tripped: answer with a typed 408 so
                // the peer knows why, then close (the stream is no
                // longer frame-aligned).
                ServerMetrics::bump(&shared.metrics.timeouts);
                let reply = protocol::error_response(
                    CODE_TIMEOUT,
                    "frame did not complete within the connection timeout",
                    None,
                );
                let _ = protocol::write_json(&mut stream, &reply);
                return Ok(());
            }
            other => other?,
        };
        let frame = match frame {
            None | Some(FrameRead::Closed) => return Ok(()),
            Some(FrameRead::Oversized(len)) => {
                ServerMetrics::bump(&shared.metrics.oversized);
                let reply = protocol::error_response(
                    CODE_OVERSIZED,
                    &format!(
                        "frame of {len} bytes exceeds the limit of {}",
                        shared.opts.max_frame_bytes
                    ),
                    None,
                );
                protocol::write_json(&mut stream, &reply)?;
                continue;
            }
            Some(FrameRead::Frame(payload)) => payload,
        };
        let request = match protocol::parse_request(&frame) {
            Ok(r) => r,
            Err(e) => {
                ServerMetrics::bump(if e.code == protocol::CODE_MALFORMED {
                    &shared.metrics.malformed
                } else {
                    &shared.metrics.invalid
                });
                let reply = protocol::error_response(e.code, &e.message, None);
                protocol::write_json(&mut stream, &reply)?;
                continue;
            }
        };
        ServerMetrics::bump(&shared.metrics.requests_total);
        let reply = match request {
            Request::Ping => Json::obj(vec![
                ("code", Json::U64(CODE_OK as u64)),
                ("op", Json::str("pong")),
            ]),
            Request::Metrics => Json::obj(vec![
                ("code", Json::U64(CODE_OK as u64)),
                (
                    "metrics",
                    shared
                        .metrics
                        .to_json(shared.opts.queue_capacity, shared.opts.cache_capacity),
                ),
            ]),
            Request::Health => {
                let ready = shared.ready() && !shared.shutting_down();
                Json::obj(vec![
                    ("code", Json::U64(CODE_OK as u64)),
                    (
                        "status",
                        Json::str(if ready { "ready" } else { "degraded" }),
                    ),
                    ("ready", Json::Bool(ready)),
                    (
                        "restarts",
                        Json::U64(shared.metrics.restarts.load(Ordering::Relaxed)),
                    ),
                    (
                        "recoveries",
                        Json::U64(shared.metrics.recoveries.load(Ordering::Relaxed)),
                    ),
                    ("dist", netalign_trace::dist::global().snapshot().to_json()),
                ])
            }
            Request::Crash => {
                if shared.opts.allow_crash_op {
                    // Chaos hook: die the way a SIGKILL would — no
                    // unwinding, no flushing, no reply.
                    std::process::abort();
                }
                ServerMetrics::bump(&shared.metrics.invalid);
                protocol::error_response(CODE_INVALID, "crash op requires --allow-crash-op", None)
            }
            Request::Shutdown => {
                begin_shutdown(shared);
                Json::obj(vec![
                    ("code", Json::U64(CODE_OK as u64)),
                    ("draining", Json::Bool(true)),
                ])
            }
            Request::Align(req) => admit_job(shared, &job_tx, Work::Align(req)),
            Request::AlignDelta(req) => admit_job(shared, &job_tx, Work::Delta(req)),
        };
        protocol::write_json(&mut stream, &reply)?;
    }
}

fn admit_job(shared: &Shared, job_tx: &SyncSender<Job>, work: Work) -> Json {
    let id = work.id().map(str::to_string);
    if shared.shutting_down() {
        ServerMetrics::bump(&shared.metrics.shutting_down);
        return protocol::error_response(
            CODE_SHUTTING_DOWN,
            "server is draining; no new work accepted",
            id.as_deref(),
        );
    }
    if !shared.ready() {
        // Boot recovery is still replaying the journal. Unlike the
        // drain 503 above, this one carries `retry_after_ms`: the
        // condition is transient and the client should come back.
        ServerMetrics::bump(&shared.metrics.shutting_down);
        return protocol::retry_response(
            CODE_SHUTTING_DOWN,
            "recovering durable state; retry shortly",
            RECOVERY_RETRY_MS,
            id.as_deref(),
        );
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        work,
        admitted: Instant::now(),
        reply: reply_tx,
    };
    match job_tx.try_send(job) {
        Ok(()) => {
            ServerMetrics::bump(&shared.metrics.queue_depth);
        }
        Err(TrySendError::Full(_)) => {
            ServerMetrics::bump(&shared.metrics.overload);
            return protocol::error_response(
                CODE_OVERLOAD,
                "admission queue is full; retry later",
                id.as_deref(),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            ServerMetrics::bump(&shared.metrics.shutting_down);
            return protocol::error_response(
                CODE_SHUTTING_DOWN,
                "solver has stopped",
                id.as_deref(),
            );
        }
    }
    // The solver always replies (panics are caught into a 500), so a
    // recv error means it died hard; surface that as internal.
    match reply_rx.recv() {
        Ok(reply) => reply,
        Err(_) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(CODE_INTERNAL, "solver terminated", id.as_deref())
        }
    }
}

// ---------------------------------------------------------------------
// Solver thread
// ---------------------------------------------------------------------

/// Open the state directory, replay the journal into a fresh cache,
/// and publish the recovery accounting. Runs on the solver thread
/// before the first job; align work arriving earlier is parried with
/// a retryable 503 by `admit_job`.
fn recover_durable(shared: &Shared, cache: &mut EngineCache) -> Option<DurableStore> {
    let dir = shared.opts.state_dir.as_deref()?;
    let (store, report, entries) = match DurableStore::open(dir, shared.opts.journal_max_bytes) {
        Ok(opened) => opened,
        Err(e) => {
            // Serving beats durability: fall back to in-memory mode
            // rather than refusing to boot.
            eprintln!("netalignd: state dir {} unusable: {e}", dir.display());
            ServerMetrics::bump(&shared.metrics.spill_write_errors);
            return None;
        }
    };
    let m = &shared.metrics;
    if report.journal_replayed > 0 {
        ServerMetrics::bump(&m.recoveries);
    }
    m.journal_replayed
        .fetch_add(report.journal_replayed, Ordering::Relaxed);
    m.journal_torn_discarded
        .fetch_add(report.journal_torn_discarded, Ordering::Relaxed);
    m.spill_load_errors
        .fetch_add(report.spill_load_errors, Ordering::Relaxed);
    for entry in entries {
        cache.insert(
            entry.fingerprint,
            entry.method,
            entry.problem,
            entry.config,
            Vec::new(),
        );
        if let Some(cached) = cache.peek_mut(entry.fingerprint) {
            cached.trajectory = entry.trajectory;
        }
    }
    m.cache_entries.store(cache.len() as u64, Ordering::Relaxed);
    Some(store)
}

fn solver_loop(shared: Arc<Shared>, job_rx: Receiver<Job>) {
    let pool = shared.opts.threads.map(|n| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build solver pool")
    });
    let mut cache = EngineCache::new(shared.opts.cache_capacity);
    let mut durable = recover_durable(&shared, &mut cache);
    shared.ready.store(true, Ordering::Release);
    loop {
        let job = match job_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                // The queue is empty right now; if we are draining,
                // every admitted job has been answered — stop.
                if shared.shutting_down() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let reply = match &pool {
            Some(pool) => pool.install(|| solve_one(&shared, &mut cache, &mut durable, &job)),
            None => solve_one(&shared, &mut cache, &mut durable, &job),
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared
            .metrics
            .service_latency
            .record(job.admitted.elapsed());
        if faults::kill_due(KILL_REPLY) {
            // Crash with the work fully done but the answer unsent:
            // the client must see a clean error or reconnect, never a
            // half frame.
            std::process::abort();
        }
        let _ = job.reply.send(reply);
    }
}

fn solve_one(
    shared: &Shared,
    cache: &mut EngineCache,
    durable: &mut Option<DurableStore>,
    job: &Job,
) -> Json {
    if faults::kill_due(KILL_SOLVE) {
        // Crash with the job admitted but untouched: any journaled
        // `begin` stays uncommitted and recovery must discard it.
        std::process::abort();
    }
    let queue_wait = job.admitted.elapsed();
    let solved = catch_unwind(AssertUnwindSafe(|| match &job.work {
        Work::Align(req) => run_aligned(shared, cache, durable, req, queue_wait),
        Work::Delta(req) => run_delta(shared, cache, durable, req, queue_wait),
    }));
    match solved {
        Ok(reply) => reply,
        Err(_) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(
                CODE_INTERNAL,
                "solver panicked on this request; the server keeps serving",
                job.work.id(),
            )
        }
    }
}

fn run_aligned(
    shared: &Shared,
    cache: &mut EngineCache,
    durable: &mut Option<DurableStore>,
    req: &AlignRequest,
    queue_wait: Duration,
) -> Json {
    let fp = req.fingerprint;
    // The solve clock starts before the cache probe so a cold serve's
    // dominant cost — building the problem, squares matrix included —
    // shows up in solve_ms and the warm/cold histograms.
    let solve_start = Instant::now();

    // Cache probe. A miss pays the full problem build (squares matrix
    // included) and caches it; a hit reuses problem + warm engines.
    let hit = cache.get_mut(fp).is_some();
    if hit {
        ServerMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServerMetrics::bump(&shared.metrics.cache_misses);
        let problem = NetAlignProblem::new(req.a.clone(), req.b.clone(), req.l.clone());
        if cache
            .insert(fp, req.method, problem, req.config, Vec::new())
            .is_some()
        {
            ServerMetrics::bump(&shared.metrics.cache_evictions);
        }
    }
    shared
        .metrics
        .cache_entries
        .store(cache.len() as u64, Ordering::Relaxed);

    let entry = cache.peek_mut(fp).expect("entry just probed/inserted");
    let warm = hit && !req.cold && !entry.engines.is_empty();
    let mut engines = std::mem::take(&mut entry.engines);
    if req.cold {
        // The gated reset path: a forced-cold serve must replay the
        // cold solve bit-exactly (pinned by the engine-cache tests).
        for e in &mut engines {
            e.reset();
        }
    }

    let mut harness = RunHarness::new();
    if let Some(deadline_ms) = req.deadline_ms {
        // The SLO covers queue wait too: hand the solver whatever is
        // left (floor 1ms — the harness then returns best-so-far).
        let remaining = deadline_ms
            .saturating_sub(queue_wait.as_millis() as u64)
            .max(1);
        harness = harness.with_time_budget(TimeBudget::from_deadline_ms(remaining));
    }
    if let Some(watchdog_ms) = shared.opts.watchdog_ms {
        harness = harness.with_watchdog(Duration::from_millis(watchdog_ms));
    }

    // A recorded run captures the BP trajectory as a delta base; it
    // runs uninterrupted (the recording must be deterministic), so the
    // deadline/watchdog budget does not apply to it.
    let mut recorded = false;
    if req.record {
        if let Some(store) = durable.as_mut() {
            // Journal intent before the solve: a crash anywhere past
            // this point leaves a begin with no commit, which recovery
            // discards — never a half-recorded base.
            if let Err(e) = store.begin_record(fp) {
                ServerMetrics::bump(&shared.metrics.spill_write_errors);
                eprintln!("netalignd: journal begin for {fp:016x} failed: {e}");
            }
        }
    }
    let run = match (req.method, req.record) {
        (Method::Bp, true) => {
            match harness.run_bp_recorded(&entry.problem, &entry.config, engines) {
                Ok((outcome, trajectory, released)) => {
                    entry.trajectory = Some(trajectory);
                    recorded = true;
                    Ok((outcome, released))
                }
                Err(e) => Err(e),
            }
        }
        (Method::Bp, false) => harness.run_bp_warm(&entry.problem, &entry.config, engines),
        (Method::Mr, _) => harness.run_mr_warm(&entry.problem, &entry.config, engines),
    };
    let solve = solve_start.elapsed();

    match run {
        Ok((outcome, released)) => {
            entry.engines = released;
            if recorded {
                if let Some(store) = durable.as_mut() {
                    // Spill first, commit second: a commit in the
                    // journal is a promise the spill file is durable.
                    let persisted = store
                        .spill(
                            fp,
                            req.method,
                            &entry.problem,
                            &entry.config,
                            entry.trajectory.as_ref(),
                        )
                        .and_then(|()| store.commit_record(fp).map_err(|e| e.to_string()));
                    if let Err(e) = persisted {
                        // Served but not durable: the reply still goes
                        // out, the entry just won't survive a crash.
                        ServerMetrics::bump(&shared.metrics.spill_write_errors);
                        eprintln!("netalignd: recorded base {fp:016x} not durable: {e}");
                    }
                }
            }
            record_outcome(shared, &outcome, warm, solve);
            protocol::align_response(
                req,
                &outcome,
                warm,
                recorded,
                queue_wait.as_secs_f64() * 1e3,
                solve.as_secs_f64() * 1e3,
            )
        }
        Err(e) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(
                CODE_INTERNAL,
                &format!("harness error: {e}"),
                req.id.as_deref(),
            )
        }
    }
}

/// Serve an `align_delta`: replay the recorded base against the edge
/// delta, patch the cached entry in place, and re-key it to the
/// patched problem's fingerprint. Every failure a client can cause —
/// unknown base, unrecorded base, semantically invalid delta — is a
/// typed 422 that leaves the cached base intact, so the client can
/// fall back to a full recorded `align`.
fn run_delta(
    shared: &Shared,
    cache: &mut EngineCache,
    durable: &mut Option<DurableStore>,
    req: &DeltaRequest,
    queue_wait: Duration,
) -> Json {
    let reject = |shared: &Shared, msg: &str| {
        ServerMetrics::bump(&shared.metrics.invalid);
        ServerMetrics::bump(&shared.metrics.delta_rejected);
        protocol::error_response(CODE_INVALID, msg, req.id.as_deref())
    };
    let solve_start = Instant::now();
    let replayed = {
        let Some(entry) = cache.get_mut(req.base) else {
            ServerMetrics::bump(&shared.metrics.cache_misses);
            return reject(
                shared,
                "unknown base fingerprint; re-align with record:true",
            );
        };
        ServerMetrics::bump(&shared.metrics.cache_hits);
        if entry.method != Method::Bp {
            return reject(shared, "delta re-alignment requires a bp base");
        }
        let Some(mut trajectory) = entry.trajectory.take() else {
            return reject(
                shared,
                "base fingerprint was not recorded; re-align with record:true",
            );
        };
        if let Some(store) = durable.as_mut() {
            // Same discipline as the record path: intent first, so a
            // crash mid-replay leaves the committed base untouched on
            // disk and an uncommitted begin recovery discards.
            if let Err(e) = store.begin_delta(req.base) {
                ServerMetrics::bump(&shared.metrics.spill_write_errors);
                eprintln!(
                    "netalignd: journal begin for delta {:016x} failed: {e}",
                    req.base
                );
            }
        }
        let engines = std::mem::take(&mut entry.engines);
        match core_delta::replay_bp(
            &entry.problem,
            &entry.config,
            &mut trajectory,
            &req.delta,
            engines,
        ) {
            Ok(out) => {
                entry.problem = out.problem;
                entry.trajectory = Some(trajectory);
                entry.engines = out.engines;
                let new_fp = problem_fingerprint(
                    &entry.problem.a,
                    &entry.problem.b,
                    &entry.problem.l,
                    Method::Bp,
                    &entry.config,
                );
                let outcome = AlignOutcome::completed(out.result, entry.config.iterations);
                Ok((new_fp, outcome, out.stats))
            }
            Err(e) => {
                // Replay validates and patches before touching the
                // trajectory, so the base stays replayable; only the
                // warm engines are lost (rebuilt cold next run).
                entry.trajectory = Some(trajectory);
                Err(e)
            }
        }
    };
    let solve = solve_start.elapsed();
    match replayed {
        Ok((new_fp, outcome, stats)) => {
            // The entry now holds the patched problem: it answers to
            // the patched graphs' fingerprint, exactly what a client
            // cold-aligning those graphs would compute.
            cache.rekey(req.base, new_fp);
            if let Some(store) = durable.as_mut() {
                let persisted = match cache.peek_mut(new_fp) {
                    Some(entry) => store
                        .spill(
                            new_fp,
                            Method::Bp,
                            &entry.problem,
                            &entry.config,
                            entry.trajectory.as_ref(),
                        )
                        .and_then(|()| {
                            store
                                .commit_delta(req.base, new_fp)
                                .map_err(|e| e.to_string())
                        }),
                    None => Err("rekeyed entry vanished".to_string()),
                };
                match persisted {
                    Ok(()) => store.remove_spill(req.base),
                    Err(e) => {
                        ServerMetrics::bump(&shared.metrics.spill_write_errors);
                        eprintln!("netalignd: patched base {new_fp:016x} not durable: {e}");
                    }
                }
            }
            ServerMetrics::bump(&shared.metrics.delta_served);
            shared
                .metrics
                .delta_reused_iterations
                .fetch_add(stats.delta_reused_iterations as u64, Ordering::Relaxed);
            record_outcome(shared, &outcome, true, solve);
            protocol::delta_response(
                req,
                new_fp,
                &outcome,
                &stats,
                queue_wait.as_secs_f64() * 1e3,
                solve.as_secs_f64() * 1e3,
            )
        }
        Err(e) => reject(shared, &format!("delta rejected: {e}")),
    }
}

fn record_outcome(shared: &Shared, outcome: &AlignOutcome, warm: bool, solve: Duration) {
    ServerMetrics::bump(&shared.metrics.align_ok);
    if warm {
        shared.metrics.solve_warm.record(solve);
    } else {
        shared.metrics.solve_cold.record(solve);
    }
    let m = &outcome.result.trace.matcher;
    shared
        .metrics
        .matcher_warm_hits
        .fetch_add(m.warm_hits, Ordering::Relaxed);
    shared
        .metrics
        .matcher_reseeded
        .fetch_add(m.reseeded_vertices, Ordering::Relaxed);
    if outcome.completion == Completion::DeadlineBestSoFar {
        ServerMetrics::bump(&shared.metrics.deadline_best_so_far);
    }
}
