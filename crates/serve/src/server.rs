//! `netalignd` runtime: blocking accept loop + per-connection framing
//! threads + ONE solver thread over a bounded admission queue.
//!
//! The solver stays single-threaded at the *request* level even though
//! cancellation no longer forces it to be: `netalign_trace::cancel`
//! keys its token registry on the runtime's per-thread cancel scope,
//! so concurrent harness runs in one process no longer observe each
//! other's deadlines. What still wants a single owner is the engine
//! cache — `align_delta` patches entries in place and each run
//! borrows an entry's warm engines exclusively, which one solver
//! thread gets for free with no locking or entry pinning.
//! Parallelism lives where the paper puts it — inside each solve, on
//! the persistent worker pool — and at the service edge, where
//! connection threads parse/validate/reply concurrently. Concurrent
//! requests therefore queue at admission: a bounded `sync_channel`
//! whose overflow is a typed 429, never an unbounded buildup.
//!
//! Shutdown drains: the flag stops new admissions (503) and unblocks
//! the accept loop; the solver keeps answering every job already
//! admitted, then exits; connection threads notice the flag at their
//! next read-timeout tick and close.

use crate::cache::EngineCache;
use crate::fingerprint::{problem_fingerprint, Method};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    self, AlignRequest, DeltaRequest, FrameRead, Request, CODE_INTERNAL, CODE_INVALID, CODE_OK,
    CODE_OVERLOAD, CODE_OVERSIZED, CODE_SHUTTING_DOWN,
};
use netalign_core::config::TimeBudget;
use netalign_core::delta as core_delta;
use netalign_core::harness::{AlignOutcome, Completion, RunHarness};
use netalign_core::problem::NetAlignProblem;
use netalign_trace::Json;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:7464` (`:0` for ephemeral).
    pub addr: String,
    /// Problems kept warm in the engine cache.
    pub cache_capacity: usize,
    /// Admission queue bound; overflow is a typed 429.
    pub queue_capacity: usize,
    /// Largest accepted request frame in bytes.
    pub max_frame_bytes: u32,
    /// Watchdog stall budget applied to every solve (`None` = off).
    pub watchdog_ms: Option<u64>,
    /// Worker threads for the solve pool (`None` = the global pool).
    pub threads: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 8,
            queue_capacity: 64,
            max_frame_bytes: 16 << 20,
            watchdog_ms: Some(30_000),
            threads: None,
        }
    }
}

/// Work admitted to the solver.
enum Work {
    /// Full align (optionally recording a delta base).
    Align(Box<AlignRequest>),
    /// Delta re-align of a recorded cached base.
    Delta(Box<DeltaRequest>),
}

impl Work {
    fn id(&self) -> Option<&str> {
        match self {
            Work::Align(r) => r.id.as_deref(),
            Work::Delta(r) => r.id.as_deref(),
        }
    }
}

/// One admitted request en route to the solver.
struct Job {
    work: Work,
    admitted: Instant,
    reply: Sender<Json>,
}

struct Shared {
    opts: ServerOptions,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`shutdown`](Self::shutdown) or send the `shutdown` op.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    solver_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind and start serving. Returns once the listener is live; the
    /// actual bound address (ephemeral ports resolved) is
    /// [`addr`](Self::addr).
    pub fn start(opts: ServerOptions) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            opts,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            addr,
        });
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.opts.queue_capacity);

        let solver_shared = shared.clone();
        let solver_thread = std::thread::Builder::new()
            .name("netalignd-solver".into())
            .spawn(move || solver_loop(solver_shared, job_rx))
            .expect("spawn solver thread");

        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("netalignd-accept".into())
            .spawn(move || accept_loop(accept_shared, listener, job_tx))
            .expect("spawn accept thread");

        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
            solver_thread: Some(solver_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Trigger a drain-and-stop from inside the process (equivalent to
    /// the `shutdown` op).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Block until the server has fully drained and stopped.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.solver_thread.take() {
            let _ = t.join();
        }
        // Give connection threads (detached) a bounded grace period to
        // flush their final replies before the caller exits.
        let grace = Instant::now();
        while self.shared.metrics.connections.load(Ordering::Relaxed) > 0
            && grace.elapsed() < Duration::from_secs(2)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn begin_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(500));
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, job_tx: SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = shared.clone();
        let conn_tx = job_tx.clone();
        let _ = std::thread::Builder::new()
            .name("netalignd-conn".into())
            .spawn(move || {
                ServerMetrics::bump(&conn_shared.metrics.connections);
                let _ = handle_connection(&conn_shared, stream, conn_tx);
                conn_shared
                    .metrics
                    .connections
                    .fetch_sub(1, Ordering::Relaxed);
            });
    }
    // Dropping the last sender lets the solver exit as soon as the
    // queue is drained.
    drop(job_tx);
}

/// `read_frame` that tolerates read timeouts: a timeout checks the
/// shutdown flag and otherwise keeps reading the same frame, so a slow
/// sender is never desynced.
fn read_frame_patient(
    shared: &Shared,
    stream: &mut TcpStream,
) -> std::io::Result<Option<FrameRead>> {
    struct Patient<'a> {
        shared: &'a Shared,
        stream: &'a mut TcpStream,
        started: bool,
        interrupted: bool,
    }
    impl Read for Patient<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.stream.read(buf) {
                    Ok(n) => {
                        self.started = true;
                        return Ok(n);
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Between frames a shutdown closes the
                        // connection; mid-frame we keep waiting so a
                        // half-read frame still completes.
                        if self.shared.shutting_down() && !self.started {
                            self.interrupted = true;
                            return Ok(0);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let mut patient = Patient {
        shared,
        stream,
        started: false,
        interrupted: false,
    };
    let frame = protocol::read_frame(&mut patient, shared.opts.max_frame_bytes);
    if patient.interrupted {
        return Ok(None);
    }
    frame.map(Some)
}

fn handle_connection(
    shared: &Shared,
    mut stream: TcpStream,
    job_tx: SyncSender<Job>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    loop {
        let frame = match read_frame_patient(shared, &mut stream)? {
            None | Some(FrameRead::Closed) => return Ok(()),
            Some(FrameRead::Oversized(len)) => {
                ServerMetrics::bump(&shared.metrics.oversized);
                let reply = protocol::error_response(
                    CODE_OVERSIZED,
                    &format!(
                        "frame of {len} bytes exceeds the limit of {}",
                        shared.opts.max_frame_bytes
                    ),
                    None,
                );
                protocol::write_json(&mut stream, &reply)?;
                continue;
            }
            Some(FrameRead::Frame(payload)) => payload,
        };
        let request = match protocol::parse_request(&frame) {
            Ok(r) => r,
            Err(e) => {
                ServerMetrics::bump(if e.code == protocol::CODE_MALFORMED {
                    &shared.metrics.malformed
                } else {
                    &shared.metrics.invalid
                });
                let reply = protocol::error_response(e.code, &e.message, None);
                protocol::write_json(&mut stream, &reply)?;
                continue;
            }
        };
        ServerMetrics::bump(&shared.metrics.requests_total);
        let reply = match request {
            Request::Ping => Json::obj(vec![
                ("code", Json::U64(CODE_OK as u64)),
                ("op", Json::str("pong")),
            ]),
            Request::Metrics => Json::obj(vec![
                ("code", Json::U64(CODE_OK as u64)),
                (
                    "metrics",
                    shared
                        .metrics
                        .to_json(shared.opts.queue_capacity, shared.opts.cache_capacity),
                ),
            ]),
            Request::Shutdown => {
                begin_shutdown(shared);
                Json::obj(vec![
                    ("code", Json::U64(CODE_OK as u64)),
                    ("draining", Json::Bool(true)),
                ])
            }
            Request::Align(req) => admit_job(shared, &job_tx, Work::Align(req)),
            Request::AlignDelta(req) => admit_job(shared, &job_tx, Work::Delta(req)),
        };
        protocol::write_json(&mut stream, &reply)?;
    }
}

fn admit_job(shared: &Shared, job_tx: &SyncSender<Job>, work: Work) -> Json {
    let id = work.id().map(str::to_string);
    if shared.shutting_down() {
        ServerMetrics::bump(&shared.metrics.shutting_down);
        return protocol::error_response(
            CODE_SHUTTING_DOWN,
            "server is draining; no new work accepted",
            id.as_deref(),
        );
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        work,
        admitted: Instant::now(),
        reply: reply_tx,
    };
    match job_tx.try_send(job) {
        Ok(()) => {
            ServerMetrics::bump(&shared.metrics.queue_depth);
        }
        Err(TrySendError::Full(_)) => {
            ServerMetrics::bump(&shared.metrics.overload);
            return protocol::error_response(
                CODE_OVERLOAD,
                "admission queue is full; retry later",
                id.as_deref(),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            ServerMetrics::bump(&shared.metrics.shutting_down);
            return protocol::error_response(
                CODE_SHUTTING_DOWN,
                "solver has stopped",
                id.as_deref(),
            );
        }
    }
    // The solver always replies (panics are caught into a 500), so a
    // recv error means it died hard; surface that as internal.
    match reply_rx.recv() {
        Ok(reply) => reply,
        Err(_) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(CODE_INTERNAL, "solver terminated", id.as_deref())
        }
    }
}

// ---------------------------------------------------------------------
// Solver thread
// ---------------------------------------------------------------------

fn solver_loop(shared: Arc<Shared>, job_rx: Receiver<Job>) {
    let pool = shared.opts.threads.map(|n| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build solver pool")
    });
    let mut cache = EngineCache::new(shared.opts.cache_capacity);
    loop {
        let job = match job_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                // The queue is empty right now; if we are draining,
                // every admitted job has been answered — stop.
                if shared.shutting_down() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let reply = match &pool {
            Some(pool) => pool.install(|| solve_one(&shared, &mut cache, &job)),
            None => solve_one(&shared, &mut cache, &job),
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared
            .metrics
            .service_latency
            .record(job.admitted.elapsed());
        let _ = job.reply.send(reply);
    }
}

fn solve_one(shared: &Shared, cache: &mut EngineCache, job: &Job) -> Json {
    let queue_wait = job.admitted.elapsed();
    let solved = catch_unwind(AssertUnwindSafe(|| match &job.work {
        Work::Align(req) => run_aligned(shared, cache, req, queue_wait),
        Work::Delta(req) => run_delta(shared, cache, req, queue_wait),
    }));
    match solved {
        Ok(reply) => reply,
        Err(_) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(
                CODE_INTERNAL,
                "solver panicked on this request; the server keeps serving",
                job.work.id(),
            )
        }
    }
}

fn run_aligned(
    shared: &Shared,
    cache: &mut EngineCache,
    req: &AlignRequest,
    queue_wait: Duration,
) -> Json {
    let fp = req.fingerprint;
    // The solve clock starts before the cache probe so a cold serve's
    // dominant cost — building the problem, squares matrix included —
    // shows up in solve_ms and the warm/cold histograms.
    let solve_start = Instant::now();

    // Cache probe. A miss pays the full problem build (squares matrix
    // included) and caches it; a hit reuses problem + warm engines.
    let hit = cache.get_mut(fp).is_some();
    if hit {
        ServerMetrics::bump(&shared.metrics.cache_hits);
    } else {
        ServerMetrics::bump(&shared.metrics.cache_misses);
        let problem = NetAlignProblem::new(req.a.clone(), req.b.clone(), req.l.clone());
        if cache
            .insert(fp, req.method, problem, req.config, Vec::new())
            .is_some()
        {
            ServerMetrics::bump(&shared.metrics.cache_evictions);
        }
    }
    shared
        .metrics
        .cache_entries
        .store(cache.len() as u64, Ordering::Relaxed);

    let entry = cache.peek_mut(fp).expect("entry just probed/inserted");
    let warm = hit && !req.cold && !entry.engines.is_empty();
    let mut engines = std::mem::take(&mut entry.engines);
    if req.cold {
        // The gated reset path: a forced-cold serve must replay the
        // cold solve bit-exactly (pinned by the engine-cache tests).
        for e in &mut engines {
            e.reset();
        }
    }

    let mut harness = RunHarness::new();
    if let Some(deadline_ms) = req.deadline_ms {
        // The SLO covers queue wait too: hand the solver whatever is
        // left (floor 1ms — the harness then returns best-so-far).
        let remaining = deadline_ms
            .saturating_sub(queue_wait.as_millis() as u64)
            .max(1);
        harness = harness.with_time_budget(TimeBudget::from_deadline_ms(remaining));
    }
    if let Some(watchdog_ms) = shared.opts.watchdog_ms {
        harness = harness.with_watchdog(Duration::from_millis(watchdog_ms));
    }

    // A recorded run captures the BP trajectory as a delta base; it
    // runs uninterrupted (the recording must be deterministic), so the
    // deadline/watchdog budget does not apply to it.
    let mut recorded = false;
    let run = match (req.method, req.record) {
        (Method::Bp, true) => {
            match harness.run_bp_recorded(&entry.problem, &entry.config, engines) {
                Ok((outcome, trajectory, released)) => {
                    entry.trajectory = Some(trajectory);
                    recorded = true;
                    Ok((outcome, released))
                }
                Err(e) => Err(e),
            }
        }
        (Method::Bp, false) => harness.run_bp_warm(&entry.problem, &entry.config, engines),
        (Method::Mr, _) => harness.run_mr_warm(&entry.problem, &entry.config, engines),
    };
    let solve = solve_start.elapsed();

    match run {
        Ok((outcome, released)) => {
            entry.engines = released;
            record_outcome(shared, &outcome, warm, solve);
            protocol::align_response(
                req,
                &outcome,
                warm,
                recorded,
                queue_wait.as_secs_f64() * 1e3,
                solve.as_secs_f64() * 1e3,
            )
        }
        Err(e) => {
            ServerMetrics::bump(&shared.metrics.internal);
            protocol::error_response(
                CODE_INTERNAL,
                &format!("harness error: {e}"),
                req.id.as_deref(),
            )
        }
    }
}

/// Serve an `align_delta`: replay the recorded base against the edge
/// delta, patch the cached entry in place, and re-key it to the
/// patched problem's fingerprint. Every failure a client can cause —
/// unknown base, unrecorded base, semantically invalid delta — is a
/// typed 422 that leaves the cached base intact, so the client can
/// fall back to a full recorded `align`.
fn run_delta(
    shared: &Shared,
    cache: &mut EngineCache,
    req: &DeltaRequest,
    queue_wait: Duration,
) -> Json {
    let reject = |shared: &Shared, msg: &str| {
        ServerMetrics::bump(&shared.metrics.invalid);
        ServerMetrics::bump(&shared.metrics.delta_rejected);
        protocol::error_response(CODE_INVALID, msg, req.id.as_deref())
    };
    let solve_start = Instant::now();
    let replayed = {
        let Some(entry) = cache.get_mut(req.base) else {
            ServerMetrics::bump(&shared.metrics.cache_misses);
            return reject(
                shared,
                "unknown base fingerprint; re-align with record:true",
            );
        };
        ServerMetrics::bump(&shared.metrics.cache_hits);
        if entry.method != Method::Bp {
            return reject(shared, "delta re-alignment requires a bp base");
        }
        let Some(mut trajectory) = entry.trajectory.take() else {
            return reject(
                shared,
                "base fingerprint was not recorded; re-align with record:true",
            );
        };
        let engines = std::mem::take(&mut entry.engines);
        match core_delta::replay_bp(
            &entry.problem,
            &entry.config,
            &mut trajectory,
            &req.delta,
            engines,
        ) {
            Ok(out) => {
                entry.problem = out.problem;
                entry.trajectory = Some(trajectory);
                entry.engines = out.engines;
                let new_fp = problem_fingerprint(
                    &entry.problem.a,
                    &entry.problem.b,
                    &entry.problem.l,
                    Method::Bp,
                    &entry.config,
                );
                let outcome = AlignOutcome::completed(out.result, entry.config.iterations);
                Ok((new_fp, outcome, out.stats))
            }
            Err(e) => {
                // Replay validates and patches before touching the
                // trajectory, so the base stays replayable; only the
                // warm engines are lost (rebuilt cold next run).
                entry.trajectory = Some(trajectory);
                Err(e)
            }
        }
    };
    let solve = solve_start.elapsed();
    match replayed {
        Ok((new_fp, outcome, stats)) => {
            // The entry now holds the patched problem: it answers to
            // the patched graphs' fingerprint, exactly what a client
            // cold-aligning those graphs would compute.
            cache.rekey(req.base, new_fp);
            ServerMetrics::bump(&shared.metrics.delta_served);
            shared
                .metrics
                .delta_reused_iterations
                .fetch_add(stats.delta_reused_iterations as u64, Ordering::Relaxed);
            record_outcome(shared, &outcome, true, solve);
            protocol::delta_response(
                req,
                new_fp,
                &outcome,
                &stats,
                queue_wait.as_secs_f64() * 1e3,
                solve.as_secs_f64() * 1e3,
            )
        }
        Err(e) => reject(shared, &format!("delta rejected: {e}")),
    }
}

fn record_outcome(shared: &Shared, outcome: &AlignOutcome, warm: bool, solve: Duration) {
    ServerMetrics::bump(&shared.metrics.align_ok);
    if warm {
        shared.metrics.solve_warm.record(solve);
    } else {
        shared.metrics.solve_cold.record(solve);
    }
    let m = &outcome.result.trace.matcher;
    shared
        .metrics
        .matcher_warm_hits
        .fetch_add(m.warm_hits, Ordering::Relaxed);
    shared
        .metrics
        .matcher_reseeded
        .fetch_add(m.reseeded_vertices, Ordering::Relaxed);
    if outcome.completion == Completion::DeadlineBestSoFar {
        ServerMetrics::bump(&shared.metrics.deadline_best_so_far);
    }
}
