//! Server-wide observability: request/error counters, cache and queue
//! gauges, latency histograms (service-level, plus warm/cold solve),
//! and aggregated matcher counters — exported as one JSON document by
//! the `metrics` op.

use netalign_trace::metrics::LatencyHistogram;
use netalign_trace::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// All counters live behind relaxed atomics: every thread records,
/// the `metrics` op snapshots.
pub struct ServerMetrics {
    started: Instant,
    /// Frames that parsed into some request.
    pub requests_total: AtomicU64,
    /// 200 align replies.
    pub align_ok: AtomicU64,
    /// 400 replies.
    pub malformed: AtomicU64,
    /// 413 replies.
    pub oversized: AtomicU64,
    /// 422 replies.
    pub invalid: AtomicU64,
    /// 429 replies.
    pub overload: AtomicU64,
    /// 500 replies.
    pub internal: AtomicU64,
    /// 503 replies.
    pub shutting_down: AtomicU64,
    /// Engine-cache hits (warm serves).
    pub cache_hits: AtomicU64,
    /// Engine-cache misses (cold builds).
    pub cache_misses: AtomicU64,
    /// Engine-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Problems currently cached.
    pub cache_entries: AtomicU64,
    /// Requests currently admitted but not finished.
    pub queue_depth: AtomicU64,
    /// Connections currently open.
    pub connections: AtomicU64,
    /// Matcher warm hits summed over all align runs.
    pub matcher_warm_hits: AtomicU64,
    /// Matcher reseeded vertices summed over all align runs.
    pub matcher_reseeded: AtomicU64,
    /// Runs that ended `deadline-best-so-far`.
    pub deadline_best_so_far: AtomicU64,
    /// 200 `align_delta` replies.
    pub delta_served: AtomicU64,
    /// 422 `align_delta` replies (unknown/unrecorded base, bad delta).
    pub delta_rejected: AtomicU64,
    /// Iterations replayed through the sparse delta path, summed.
    pub delta_reused_iterations: AtomicU64,
    /// 408 replies (per-connection frame timeout tripped).
    pub timeouts: AtomicU64,
    /// Supervised restarts this process has behind it (seeded from the
    /// supervisor via `NETALIGND_RESTARTS`).
    pub restarts: AtomicU64,
    /// Boot-time journal recoveries that replayed committed state.
    pub recoveries: AtomicU64,
    /// Committed journal operations replayed at boot.
    pub journal_replayed: AtomicU64,
    /// Torn/corrupt journal tails discarded at boot.
    pub journal_torn_discarded: AtomicU64,
    /// Spill files that failed to write (entry served but not durable).
    pub spill_write_errors: AtomicU64,
    /// Spill files that failed to load at boot (entry dropped).
    pub spill_load_errors: AtomicU64,
    /// End-to-end service latency (admission to reply built).
    pub service_latency: LatencyHistogram,
    /// Solve latency of cache-hit (warm) requests.
    pub solve_warm: LatencyHistogram,
    /// Solve latency of cache-miss (cold) requests.
    pub solve_cold: LatencyHistogram,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Zeroed metrics, clock started now.
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            align_ok: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            overload: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            shutting_down: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache_entries: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            matcher_warm_hits: AtomicU64::new(0),
            matcher_reseeded: AtomicU64::new(0),
            deadline_best_so_far: AtomicU64::new(0),
            delta_served: AtomicU64::new(0),
            delta_rejected: AtomicU64::new(0),
            delta_reused_iterations: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            journal_replayed: AtomicU64::new(0),
            journal_torn_discarded: AtomicU64::new(0),
            spill_write_errors: AtomicU64::new(0),
            spill_load_errors: AtomicU64::new(0),
            service_latency: LatencyHistogram::new(),
            solve_warm: LatencyHistogram::new(),
            solve_cold: LatencyHistogram::new(),
        }
    }

    /// Increment a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Resident set size of this process in kilobytes (Linux; `None`
    /// elsewhere or when `/proc` is unavailable).
    pub fn vm_rss_kb() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }

    /// The full `/metrics`-style snapshot.
    pub fn to_json(&self, queue_capacity: usize, cache_capacity: usize) -> Json {
        let load = |c: &AtomicU64| Json::U64(c.load(Ordering::Relaxed));
        Json::obj(vec![
            (
                "uptime_ms",
                Json::U64(self.started.elapsed().as_millis() as u64),
            ),
            ("requests_total", load(&self.requests_total)),
            ("align_ok", load(&self.align_ok)),
            (
                "errors",
                Json::obj(vec![
                    ("malformed", load(&self.malformed)),
                    ("oversized", load(&self.oversized)),
                    ("invalid", load(&self.invalid)),
                    ("overload", load(&self.overload)),
                    ("internal", load(&self.internal)),
                    ("shutting_down", load(&self.shutting_down)),
                    ("timeouts", load(&self.timeouts)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", load(&self.cache_hits)),
                    ("misses", load(&self.cache_misses)),
                    ("evictions", load(&self.cache_evictions)),
                    ("entries", load(&self.cache_entries)),
                    ("capacity", Json::U64(cache_capacity as u64)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", load(&self.queue_depth)),
                    ("capacity", Json::U64(queue_capacity as u64)),
                ]),
            ),
            ("connections", load(&self.connections)),
            (
                "matcher",
                Json::obj(vec![
                    ("warm_hits", load(&self.matcher_warm_hits)),
                    ("reseeded_vertices", load(&self.matcher_reseeded)),
                ]),
            ),
            ("deadline_best_so_far", load(&self.deadline_best_so_far)),
            (
                "delta",
                Json::obj(vec![
                    ("served", load(&self.delta_served)),
                    ("rejected", load(&self.delta_rejected)),
                    ("reused_iterations", load(&self.delta_reused_iterations)),
                ]),
            ),
            (
                "durable",
                Json::obj(vec![
                    ("restarts", load(&self.restarts)),
                    ("recoveries", load(&self.recoveries)),
                    ("journal_replayed", load(&self.journal_replayed)),
                    ("journal_torn_discarded", load(&self.journal_torn_discarded)),
                    ("spill_write_errors", load(&self.spill_write_errors)),
                    ("spill_load_errors", load(&self.spill_load_errors)),
                ]),
            ),
            // Distributed-run counters are process-global (the
            // coordinator in `netalign_core::dist` bumps them); the
            // daemon surfaces them so a fleet scraping `metrics` sees
            // recovery activity without reading coordinator logs.
            ("dist", netalign_trace::dist::global().snapshot().to_json()),
            (
                "latency",
                Json::obj(vec![
                    ("service", self.service_latency.to_json()),
                    ("solve_warm", self.solve_warm.to_json()),
                    ("solve_cold", self.solve_cold.to_json()),
                ]),
            ),
            (
                "process",
                Json::obj(vec![(
                    "vm_rss_kb",
                    Self::vm_rss_kb().map_or(Json::Null, Json::U64),
                )]),
            ),
        ])
    }
}
