//! Minimal blocking client for the `netalignd` protocol — one frame
//! out, one frame back. Used by the black-box tests and `loadgen`.

use crate::json;
use crate::protocol::{read_frame, write_json, FrameRead};
use netalign_trace::Json;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection to a running `netalignd`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect, with a bounded connect timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Bound every subsequent read/write (`None` = block forever).
    /// The chaos tests set this so a hung server surfaces as a
    /// `WouldBlock`/`TimedOut` error instead of wedging the suite.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Send one request document and block for its reply.
    pub fn request(&mut self, doc: &Json) -> io::Result<Json> {
        write_json(&mut self.stream, doc)?;
        self.read_reply()
    }

    /// Send a raw payload (possibly not valid JSON) and block for the
    /// reply — lets tests exercise the malformed-frame path.
    pub fn request_raw(&mut self, payload: &[u8]) -> io::Result<Json> {
        crate::protocol::write_frame(&mut self.stream, payload)?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<Json> {
        match read_frame(&mut self.stream, u32::MAX)? {
            FrameRead::Frame(payload) => {
                let text = std::str::from_utf8(&payload).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "reply is not UTF-8")
                })?;
                json::parse(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            FrameRead::Closed => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            FrameRead::Oversized(_) => unreachable!("client has no frame limit"),
        }
    }
}

/// The response `code` field, or 0 if absent/ill-typed.
pub fn response_code(reply: &Json) -> u64 {
    reply.get("code").and_then(Json::as_u64).unwrap_or(0)
}
