//! Durable serving state: spill files + an operations journal.
//!
//! With `--state-dir` set, `netalignd` survives hard crashes with
//! *bit-identical* recovery. Two on-disk artifacts per directory:
//!
//! * **Spill files** (`spill-<fp>.nasp`) — one per recorded cache
//!   entry, holding everything a [`crate::cache::CacheEntry`] needs to
//!   answer `align_delta` again: the full [`AlignConfig`], the graphs
//!   `A`/`B`/`L`, and the recorded [`BpTrajectory`]. The squares
//!   matrix and the warm matcher engines are deliberately *not*
//!   spilled: `NetAlignProblem::new` rebuilds `S` bit-identically from
//!   the canonical graphs, and warm ≡ cold engine bit-identity (the
//!   engine-cache invariant) licenses rebooting with empty engine
//!   vectors. Same framing discipline as `NACP` checkpoints: magic,
//!   version, FNV-1a checksum over the payload, atomic
//!   tmp+fsync+rename+dir-fsync.
//!
//! * **The journal** (`journal.log`) — an append-only, per-record
//!   checksummed log of admitted `align --record` / `align_delta`
//!   operations. A `begin` record is appended at admission, a `commit`
//!   record (fsynced) once the spill file is durable; recovery replays
//!   commits only, so an entry is either fully restorable or invisible
//!   — never half-loaded. A torn or bit-flipped tail (the crash case
//!   the chaos suite injects at `journal-append`) is detected by the
//!   per-record checksum, counted, and truncated away so the journal
//!   stays appendable. When the file outgrows `max_journal_bytes` it
//!   is rotated: rewritten as one commit per live entry (atomic
//!   rename), and orphaned spill files are garbage-collected.
//!
//! The store is owned by the solver thread — like the engine cache it
//! mirrors, it needs no locking.

use crate::fingerprint::{problem_fingerprint, Method};
use netalign_core::checkpoint::{fnv1a64, PayloadReader, PayloadWriter};
use netalign_core::config::{AlignConfig, CheckpointPolicy, DampingKind};
use netalign_core::delta::BpTrajectory;
use netalign_core::problem::NetAlignProblem;
use netalign_graph::{BipartiteGraph, Graph, VertexId};
use netalign_matching::{MatcherKind, RoundingMatcher};
use netalign_trace::faults;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Spill-file magic (`NACP`'s sibling: NetAlign SPill).
const SPILL_MAGIC: [u8; 4] = *b"NASP";
/// Spill format version.
const SPILL_VERSION: u32 = 1;
/// Journal record magic (NetAlign JournaL).
const JOURNAL_MAGIC: [u8; 4] = *b"NAJL";
/// Fixed journal record header: magic + kind + seq + payload_len +
/// checksum.
const JOURNAL_HEADER_LEN: usize = 4 + 1 + 8 + 4 + 8;
/// Sanity cap on a journal record payload (real payloads are ≤ 17
/// bytes; anything bigger is damage, not data).
const JOURNAL_MAX_PAYLOAD: u32 = 1024;

/// Fault point: the commit append is half-written then the process
/// aborts — the deterministic torn-tail crash.
pub const KILL_JOURNAL_APPEND: &str = "journal-append";
/// Fault point: the spill temp file is fsynced but the process aborts
/// before the rename — a stale `.tmp` a restart must ignore.
pub const KILL_SPILL_RENAME: &str = "spill-rename";

const KIND_BEGIN: u8 = 0;
const KIND_COMMIT: u8 = 1;
const OP_RECORD: u8 = 0;
const OP_DELTA: u8 = 1;

/// One parsed journal record.
#[derive(Debug, PartialEq, Eq)]
enum JournalRecord {
    BeginRecord { fp: u64 },
    CommitRecord { fp: u64 },
    BeginDelta { base: u64 },
    CommitDelta { base: u64, new_fp: u64 },
}

/// One cache entry restored from a spill file.
pub struct RecoveredEntry {
    /// Problem fingerprint the entry answers to.
    pub fingerprint: u64,
    /// Aligner the entry was built for.
    pub method: Method,
    /// The rebuilt problem (squares matrix reconstructed, bit-identical
    /// to the one that was spilled).
    pub problem: NetAlignProblem,
    /// The run config.
    pub config: AlignConfig,
    /// The recorded trajectory, if the entry had one.
    pub trajectory: Option<BpTrajectory>,
}

/// What a [`DurableStore::open`] recovery found.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Committed operations replayed from the journal.
    pub journal_replayed: u64,
    /// Torn/corrupt journal tails discarded (0 or 1 per boot).
    pub journal_torn_discarded: u64,
    /// `begin` records with no matching `commit` (in-flight at crash).
    pub incomplete_discarded: u64,
    /// Live spill files that failed to load (corrupt, missing, or
    /// fingerprint drift); each is skipped, never half-loaded.
    pub spill_load_errors: u64,
    /// The fingerprints the journal committed, in commit order, before
    /// any spill loading — the exact prefix a damaged journal yields
    /// (the torn-tail proptest pins this down byte by byte).
    pub live_after_replay: Vec<u64>,
}

/// The solver thread's handle on the state directory.
pub struct DurableStore {
    dir: PathBuf,
    journal_path: PathBuf,
    journal: File,
    journal_bytes: u64,
    max_journal_bytes: u64,
    next_seq: u64,
    /// Live (committed, not superseded) fingerprints in commit order.
    live: Vec<u64>,
}

impl DurableStore {
    /// Open (creating if needed) the state directory, replay the
    /// journal, and load every live spill file. Returns the store with
    /// its append handle positioned past the last intact record, the
    /// recovery accounting, and the restored entries in commit order.
    pub fn open(
        dir: &Path,
        max_journal_bytes: u64,
    ) -> std::io::Result<(DurableStore, RecoveryReport, Vec<RecoveredEntry>)> {
        std::fs::create_dir_all(dir)?;
        let journal_path = dir.join("journal.log");
        let mut report = RecoveryReport::default();

        let bytes = match std::fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, good_len) = scan_journal(&bytes);
        if good_len < bytes.len() {
            report.journal_torn_discarded = 1;
            // Truncate the tail so subsequent appends land on a record
            // boundary and the next scan parses cleanly.
            let f = OpenOptions::new().write(true).open(&journal_path)?;
            f.set_len(good_len as u64)?;
            f.sync_all()?;
        }

        let mut live: Vec<u64> = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        for rec in &records {
            match *rec {
                JournalRecord::BeginRecord { fp } => pending.push(fp),
                JournalRecord::BeginDelta { base } => pending.push(base),
                JournalRecord::CommitRecord { fp } => {
                    report.journal_replayed += 1;
                    remove_first(&mut pending, fp);
                    if !live.contains(&fp) {
                        live.push(fp);
                    }
                }
                JournalRecord::CommitDelta { base, new_fp } => {
                    report.journal_replayed += 1;
                    remove_first(&mut pending, base);
                    live.retain(|&f| f != base);
                    if !live.contains(&new_fp) {
                        live.push(new_fp);
                    }
                }
            }
        }
        report.incomplete_discarded = pending.len() as u64;
        report.live_after_replay = live.clone();

        // Load spills for the live set; a failed load drops the entry
        // (it will be GC'd at the next rotation).
        let mut entries = Vec::new();
        let mut loaded: Vec<u64> = Vec::new();
        for &fp in &live {
            match load_spill(&spill_path(dir, fp), fp) {
                Ok(entry) => {
                    loaded.push(fp);
                    entries.push(entry);
                }
                Err(detail) => {
                    report.spill_load_errors += 1;
                    eprintln!("netalignd: dropping unrecoverable spill {fp:016x}: {detail}");
                }
            }
        }

        // Scrub stale temp files from interrupted spill renames.
        if let Ok(listing) = std::fs::read_dir(dir) {
            for f in listing.flatten() {
                if f.path().extension().is_some_and(|e| e == "tmp") {
                    let _ = std::fs::remove_file(f.path());
                }
            }
        }

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;
        let journal_bytes = journal.metadata()?.len();
        let store = DurableStore {
            dir: dir.to_path_buf(),
            journal_path,
            journal,
            journal_bytes,
            max_journal_bytes,
            next_seq: records.len() as u64 + 1,
            live: loaded,
        };
        Ok((store, report, entries))
    }

    /// Fingerprints currently committed and loadable.
    pub fn live(&self) -> &[u64] {
        &self.live
    }

    /// Journal an admitted `align --record` of `fp` (no fsync; an
    /// unflushed begin is an incomplete entry by definition).
    pub fn begin_record(&mut self, fp: u64) -> std::io::Result<()> {
        let mut p = PayloadWriter::new();
        p.put_u8(OP_RECORD);
        p.put_u64(fp);
        self.append(KIND_BEGIN, &p.into_bytes(), false)
    }

    /// Journal an admitted `align_delta` against `base`.
    pub fn begin_delta(&mut self, base: u64) -> std::io::Result<()> {
        let mut p = PayloadWriter::new();
        p.put_u8(OP_DELTA);
        p.put_u64(base);
        self.append(KIND_BEGIN, &p.into_bytes(), false)
    }

    /// Mark the recorded base `fp` complete: its spill file is durable
    /// and recovery must restore it. Fsyncs.
    pub fn commit_record(&mut self, fp: u64) -> std::io::Result<()> {
        let mut p = PayloadWriter::new();
        p.put_u8(OP_RECORD);
        p.put_u64(fp);
        self.append(KIND_COMMIT, &p.into_bytes(), true)?;
        if !self.live.contains(&fp) {
            self.live.push(fp);
        }
        self.maybe_rotate()
    }

    /// Mark a delta re-alignment complete: `base` is superseded by
    /// `new_fp` (whose spill file is durable). Fsyncs.
    pub fn commit_delta(&mut self, base: u64, new_fp: u64) -> std::io::Result<()> {
        let mut p = PayloadWriter::new();
        p.put_u8(OP_DELTA);
        p.put_u64(base);
        p.put_u64(new_fp);
        self.append(KIND_COMMIT, &p.into_bytes(), true)?;
        self.live.retain(|&f| f != base);
        if !self.live.contains(&new_fp) {
            self.live.push(new_fp);
        }
        self.maybe_rotate()
    }

    fn append(&mut self, kind: u8, payload: &[u8], sync: bool) -> std::io::Result<()> {
        let seq = self.next_seq;
        let bytes = encode_record(kind, seq, payload);
        if sync && faults::kill_due(KILL_JOURNAL_APPEND) {
            // Crash with exactly half the record on disk: the
            // deterministic torn tail the recovery path must detect,
            // count, and truncate.
            let half = &bytes[..bytes.len() / 2];
            let _ = self.journal.write_all(half);
            let _ = self.journal.sync_all();
            std::process::abort();
        }
        self.journal.write_all(&bytes)?;
        if sync {
            self.journal.sync_all()?;
        }
        self.next_seq = seq + 1;
        self.journal_bytes += bytes.len() as u64;
        Ok(())
    }

    /// Rewrite the journal as one commit per live entry once it
    /// outgrows the bound, and delete spill files no commit references.
    fn maybe_rotate(&mut self) -> std::io::Result<()> {
        if self.journal_bytes <= self.max_journal_bytes {
            return Ok(());
        }
        let mut bytes = Vec::new();
        for (i, &fp) in self.live.iter().enumerate() {
            let mut p = PayloadWriter::new();
            p.put_u8(OP_RECORD);
            p.put_u64(fp);
            bytes.extend_from_slice(&encode_record(KIND_COMMIT, i as u64 + 1, &p.into_bytes()));
        }
        let tmp = self.journal_path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.journal_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.journal = OpenOptions::new().append(true).open(&self.journal_path)?;
        self.journal_bytes = bytes.len() as u64;
        self.next_seq = self.live.len() as u64 + 1;

        // GC: spill files not referenced by any live commit.
        let keep: HashSet<PathBuf> = self
            .live
            .iter()
            .map(|&fp| spill_path(&self.dir, fp))
            .collect();
        if let Ok(listing) = std::fs::read_dir(&self.dir) {
            for f in listing.flatten() {
                let path = f.path();
                let name = f.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("spill-") && name.ends_with(".nasp") && !keep.contains(&path) {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(())
    }

    /// Write the spill file for `fp` atomically (tmp + fsync + rename +
    /// dir fsync). Must precede the commit journal record: recovery
    /// trusts a commit to mean the spill is durable.
    pub fn spill(
        &self,
        fp: u64,
        method: Method,
        problem: &NetAlignProblem,
        config: &AlignConfig,
        trajectory: Option<&BpTrajectory>,
    ) -> Result<(), String> {
        let payload = serialize_entry(problem, config, trajectory);
        let mut bytes = Vec::with_capacity(payload.len() + 33);
        bytes.extend_from_slice(&SPILL_MAGIC);
        bytes.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fp.to_le_bytes());
        bytes.push(method_tag(method));
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let path = spill_path(&self.dir, fp);
        let tmp = path.with_extension("nasp.tmp");
        let write = |p: &Path, b: &[u8]| -> std::io::Result<()> {
            let mut f = File::create(p)?;
            f.write_all(b)?;
            f.sync_all()?;
            Ok(())
        };
        write(&tmp, &bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        if faults::kill_due(KILL_SPILL_RENAME) {
            // The tmp file is durable but the rename never happens: a
            // restart must treat the entry as absent (no commit was
            // journaled) and scrub the orphan.
            std::process::abort();
        }
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Best-effort removal of a superseded spill file.
    pub fn remove_spill(&self, fp: u64) {
        let _ = std::fs::remove_file(spill_path(&self.dir, fp));
    }
}

fn remove_first(v: &mut Vec<u64>, x: u64) {
    if let Some(i) = v.iter().position(|&f| f == x) {
        v.remove(i);
    }
}

fn spill_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("spill-{fp:016x}.nasp"))
}

fn method_tag(method: Method) -> u8 {
    match method {
        Method::Bp => 0,
        Method::Mr => 1,
    }
}

fn method_from_tag(tag: u8) -> Result<Method, String> {
    match tag {
        0 => Ok(Method::Bp),
        1 => Ok(Method::Mr),
        t => Err(format!("spill method: invalid tag {t}")),
    }
}

// ---------------------------------------------------------------------
// Journal encoding / scanning
// ---------------------------------------------------------------------

fn encode_record(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(JOURNAL_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&JOURNAL_MAGIC);
    bytes.push(kind);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&record_checksum(kind, seq, payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

fn record_checksum(kind: u8, seq: u64, payload: &[u8]) -> u64 {
    let mut hashed = Vec::with_capacity(9 + payload.len());
    hashed.push(kind);
    hashed.extend_from_slice(&seq.to_le_bytes());
    hashed.extend_from_slice(payload);
    fnv1a64(&hashed)
}

/// Scan the journal, returning every intact record in order plus the
/// byte offset the intact prefix ends at. Any malformed header, short
/// payload, checksum mismatch, or undecodable payload stops the scan
/// there — the tail is damage, never data.
fn scan_journal(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= JOURNAL_HEADER_LEN {
        let h = &bytes[pos..pos + JOURNAL_HEADER_LEN];
        if h[0..4] != JOURNAL_MAGIC {
            break;
        }
        let kind = h[4];
        let seq = u64::from_le_bytes(h[5..13].try_into().unwrap());
        let len = u32::from_le_bytes(h[13..17].try_into().unwrap());
        let checksum = u64::from_le_bytes(h[17..25].try_into().unwrap());
        if len > JOURNAL_MAX_PAYLOAD {
            break;
        }
        let start = pos + JOURNAL_HEADER_LEN;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            break;
        };
        let payload = &bytes[start..end];
        if record_checksum(kind, seq, payload) != checksum {
            break;
        }
        let Ok(record) = decode_record(kind, payload) else {
            break;
        };
        records.push(record);
        pos = end;
    }
    (records, pos)
}

fn decode_record(kind: u8, payload: &[u8]) -> Result<JournalRecord, String> {
    let mut r = PayloadReader::new(payload);
    let op = r.get_u8("journal op")?;
    let record = match (kind, op) {
        (KIND_BEGIN, OP_RECORD) => JournalRecord::BeginRecord {
            fp: r.get_u64("journal fp")?,
        },
        (KIND_COMMIT, OP_RECORD) => JournalRecord::CommitRecord {
            fp: r.get_u64("journal fp")?,
        },
        (KIND_BEGIN, OP_DELTA) => JournalRecord::BeginDelta {
            base: r.get_u64("journal base")?,
        },
        (KIND_COMMIT, OP_DELTA) => JournalRecord::CommitDelta {
            base: r.get_u64("journal base")?,
            new_fp: r.get_u64("journal new fp")?,
        },
        (k, o) => return Err(format!("journal record: invalid kind/op {k}/{o}")),
    };
    r.finish("journal record")?;
    Ok(record)
}

// ---------------------------------------------------------------------
// Spill serialization
// ---------------------------------------------------------------------

fn serialize_entry(
    problem: &NetAlignProblem,
    config: &AlignConfig,
    trajectory: Option<&BpTrajectory>,
) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    put_config(&mut w, config);
    put_graph(&mut w, &problem.a);
    put_graph(&mut w, &problem.b);
    put_bipartite(&mut w, &problem.l);
    match trajectory {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            t.serialize_into(&mut w);
        }
    }
    w.into_bytes()
}

/// Parse and fully validate one spill file. `expect_fp` is the
/// fingerprint the journal committed; the loaded entry must recompute
/// to exactly that value (method + graphs + config), so any bit drift
/// between spill and journal rejects the entry instead of serving a
/// wrong base.
fn load_spill(path: &Path, expect_fp: u64) -> Result<RecoveredEntry, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if bytes.len() < 4 || bytes[0..4] != SPILL_MAGIC {
        return Err("bad spill magic".to_string());
    }
    let mut r = PayloadReader::new(&bytes[4..]);
    let version = {
        let b = r.take(4, "spill version")?;
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    if version != SPILL_VERSION {
        return Err(format!(
            "spill version {version}, this build reads {SPILL_VERSION}"
        ));
    }
    let fp = r.get_u64("spill fingerprint")?;
    if fp != expect_fp {
        return Err(format!(
            "spill fingerprint {fp:016x} does not match journal {expect_fp:016x}"
        ));
    }
    let method = method_from_tag(r.get_u8("spill method")?)?;
    let payload_len = r.get_usize("spill payload length")?;
    let checksum = r.get_u64("spill checksum")?;
    let payload = r.take(payload_len, "spill payload")?;
    r.finish("spill file")?;
    if fnv1a64(payload) != checksum {
        return Err("spill checksum mismatch".to_string());
    }

    let mut p = PayloadReader::new(payload);
    let config = get_config(&mut p)?;
    let a = get_graph(&mut p, "spill graph a")?;
    let b = get_graph(&mut p, "spill graph b")?;
    let l = get_bipartite(&mut p)?;
    if l.num_left() != a.num_vertices() || l.num_right() != b.num_vertices() {
        return Err("spill candidate graph shape does not match A/B".to_string());
    }
    // The recomputed fingerprint must agree with the committed one —
    // the end-to-end guard that recovery is serving the same problem.
    if problem_fingerprint(&a, &b, &l, method, &config) != expect_fp {
        return Err("recomputed fingerprint diverges from journal commit".to_string());
    }
    // Rebuilds S bit-identically (canonical graphs, deterministic
    // parallel build) — the reason S itself is never spilled.
    let problem = NetAlignProblem::new(a, b, l);
    let trajectory = match p.get_u8("spill trajectory flag")? {
        0 => None,
        1 => Some(BpTrajectory::deserialize(
            &mut p,
            problem.l.num_edges(),
            problem.s.nnz(),
        )?),
        t => return Err(format!("spill trajectory flag: invalid tag {t}")),
    };
    p.finish("spill payload")?;
    Ok(RecoveredEntry {
        fingerprint: expect_fp,
        method,
        problem,
        config,
        trajectory,
    })
}

fn put_config(w: &mut PayloadWriter, c: &AlignConfig) {
    w.put_f64(c.alpha);
    w.put_f64(c.beta);
    w.put_f64(c.gamma);
    w.put_usize(c.iterations);
    w.put_usize(c.mstep);
    w.put_usize(c.batch);
    match c.matcher {
        MatcherKind::Exact => w.put_u8(0),
        MatcherKind::Greedy => w.put_u8(1),
        MatcherKind::LocalDominant => w.put_u8(2),
        MatcherKind::ParallelLocalDominant => w.put_u8(3),
        MatcherKind::ParallelLocalDominantOneSide => w.put_u8(4),
        MatcherKind::Suitor => w.put_u8(5),
        MatcherKind::ParallelSuitor => w.put_u8(6),
        MatcherKind::PathGrowing => w.put_u8(7),
        MatcherKind::Distributed { ranks } => {
            w.put_u8(8);
            w.put_usize(ranks);
        }
        MatcherKind::Auction { eps_rel } => {
            w.put_u8(9);
            w.put_f64(eps_rel);
        }
        MatcherKind::ExternalSuitor => w.put_u8(10),
    }
    w.put_u8(match c.damping {
        DampingKind::Power => 0,
        DampingKind::Constant => 1,
        DampingKind::None => 2,
    });
    w.put_u8(match c.rounding {
        None => 0,
        Some(RoundingMatcher::Ld) => 1,
        Some(RoundingMatcher::Suitor) => 2,
    });
    w.put_u8(c.enriched_rounding as u8);
    w.put_u8(c.final_exact_round as u8);
    w.put_u8(c.record_history as u8);
    w.put_u8(c.trace_matcher as u8);
    w.put_u8(c.warm_start as u8);
    w.put_u8(c.numeric_guards as u8);
    w.put_usize(c.checkpoint.every_k_iters);
    w.put_f64(c.checkpoint.every_secs);
}

fn get_config(r: &mut PayloadReader<'_>) -> Result<AlignConfig, String> {
    let alpha = r.get_f64("config.alpha")?;
    let beta = r.get_f64("config.beta")?;
    let gamma = r.get_f64("config.gamma")?;
    let iterations = r.get_usize("config.iterations")?;
    let mstep = r.get_usize("config.mstep")?;
    let batch = r.get_usize("config.batch")?;
    let matcher = match r.get_u8("config.matcher")? {
        0 => MatcherKind::Exact,
        1 => MatcherKind::Greedy,
        2 => MatcherKind::LocalDominant,
        3 => MatcherKind::ParallelLocalDominant,
        4 => MatcherKind::ParallelLocalDominantOneSide,
        5 => MatcherKind::Suitor,
        6 => MatcherKind::ParallelSuitor,
        7 => MatcherKind::PathGrowing,
        8 => MatcherKind::Distributed {
            ranks: r.get_usize("config.matcher.ranks")?,
        },
        9 => MatcherKind::Auction {
            eps_rel: r.get_f64("config.matcher.eps_rel")?,
        },
        10 => MatcherKind::ExternalSuitor,
        t => return Err(format!("config.matcher: invalid tag {t}")),
    };
    let damping = match r.get_u8("config.damping")? {
        0 => DampingKind::Power,
        1 => DampingKind::Constant,
        2 => DampingKind::None,
        t => return Err(format!("config.damping: invalid tag {t}")),
    };
    let rounding = match r.get_u8("config.rounding")? {
        0 => None,
        1 => Some(RoundingMatcher::Ld),
        2 => Some(RoundingMatcher::Suitor),
        t => return Err(format!("config.rounding: invalid tag {t}")),
    };
    let get_bool = |r: &mut PayloadReader<'_>, what: &str| -> Result<bool, String> {
        match r.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(format!("{what}: invalid bool {t}")),
        }
    };
    let enriched_rounding = get_bool(r, "config.enriched_rounding")?;
    let final_exact_round = get_bool(r, "config.final_exact_round")?;
    let record_history = get_bool(r, "config.record_history")?;
    let trace_matcher = get_bool(r, "config.trace_matcher")?;
    let warm_start = get_bool(r, "config.warm_start")?;
    let numeric_guards = get_bool(r, "config.numeric_guards")?;
    let every_k_iters = r.get_usize("config.checkpoint.every_k_iters")?;
    let every_secs = r.get_f64("config.checkpoint.every_secs")?;
    Ok(AlignConfig {
        alpha,
        beta,
        gamma,
        iterations,
        mstep,
        batch,
        matcher,
        damping,
        enriched_rounding,
        final_exact_round,
        record_history,
        trace_matcher,
        rounding,
        warm_start,
        numeric_guards,
        checkpoint: CheckpointPolicy {
            every_k_iters,
            every_secs,
        },
    })
}

fn put_graph(w: &mut PayloadWriter, g: &Graph) {
    w.put_usize(g.num_vertices());
    w.put_usize(g.num_edges());
    for (u, v) in g.edges() {
        w.put_u64(u as u64);
        w.put_u64(v as u64);
    }
}

fn get_graph(r: &mut PayloadReader<'_>, what: &str) -> Result<Graph, String> {
    let n = r.get_usize(what)?;
    let num_edges = r.get_usize(what)?;
    if num_edges > n.saturating_mul(n) {
        return Err(format!("{what}: implausible edge count {num_edges}"));
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = get_vertex(r, n, what)?;
        let v = get_vertex(r, n, what)?;
        edges.push((u, v));
    }
    Ok(Graph::from_edges(n, edges))
}

fn put_bipartite(w: &mut PayloadWriter, l: &BipartiteGraph) {
    w.put_usize(l.num_left());
    w.put_usize(l.num_right());
    w.put_usize(l.num_edges());
    for e in 0..l.num_edges() {
        let (a, b) = l.endpoints(e);
        w.put_u64(a as u64);
        w.put_u64(b as u64);
        w.put_f64(l.weight(e));
    }
}

fn get_bipartite(r: &mut PayloadReader<'_>) -> Result<BipartiteGraph, String> {
    let na = r.get_usize("spill l.na")?;
    let nb = r.get_usize("spill l.nb")?;
    let num_edges = r.get_usize("spill l.num_edges")?;
    if num_edges > na.saturating_mul(nb) {
        return Err(format!("spill l: implausible edge count {num_edges}"));
    }
    let mut entries = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let a = get_vertex(r, na, "spill l entry")?;
        let b = get_vertex(r, nb, "spill l entry")?;
        let weight = r.get_f64("spill l weight")?;
        entries.push((a, b, weight));
    }
    BipartiteGraph::try_from_entries(na, nb, entries).map_err(|e| format!("spill l: {e}"))
}

fn get_vertex(r: &mut PayloadReader<'_>, n: usize, what: &str) -> Result<VertexId, String> {
    let v = r.get_u64(what)?;
    if v as usize >= n {
        return Err(format!("{what}: vertex {v} out of range (n = {n})"));
    }
    VertexId::try_from(v).map_err(|_| format!("{what}: vertex {v} exceeds VertexId"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_core::delta::{DeltaBase, ProblemDelta};
    use netalign_graph::delta::CandidateDelta;

    fn problem(seed: u64) -> (Graph, Graph, BipartiteGraph) {
        // Small deterministic instance with enough structure for BP to
        // record a non-trivial trajectory.
        let n = 8usize;
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        for i in 0..n as u32 {
            ea.push((i, (i + 1) % n as u32));
            eb.push((i, (i + 1) % n as u32));
            if i.is_multiple_of(2) {
                ea.push((i, (i + 3) % n as u32));
            }
            if (i + seed as u32).is_multiple_of(3) {
                eb.push((i, (i + 2) % n as u32));
            }
        }
        let a = Graph::from_edges(n, ea);
        let b = Graph::from_edges(n, eb);
        let mut entries = Vec::new();
        for i in 0..n as u32 {
            entries.push((i, i, 1.0));
            entries.push((i, (i + 1) % n as u32, 0.5));
        }
        let l = BipartiteGraph::from_entries(n, n, entries);
        (a, b, l)
    }

    fn config() -> AlignConfig {
        AlignConfig {
            iterations: 6,
            rounding: Some(RoundingMatcher::Ld),
            record_history: false,
            ..AlignConfig::default()
        }
    }

    fn recorded_base() -> (u64, NetAlignProblem, AlignConfig, BpTrajectory) {
        let (a, b, l) = problem(1);
        let config = config();
        let fp = problem_fingerprint(&a, &b, &l, Method::Bp, &config);
        let p = NetAlignProblem::new(a, b, l);
        let (_, trajectory, _) =
            netalign_core::delta::record_bp(&p, &config, Vec::new()).expect("record");
        (fp, p, config, trajectory)
    }

    #[test]
    fn spill_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join(format!("nasp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, report, entries) = DurableStore::open(&dir, 1 << 20).expect("open");
        assert_eq!(report.journal_replayed, 0);
        assert!(entries.is_empty());

        let (fp, problem, config, trajectory) = recorded_base();
        store
            .spill(fp, Method::Bp, &problem, &config, Some(&trajectory))
            .expect("spill");
        let entry = load_spill(&spill_path(&dir, fp), fp).expect("load");
        assert_eq!(entry.fingerprint, fp);
        assert_eq!(entry.method, Method::Bp);
        // Graph equality is bit equality: canonical CSR + sorted
        // entries derive PartialEq.
        assert_eq!(entry.problem.a, problem.a);
        assert_eq!(entry.problem.b, problem.b);
        assert_eq!(entry.problem.l, problem.l);
        assert_eq!(entry.problem.s.nnz(), problem.s.nnz());
        let t = entry.trajectory.expect("trajectory survived");
        assert_eq!(t.iterations(), trajectory.iterations());
        assert_eq!(t.num_candidates(), trajectory.num_candidates());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_base_replays_deltas_bit_identically_to_uncrashed() {
        let dir = std::env::temp_dir().join(format!("nasp-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (fp, problem, config, trajectory) = recorded_base();

        // Control: delta applied to the in-memory base.
        let delta = ProblemDelta {
            l: CandidateDelta {
                reweight: vec![(0, 0, 1.25)],
                ..Default::default()
            },
            ..Default::default()
        };
        let control = {
            let mut base =
                DeltaBase::from_parts(problem.clone(), config, trajectory.clone(), Vec::new());
            let (result, _) = base.apply(&delta).expect("control delta");
            result.objective
        };

        // Crash path: spill + commit, reopen, replay against the
        // recovered entry.
        {
            let (mut store, _, _) = DurableStore::open(&dir, 1 << 20).expect("open");
            store.begin_record(fp).expect("begin");
            store
                .spill(fp, Method::Bp, &problem, &config, Some(&trajectory))
                .expect("spill");
            store.commit_record(fp).expect("commit");
        }
        let (store, report, mut entries) = DurableStore::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(store.live(), &[fp]);
        assert_eq!(report.journal_replayed, 1);
        assert_eq!(report.journal_torn_discarded, 0);
        assert_eq!(report.spill_load_errors, 0);
        let entry = entries.pop().expect("one recovered entry");
        let mut base = DeltaBase::from_parts(
            entry.problem,
            entry.config,
            entry.trajectory.expect("trajectory"),
            Vec::new(),
        );
        let (result, _) = base.apply(&delta).expect("recovered delta");
        assert_eq!(
            result.objective.to_bits(),
            control.to_bits(),
            "post-recovery delta must be bit-identical to the uncrashed control"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_journal_stays_appendable() {
        let dir = std::env::temp_dir().join(format!("nasp-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut store, _, _) = DurableStore::open(&dir, 1 << 20).expect("open");
            store.begin_record(0xAA).expect("begin");
            store.commit_record(0xAA).expect("commit");
            store.begin_record(0xBB).expect("begin 2");
            store.commit_record(0xBB).expect("commit 2");
        }
        // Tear the last record in half.
        let path = dir.join("journal.log");
        let bytes = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("tear");

        let (mut store, report, _) = DurableStore::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(report.journal_torn_discarded, 1);
        // Only 0xAA's commit survives intact (0xBB's was torn, leaving
        // its begin pending); 0xAA has no spill file here, so it is
        // dropped with a counted load error — never half-loaded.
        assert_eq!(report.journal_replayed, 1);
        assert_eq!(report.incomplete_discarded, 1);
        assert_eq!(report.spill_load_errors, 1);

        // Appends after truncation must parse on the next scan.
        store.begin_record(0xCC).expect("begin post-tear");
        store.commit_record(0xCC).expect("commit post-tear");
        drop(store);
        let (_, report2, _) = DurableStore::open(&dir, 1 << 20).expect("re-reopen");
        assert_eq!(report2.journal_torn_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_journal_and_gcs_orphans() {
        let dir = std::env::temp_dir().join(format!("nasp-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Tiny bound: every commit triggers rotation.
        let (mut store, _, _) = DurableStore::open(&dir, 64).expect("open");
        // Fake spill files so GC has something to keep/delete.
        std::fs::write(spill_path(&dir, 1), b"x").unwrap();
        store.begin_record(1).expect("begin");
        store.commit_record(1).expect("commit");
        store.begin_delta(1).expect("begin delta");
        std::fs::write(spill_path(&dir, 2), b"x").unwrap();
        store.commit_delta(1, 2).expect("commit delta");
        assert_eq!(store.live(), &[2]);
        // Rotation rewrote the journal as live commits only and GC'd
        // the superseded spill.
        assert!(!spill_path(&dir, 1).exists(), "orphan spill GC'd");
        assert!(spill_path(&dir, 2).exists(), "live spill kept");
        drop(store);
        // Reopen: the rotated journal replays to {2}, whose fake spill
        // content fails validation and is dropped with a counted error
        // (never half-loaded).
        let (store, report, _) = DurableStore::open(&dir, 64).expect("reopen");
        assert!(store.live().is_empty());
        assert_eq!(report.journal_replayed, 1);
        assert_eq!(report.spill_load_errors, 1);
        assert_eq!(report.incomplete_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_without_commit_is_invisible() {
        let dir = std::env::temp_dir().join(format!("nasp-incomplete-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut store, _, _) = DurableStore::open(&dir, 1 << 20).expect("open");
            store.begin_record(0xF00).expect("begin");
            // No commit: the process "crashed" mid-solve. The begin is
            // unsynced, so flush it through the handle drop.
        }
        let (store, report, entries) = DurableStore::open(&dir, 1 << 20).expect("reopen");
        assert!(store.live().is_empty());
        assert!(entries.is_empty());
        assert_eq!(report.incomplete_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
