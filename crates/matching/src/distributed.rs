//! Distributed-memory locally-dominant matching, simulated.
//!
//! The paper's §IX names a distributed half-approximation matching
//! (Çatalyürek et al. [29]) as the path to an MPI implementation. This
//! module reproduces that algorithm's structure on simulated ranks:
//! vertices are block-partitioned across `num_ranks` workers, every
//! worker owns the `mate`/`candidate` state of its vertices only, and
//! all cross-partition coordination happens through explicit messages
//! (`Propose`, `Matched`) over channels — no shared mutable state. The
//! graph itself is shared read-only, standing in for the halo/ghost
//! replication a real MPI code would use.
//!
//! The protocol is bulk-synchronous, three phases per round:
//!
//! 1. **Propose** — each rank recomputes candidates for its dirty
//!    vertices and sends a proposal to the candidate's owner.
//! 2. **Match** — ranks drain proposals; an owned vertex whose own
//!    candidate has proposed to it forms a locally-dominant pair, which
//!    is matched and announced to every rank.
//! 3. **Invalidate** — ranks drain announcements, update their view of
//!    who is matched, and mark neighbors that pointed at a newly
//!    matched vertex dirty for the next round.
//!
//! A proposal stays valid while its target is unmatched (a vertex only
//! re-proposes after its previous target matched), so pending proposals
//! are stored per target until consumed or invalidated.
//!
//! Under the crate's total edge order, the result equals the serial
//! locally-dominant matching for every rank count — asserted in tests.

use crate::approx::{unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Messages between ranks.
#[derive(Clone, Copy, Debug)]
enum Msg {
    /// `from` has chosen `to` as its candidate.
    Propose { from: VertexId, to: VertexId },
    /// `v` got matched to `mate` (broadcast to all ranks).
    Matched { v: VertexId, mate: VertexId },
}

/// Block partition: owner of vertex `v` among `p` ranks over `n`
/// vertices.
#[inline]
fn owner(v: VertexId, n: usize, p: usize) -> usize {
    let block = n.div_ceil(p);
    ((v as usize) / block).min(p - 1)
}

/// Run the simulated distributed matcher with `num_ranks` workers.
///
/// # Panics
/// Panics if `num_ranks == 0` or `weights.len() != l.num_edges()`.
pub fn distributed_local_dominant(
    l: &BipartiteGraph,
    weights: &[f64],
    num_ranks: usize,
) -> Matching {
    assert!(num_ranks >= 1, "need at least one rank");
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    if n == 0 {
        return Matching::empty(l.num_left(), l.num_right());
    }
    let p = num_ranks.min(n);

    // One inbox per rank; anyone may send to it.
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = std::sync::mpsc::channel::<Msg>();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Barrier::new(p);
    let active = [AtomicBool::new(false), AtomicBool::new(false)];

    let block = n.div_ceil(p);
    let results: Vec<Vec<(VertexId, VertexId)>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let barrier = &barrier;
                let active = &active;
                let view = &view;
                handles.push(scope.spawn(move || {
                    rank_main(rank, p, n, block, view, senders, rx, barrier, active)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });

    let mut mate = vec![UNMATCHED; n];
    for pairs in results {
        for (v, m) in pairs {
            mate[v as usize] = m;
        }
    }
    view.to_matching(&mate)
}

/// Candidate of `s` among neighbors the rank believes are unmatched.
fn find_mate_local(view: &UnifiedView<'_>, s: VertexId, known_matched: &[bool]) -> VertexId {
    let mut best = UNMATCHED;
    let mut best_w = 0.0f64;
    view.for_each_neighbor(s, |t, w| {
        if w <= 0.0 || known_matched[t as usize] {
            return;
        }
        if best == UNMATCHED || unified_edge_gt(w, s, t, best_w, s, best) {
            best = t;
            best_w = w;
        }
    });
    best
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: usize,
    p: usize,
    n: usize,
    block: usize,
    view: &UnifiedView<'_>,
    senders: Vec<std::sync::mpsc::Sender<Msg>>,
    rx: std::sync::mpsc::Receiver<Msg>,
    barrier: &Barrier,
    active: &[AtomicBool; 2],
) -> Vec<(VertexId, VertexId)> {
    let lo = rank * block;
    let hi = ((rank + 1) * block).min(n);
    let owns = |v: VertexId| (lo..hi).contains(&(v as usize));

    // Owned state, indexed by (v - lo).
    let mut mate = vec![UNMATCHED; hi - lo];
    let mut candidate = vec![UNMATCHED; hi - lo];
    // Pending proposals per owned vertex.
    let mut proposals: Vec<Vec<VertexId>> = vec![Vec::new(); hi - lo];
    // Global view of matched vertices (built from broadcasts).
    let mut known_matched = vec![false; n];
    let mut dirty: Vec<VertexId> = (lo as VertexId..hi as VertexId).collect();
    let mut matched_now: Vec<(VertexId, VertexId)> = Vec::new();
    // Announcements drained early: a fast rank may broadcast `Matched`
    // while this rank is still draining phase-2 proposals, so phase 2
    // defers them here for phase 3 instead of asserting them away.
    let mut deferred: Vec<Msg> = Vec::new();

    let mut round = 0usize;
    loop {
        // Phase 1: propose.
        for &v in &dirty {
            let li = v as usize - lo;
            if mate[li] != UNMATCHED {
                continue;
            }
            let c = find_mate_local(view, v, &known_matched);
            candidate[li] = c;
            if c != UNMATCHED {
                senders[owner(c, n, p)]
                    .send(Msg::Propose { from: v, to: c })
                    .expect("inbox closed");
            }
        }
        dirty.clear();
        barrier.wait();

        // Phase 2: drain proposals, match locally-dominant pairs.
        // (`Matched` broadcasts from ranks already past their own
        // matching loop are deferred to phase 3.)
        while let Ok(msg) = rx.try_recv() {
            if let Msg::Propose { from, to } = msg {
                debug_assert!(owns(to));
                proposals[to as usize - lo].push(from);
            } else {
                deferred.push(msg);
            }
        }
        matched_now.clear();
        for li in 0..(hi - lo) {
            if mate[li] != UNMATCHED {
                continue;
            }
            let c = candidate[li];
            if c == UNMATCHED {
                continue;
            }
            // A proposal from exactly our candidate makes the pair
            // locally dominant. (A stored proposal stays valid while we
            // are unmatched; see module docs.)
            if proposals[li].contains(&c) && !known_matched[c as usize] {
                let v = (lo + li) as VertexId;
                mate[li] = c;
                matched_now.push((v, c));
            }
        }
        for &(v, c) in &matched_now {
            for tx in &senders {
                tx.send(Msg::Matched { v, mate: c }).expect("inbox closed");
                tx.send(Msg::Matched { v: c, mate: v })
                    .expect("inbox closed");
            }
        }
        barrier.wait();

        // Phase 3: drain announcements (deferred ones first),
        // invalidate neighbors.
        let drained: Vec<Msg> = deferred
            .drain(..)
            .chain(std::iter::from_fn(|| rx.try_recv().ok()))
            .collect();
        for msg in drained {
            if let Msg::Matched { v, mate: m } = msg {
                if known_matched[v as usize] {
                    continue; // duplicate announcement (both owners matched)
                }
                known_matched[v as usize] = true;
                if owns(v) {
                    mate[v as usize - lo] = m;
                    proposals[v as usize - lo].clear();
                }
                // Neighbors of v that we own and that pointed at v must
                // recompute — the mirror of the paper's queue phase.
                view.for_each_neighbor(v, |u, _| {
                    if owns(u)
                        && mate[u as usize - lo] == UNMATCHED
                        && candidate[u as usize - lo] == v
                    {
                        dirty.push(u);
                    }
                });
            } else {
                unreachable!("Propose messages cannot cross the phase-3 barriers");
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        // Termination: double-buffered global activity flag.
        let cur = round % 2;
        if !dirty.is_empty() {
            active[cur].store(true, Ordering::SeqCst);
        }
        barrier.wait();
        let keep_going = active[cur].load(Ordering::SeqCst);
        active[(round + 1) % 2].store(false, Ordering::SeqCst);
        barrier.wait();
        if !keep_going {
            break;
        }
        round += 1;
    }

    (lo..hi)
        .filter(|&v| mate[v - lo] != UNMATCHED)
        .map(|v| (v as VertexId, mate[v - lo]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::serial_local_dominant;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, pr: f64) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(pr) {
                    entries.push((a as u32, b as u32, rng.gen_range(0.1..5.0)));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn single_rank_equals_serial() {
        for seed in 0..10 {
            let l = random_l(seed, 15, 13, 0.3);
            assert_eq!(
                distributed_local_dominant(&l, l.weights(), 1),
                serial_local_dominant(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn many_ranks_equal_serial() {
        for seed in 20..35 {
            let l = random_l(seed, 25, 22, 0.25);
            let serial = serial_local_dominant(&l, l.weights());
            for ranks in [2, 3, 4, 7] {
                assert_eq!(
                    distributed_local_dominant(&l, l.weights(), ranks),
                    serial,
                    "seed {seed} ranks {ranks}"
                );
            }
        }
    }

    #[test]
    fn more_ranks_than_vertices() {
        let l = random_l(1, 3, 3, 0.8);
        let serial = serial_local_dominant(&l, l.weights());
        assert_eq!(distributed_local_dominant(&l, l.weights(), 64), serial);
    }

    #[test]
    fn empty_graph_terminates() {
        let l = BipartiteGraph::from_entries(4, 4, Vec::<(u32, u32, f64)>::new());
        let m = distributed_local_dominant(&l, l.weights(), 3);
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn cross_partition_pairs_are_found() {
        // Force the dominant pair to straddle the partition boundary:
        // left vertices live in rank 0's block, right in the last.
        let l = BipartiteGraph::from_entries(
            2,
            2,
            vec![(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let m = distributed_local_dominant(&l, l.weights(), 4);
        assert_eq!(m.mate_of_left(0), Some(0));
        assert_eq!(m.mate_of_left(1), Some(1));
    }

    #[test]
    fn deterministic_across_runs_and_rank_counts() {
        let l = random_l(9, 40, 40, 0.15);
        let reference = distributed_local_dominant(&l, l.weights(), 2);
        for _ in 0..5 {
            assert_eq!(distributed_local_dominant(&l, l.weights(), 5), reference);
        }
    }
}
