//! Distributed-memory locally-dominant matching, simulated.
//!
//! The paper's §IX names a distributed half-approximation matching
//! (Çatalyürek et al. [29]) as the path to an MPI implementation. This
//! module reproduces that algorithm's structure on simulated ranks:
//! vertices are block-partitioned across `num_ranks` workers, every
//! worker owns the `mate`/`candidate` state of its vertices only, and
//! all cross-partition coordination happens through explicit messages
//! (`Propose`, `Matched`) over channels — no shared mutable state. The
//! graph itself is shared read-only, standing in for the halo/ghost
//! replication a real MPI code would use.
//!
//! The protocol is bulk-synchronous, three phases per round:
//!
//! 1. **Propose** — each rank recomputes candidates for its dirty
//!    vertices and sends a proposal to the candidate's owner.
//! 2. **Match** — ranks drain proposals; an owned vertex whose own
//!    candidate has proposed to it forms a locally-dominant pair, which
//!    is matched and announced to every rank.
//! 3. **Invalidate** — ranks drain announcements, update their view of
//!    who is matched, and mark neighbors that pointed at a newly
//!    matched vertex dirty for the next round.
//!
//! A proposal stays valid while its target is unmatched (a vertex only
//! re-proposes after its previous target matched), so pending proposals
//! are stored per target until consumed or invalidated.
//!
//! Under the crate's total edge order, the result equals the serial
//! locally-dominant matching for every rank count — asserted in tests.
//!
//! ## Fault injection
//!
//! [`ChannelFaults`] deterministically drops and/or duplicates
//! messages (counted per sending rank), standing in for the lossy
//! transports a real deployment would face. When faults are active the
//! protocol engages three hardening rules — a proposal that goes
//! unanswered for its timeout window is retransmitted on a bounded
//! exponential backoff (1, 2, 4, … rounds up to
//! [`RESEND_BACKOFF_CAP`], reset whenever the proposer learns
//! something new), owners answer proposals to already-matched vertices
//! with a retransmitted `Matched` reply, and termination waits for a
//! quiet grace window under a hard round cap — so the
//! half-approximation and termination guarantees survive lost and
//! repeated messages, and a silent peer cannot stall termination
//! (asserted in tests). A rank still owing a scheduled retransmission
//! counts as active, so quiescence detection never fires while a
//! timed-out proposal is waiting out its backoff window.

use crate::approx::{unified_edge_gt, UnifiedView};

/// Longest per-round answer timeout (in rounds) a faulty-mode proposal
/// backs off to before being retransmitted. The schedule is 1, 2, 4, …
/// capped here, so a lost message is always re-sent within a bounded
/// window while settled vertices stop flooding the links.
pub const RESEND_BACKOFF_CAP: usize = 16;
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Messages between ranks. Public so transports can encode them: the
/// simulated driver ships them over in-process channels, the real
/// distributed layer (`netalign_core::dist`) over framed sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistMsg {
    /// `from` has chosen `to` as its candidate.
    Propose { from: VertexId, to: VertexId },
    /// `v` got matched to `mate` (broadcast to all ranks).
    Matched { v: VertexId, mate: VertexId },
}

/// Deterministic message-fault injection for the simulated distributed
/// matcher: every `drop_every`-th send from a rank is dropped, every
/// `dup_every`-th send is delivered twice (0 disables either fault).
/// Counting is per sending rank, so a given graph + rank count + fault
/// plan always exercises the same loss pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelFaults {
    /// Drop every n-th message a rank sends (0 = never drop).
    pub drop_every: usize,
    /// Duplicate every n-th message a rank sends (0 = never duplicate).
    pub dup_every: usize,
}

impl ChannelFaults {
    /// No injected faults.
    pub const NONE: ChannelFaults = ChannelFaults {
        drop_every: 0,
        dup_every: 0,
    };

    /// True when any fault is configured (enables protocol hardening).
    pub fn active(&self) -> bool {
        self.drop_every > 0 || self.dup_every > 0
    }
}

/// Per-rank faulty channel endpoint: applies [`ChannelFaults`] to each
/// send with a deterministic per-rank message counter.
struct FaultyLink {
    senders: Vec<std::sync::mpsc::Sender<DistMsg>>,
    faults: ChannelFaults,
    sent: usize,
}

impl FaultyLink {
    fn send(&mut self, rank: usize, msg: DistMsg) {
        self.sent += 1;
        let nth = |every: usize| every > 0 && self.sent.is_multiple_of(every);
        if nth(self.faults.drop_every) {
            return; // lost in transit
        }
        // Invariant: every receiver outlives the send, because all
        // ranks leave the round loop at the same barrier-synchronized
        // round, so the inbox cannot be closed mid-protocol.
        self.senders[rank].send(msg).expect("inbox closed");
        if nth(self.faults.dup_every) {
            self.senders[rank].send(msg).expect("inbox closed");
        }
    }
}

/// Block partition: owner of vertex `v` among `p` ranks over `n`
/// vertices.
#[inline]
fn owner(v: VertexId, n: usize, p: usize) -> usize {
    let block = n.div_ceil(p);
    ((v as usize) / block).min(p - 1)
}

/// Run the simulated distributed matcher with `num_ranks` workers.
///
/// # Panics
/// Panics if `num_ranks == 0` or `weights.len() != l.num_edges()`.
pub fn distributed_local_dominant(
    l: &BipartiteGraph,
    weights: &[f64],
    num_ranks: usize,
) -> Matching {
    distributed_local_dominant_faulty(l, weights, num_ranks, ChannelFaults::NONE)
}

/// [`distributed_local_dominant`] with injected channel faults.
///
/// # Panics
/// Panics if `num_ranks == 0` or `weights.len() != l.num_edges()`.
pub fn distributed_local_dominant_faulty(
    l: &BipartiteGraph,
    weights: &[f64],
    num_ranks: usize,
    faults: ChannelFaults,
) -> Matching {
    assert!(num_ranks >= 1, "need at least one rank");
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    if n == 0 {
        return Matching::empty(l.num_left(), l.num_right());
    }
    let p = num_ranks.min(n);

    // One inbox per rank; anyone may send to it.
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = std::sync::mpsc::channel::<DistMsg>();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Barrier::new(p);
    let active = [AtomicBool::new(false), AtomicBool::new(false)];

    let results: Vec<Vec<(VertexId, VertexId)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let barrier = &barrier;
            let active = &active;
            handles.push(scope.spawn(move || {
                rank_main(rank, p, n, l, weights, senders, rx, barrier, active, faults)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });

    let mut mate = vec![UNMATCHED; n];
    for pairs in results {
        for (v, m) in pairs {
            mate[v as usize] = m;
        }
    }
    view.to_matching(&mate)
}

/// Candidate of `s` among neighbors the rank believes are unmatched.
fn find_mate_local(view: &UnifiedView<'_>, s: VertexId, known_matched: &[bool]) -> VertexId {
    let mut best = UNMATCHED;
    let mut best_w = 0.0f64;
    view.for_each_neighbor(s, |t, w| {
        if w <= 0.0 || known_matched[t as usize] {
            return;
        }
        if best == UNMATCHED || unified_edge_gt(w, s, t, best_w, s, best) {
            best = t;
            best_w = w;
        }
    });
    best
}

/// One rank's share of the distributed locally-dominant protocol,
/// factored out of the simulated driver so any transport can run it:
/// the simulator below drives it over in-process channels, the real
/// distributed layer (`netalign_core::dist`) over framed sockets. The
/// struct holds everything a rank owns — mate/candidate state for its
/// vertex block, pending proposals, the retransmission schedule — and
/// the three phase methods emit outgoing messages through a
/// `(dest_rank, msg)` callback, so the protocol logic (answer
/// timeouts, bounded exponential backoff, symmetric announcements)
/// lives here exactly once.
///
/// The driver contract, per round:
/// 1. [`phase_propose`](Self::phase_propose) — deliver its messages to
///    each destination's next `phase_match`;
/// 2. [`phase_match`](Self::phase_match) with the proposals that
///    arrived — deliver its announcements to each destination's next
///    `phase_invalidate`;
/// 3. [`phase_invalidate`](Self::phase_invalidate) with the arrived
///    announcements — returns this rank's activity flag; the driver
///    ORs the flags across ranks and feeds the result to a shared
///    [`Quiescence`] to decide termination.
///
/// The core does not borrow the graph: the phase methods take
/// `(l, weights)` per call, so a worker process can hold the core and
/// the deserialized graph side by side.
pub struct RankCore {
    /// Total unified vertices.
    n: usize,
    /// Effective rank count (`min(num_ranks, n)`).
    p: usize,
    /// Owned vertex block `[lo, hi)` (empty when `rank >= p`).
    lo: usize,
    hi: usize,
    /// Hardened mode: retransmission + grace-window termination.
    faulty: bool,
    mate: Vec<VertexId>,
    candidate: Vec<VertexId>,
    proposals: Vec<Vec<VertexId>>,
    known_matched: Vec<bool>,
    dirty: Vec<VertexId>,
    matched_now: Vec<(VertexId, VertexId)>,
    // Announcements drained early: a fast rank may broadcast `Matched`
    // while this rank is still draining phase-2 proposals, so phase 2
    // defers them here for phase 3 instead of asserting them away.
    deferred: Vec<DistMsg>,
    // Faulty-mode retransmission schedule, indexed by (v - lo): a
    // proposal whose sender is still unmatched at round `resend_at`
    // has timed out and is re-sent, after which the window doubles up
    // to [`RESEND_BACKOFF_CAP`]. Fresh information (a dirty vertex)
    // resets the schedule so reactions stay immediate.
    resend_at: Vec<usize>,
    backoff: Vec<usize>,
}

impl RankCore {
    /// State for `rank` of `num_ranks` over the unified vertex set of
    /// `l`. Ranks at or past the effective rank count own an empty
    /// block and simply relay protocol rounds.
    ///
    /// # Panics
    /// Panics if `num_ranks == 0`.
    pub fn new(l: &BipartiteGraph, rank: usize, num_ranks: usize, faulty: bool) -> Self {
        assert!(num_ranks >= 1, "need at least one rank");
        let n = l.num_left() + l.num_right();
        let p = num_ranks.min(n).max(1);
        let block = n.div_ceil(p).max(1);
        // Both bounds clamp to `n`: when `block` rounds up, the last
        // ranks' nominal blocks can start past the vertex set (e.g.
        // n=160, p=64 → block=3, rank 54 starts at 162) and they own
        // an empty range like the `rank >= p` relays.
        let (lo, hi) = if rank >= p {
            (n, n)
        } else {
            ((rank * block).min(n), ((rank + 1) * block).min(n))
        };
        let sched = if faulty { hi - lo } else { 0 };
        RankCore {
            n,
            p,
            lo,
            hi,
            faulty,
            mate: vec![UNMATCHED; hi - lo],
            candidate: vec![UNMATCHED; hi - lo],
            proposals: vec![Vec::new(); hi - lo],
            known_matched: vec![false; n],
            dirty: (lo as VertexId..hi as VertexId).collect(),
            matched_now: Vec::new(),
            deferred: Vec::new(),
            resend_at: vec![0; sched],
            backoff: vec![1; sched],
        }
    }

    /// Effective rank count: every owner returned by the phase
    /// callbacks is `< effective_ranks()`.
    pub fn effective_ranks(&self) -> usize {
        self.p
    }

    #[inline]
    fn owns(&self, v: VertexId) -> bool {
        (self.lo..self.hi).contains(&(v as usize))
    }

    /// Phase 1: propose. Fault-free runs propose only for dirty
    /// vertices. Under faults a dropped proposal must eventually be
    /// retransmitted, but re-sending every proposal every round floods
    /// the links — instead each unanswered proposal times out on its
    /// vertex's bounded exponential-backoff schedule.
    ///
    /// # Panics
    /// Panics if `weights.len() != l.num_edges()`.
    pub fn phase_propose(
        &mut self,
        l: &BipartiteGraph,
        weights: &[f64],
        round: usize,
        mut send: impl FnMut(usize, DistMsg),
    ) {
        let view = UnifiedView::new(l, weights);
        let (lo, hi) = (self.lo, self.hi);
        if self.faulty {
            for &v in &self.dirty {
                let li = v as usize - lo;
                self.backoff[li] = 1;
                self.resend_at[li] = round;
            }
            self.dirty.clear();
            for li in 0..(hi - lo) {
                if self.mate[li] == UNMATCHED && round >= self.resend_at[li] {
                    self.dirty.push((lo + li) as VertexId);
                }
            }
        }
        for i in 0..self.dirty.len() {
            let v = self.dirty[i];
            let li = v as usize - lo;
            if self.mate[li] != UNMATCHED {
                continue;
            }
            let c = find_mate_local(&view, v, &self.known_matched);
            self.candidate[li] = c;
            if c != UNMATCHED {
                send(
                    owner(c, self.n, self.p),
                    DistMsg::Propose { from: v, to: c },
                );
                if self.faulty {
                    self.resend_at[li] = round + self.backoff[li];
                    self.backoff[li] = (self.backoff[li] * 2).min(RESEND_BACKOFF_CAP);
                }
            }
        }
        self.dirty.clear();
    }

    /// Phase 2: drain arrived proposals, match locally-dominant pairs,
    /// broadcast symmetric announcements. (`Matched` broadcasts from
    /// ranks already past their own matching loop are deferred to
    /// phase 3.)
    pub fn phase_match(&mut self, inbox: &[DistMsg], mut send: impl FnMut(usize, DistMsg)) {
        let (lo, hi) = (self.lo, self.hi);
        for &msg in inbox {
            if let DistMsg::Propose { from, to } = msg {
                debug_assert!(self.owns(to));
                let li = to as usize - lo;
                if self.mate[li] != UNMATCHED {
                    // `to` already matched. Under faults the proposer
                    // may have missed the announcement — retransmit the
                    // pair to its owner so it stops proposing here.
                    if self.faulty {
                        send(
                            owner(from, self.n, self.p),
                            DistMsg::Matched {
                                v: to,
                                mate: self.mate[li],
                            },
                        );
                    }
                } else if !self.proposals[li].contains(&from) {
                    self.proposals[li].push(from);
                }
            } else {
                self.deferred.push(msg);
            }
        }
        self.matched_now.clear();
        for li in 0..(hi - lo) {
            if self.mate[li] != UNMATCHED {
                continue;
            }
            let c = self.candidate[li];
            if c == UNMATCHED {
                continue;
            }
            // A proposal from exactly our candidate makes the pair
            // locally dominant. (A stored proposal stays valid while we
            // are unmatched; see module docs.)
            if self.proposals[li].contains(&c) && !self.known_matched[c as usize] {
                let v = (lo + li) as VertexId;
                self.mate[li] = c;
                self.matched_now.push((v, c));
            }
        }
        for i in 0..self.matched_now.len() {
            let (v, c) = self.matched_now[i];
            for r in 0..self.p {
                send(r, DistMsg::Matched { v, mate: c });
                send(r, DistMsg::Matched { v: c, mate: v });
            }
        }
    }

    /// Phase 3: drain announcements (deferred ones first), invalidate
    /// neighbors. Every announcement names the full pair, so it
    /// teaches us about BOTH endpoints — that way losing one of the
    /// two twin broadcasts loses no information. Returns this rank's
    /// activity flag for the round (see [`Quiescence`]).
    ///
    /// # Panics
    /// Panics if `weights.len() != l.num_edges()`.
    pub fn phase_invalidate(
        &mut self,
        l: &BipartiteGraph,
        weights: &[f64],
        inbox: &[DistMsg],
    ) -> bool {
        let view = UnifiedView::new(l, weights);
        let lo = self.lo;
        let mut learned = false;
        let drained: Vec<DistMsg> = self
            .deferred
            .drain(..)
            .chain(inbox.iter().copied())
            .collect();
        for msg in drained {
            if let DistMsg::Matched { v, mate: m } = msg {
                for (x, y) in [(v, m), (m, v)] {
                    if self.known_matched[x as usize] {
                        continue; // duplicate announcement
                    }
                    learned = true;
                    self.known_matched[x as usize] = true;
                    if self.owns(x) {
                        self.mate[x as usize - lo] = y;
                        self.proposals[x as usize - lo].clear();
                    }
                    // Neighbors of x that we own and that pointed at x
                    // must recompute — the mirror of the paper's queue
                    // phase.
                    let dirty = &mut self.dirty;
                    let mate = &self.mate;
                    let candidate = &self.candidate;
                    let (blo, bhi) = (self.lo, self.hi);
                    view.for_each_neighbor(x, |u, _| {
                        if (blo..bhi).contains(&(u as usize))
                            && mate[u as usize - blo] == UNMATCHED
                            && candidate[u as usize - blo] == x
                        {
                            dirty.push(u);
                        }
                    });
                }
            } else {
                unreachable!("Propose messages cannot cross the phase-3 barriers");
            }
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();

        // Fault-free runs stop at the first globally quiet round;
        // faulty runs treat new matches/knowledge as activity, count a
        // proposal still waiting out its backoff window as activity
        // too (so quiescence cannot fire while a retransmission is
        // owed), and wait out a grace window so in-flight messages can
        // land.
        if self.faulty {
            let pending_resend = (0..(self.hi - lo)).any(|li| {
                self.mate[li] == UNMATCHED
                    && self.candidate[li] != UNMATCHED
                    && !self.known_matched[self.candidate[li] as usize]
            });
            !self.matched_now.is_empty() || learned || !self.dirty.is_empty() || pending_resend
        } else {
            !self.dirty.is_empty()
        }
    }

    /// The matched pairs this rank owns.
    pub fn pairs(&self) -> Vec<(VertexId, VertexId)> {
        (self.lo..self.hi)
            .filter(|&v| self.mate[v - self.lo] != UNMATCHED)
            .map(|v| (v as VertexId, self.mate[v - self.lo]))
            .collect()
    }
}

/// The protocol's global termination rule, shared by every driver: a
/// fault-free run stops at the first globally quiet round; a faulty
/// run waits out [`Self::GRACE`] consecutive quiet rounds (so
/// in-flight retransmissions can land) under a hard round cap.
#[derive(Clone, Copy, Debug)]
pub struct Quiescence {
    faulty: bool,
    round: usize,
    quiet: usize,
    round_cap: usize,
}

impl Quiescence {
    /// Faulty runs only quit after this many consecutive quiet rounds,
    /// giving dropped retransmissions time to get through.
    pub const GRACE: usize = 3;

    /// Rule for an `n`-vertex instance. The cap is a hard safety net
    /// for faulty runs; the grace-window quiescence test terminates
    /// every practical run long before it.
    pub fn new(faulty: bool, n: usize) -> Self {
        Quiescence {
            faulty,
            round: 0,
            quiet: 0,
            round_cap: 8 * n + 64,
        }
    }

    /// Current 0-based round.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Record the round's global activity flag (the OR over every
    /// rank's [`RankCore::phase_invalidate`] result). Returns `true`
    /// when the protocol is done; otherwise advances to the next
    /// round.
    pub fn step(&mut self, keep_going: bool) -> bool {
        self.quiet = if keep_going { 0 } else { self.quiet + 1 };
        let done = if self.faulty {
            self.quiet >= Self::GRACE
        } else {
            self.quiet >= 1
        };
        if done || (self.faulty && self.round + 1 >= self.round_cap) {
            return true;
        }
        self.round += 1;
        false
    }
}

/// Assemble the per-rank pair lists produced by [`RankCore::pairs`]
/// into a [`Matching`] over `l`.
pub fn pairs_to_matching(
    l: &BipartiteGraph,
    pairs: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Matching {
    let view = UnifiedView::new(l, l.weights());
    let mut mate = vec![UNMATCHED; view.num_vertices()];
    for (v, m) in pairs {
        mate[v as usize] = m;
    }
    view.to_matching(&mate)
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: usize,
    p: usize,
    n: usize,
    l: &BipartiteGraph,
    weights: &[f64],
    senders: Vec<std::sync::mpsc::Sender<DistMsg>>,
    rx: std::sync::mpsc::Receiver<DistMsg>,
    barrier: &Barrier,
    active: &[AtomicBool; 2],
    faults: ChannelFaults,
) -> Vec<(VertexId, VertexId)> {
    let mut core = RankCore::new(l, rank, p, faults.active());
    let mut link = FaultyLink {
        senders,
        faults,
        sent: 0,
    };
    let mut q = Quiescence::new(faults.active(), n);
    loop {
        core.phase_propose(l, weights, q.round(), |dest, msg| link.send(dest, msg));
        barrier.wait();

        let inbox: Vec<DistMsg> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        core.phase_match(&inbox, |dest, msg| link.send(dest, msg));
        barrier.wait();

        let inbox: Vec<DistMsg> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        let progress = core.phase_invalidate(l, weights, &inbox);

        // Termination: double-buffered global activity flag feeding
        // the shared [`Quiescence`] rule.
        let cur = q.round() % 2;
        if progress {
            active[cur].store(true, Ordering::SeqCst);
        }
        barrier.wait();
        let keep_going = active[cur].load(Ordering::SeqCst);
        active[(q.round() + 1) % 2].store(false, Ordering::SeqCst);
        barrier.wait();
        if q.step(keep_going) {
            break;
        }
    }
    core.pairs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::serial_local_dominant;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, pr: f64) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(pr) {
                    entries.push((a as u32, b as u32, rng.gen_range(0.1..5.0)));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn single_rank_equals_serial() {
        for seed in 0..10 {
            let l = random_l(seed, 15, 13, 0.3);
            assert_eq!(
                distributed_local_dominant(&l, l.weights(), 1),
                serial_local_dominant(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn many_ranks_equal_serial() {
        for seed in 20..35 {
            let l = random_l(seed, 25, 22, 0.25);
            let serial = serial_local_dominant(&l, l.weights());
            for ranks in [2, 3, 4, 7] {
                assert_eq!(
                    distributed_local_dominant(&l, l.weights(), ranks),
                    serial,
                    "seed {seed} ranks {ranks}"
                );
            }
        }
    }

    #[test]
    fn more_ranks_than_vertices() {
        let l = random_l(1, 3, 3, 0.8);
        let serial = serial_local_dominant(&l, l.weights());
        assert_eq!(distributed_local_dominant(&l, l.weights(), 64), serial);
    }

    #[test]
    fn rank_blocks_that_round_past_the_vertex_set_are_empty() {
        // n = 160, p = 64 → block = 3 and rank 54's nominal range
        // starts at 162 > n. Those trailing ranks must degrade to
        // empty relays (regression: `hi - lo` underflowed).
        let l = random_l(21, 80, 80, 0.1);
        let serial = serial_local_dominant(&l, l.weights());
        assert_eq!(distributed_local_dominant(&l, l.weights(), 64), serial);
        for rank in [53, 54, 63] {
            let core = RankCore::new(&l, rank, 64, false);
            assert!(core.pairs().is_empty());
        }
    }

    #[test]
    fn empty_graph_terminates() {
        let l = BipartiteGraph::from_entries(4, 4, Vec::<(u32, u32, f64)>::new());
        let m = distributed_local_dominant(&l, l.weights(), 3);
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn cross_partition_pairs_are_found() {
        // Force the dominant pair to straddle the partition boundary:
        // left vertices live in rank 0's block, right in the last.
        let l = BipartiteGraph::from_entries(
            2,
            2,
            vec![(0, 0, 5.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let m = distributed_local_dominant(&l, l.weights(), 4);
        assert_eq!(m.mate_of_left(0), Some(0));
        assert_eq!(m.mate_of_left(1), Some(1));
    }

    #[test]
    fn deterministic_across_runs_and_rank_counts() {
        let l = random_l(9, 40, 40, 0.15);
        let reference = distributed_local_dominant(&l, l.weights(), 2);
        for _ in 0..5 {
            assert_eq!(distributed_local_dominant(&l, l.weights(), 5), reference);
        }
    }

    /// Exact optimum for the half-approximation bound.
    fn exact_weight(l: &BipartiteGraph) -> f64 {
        crate::max_weight_matching(l, l.weights(), crate::MatcherKind::Exact).weight(l, l.weights())
    }

    #[test]
    fn dropped_messages_keep_half_approximation_and_terminate() {
        for seed in [2, 7, 11] {
            let l = random_l(seed, 24, 20, 0.3);
            let half = exact_weight(&l) / 2.0;
            for ranks in [2, 3, 5] {
                for drop_every in [2, 3, 7] {
                    let faults = ChannelFaults {
                        drop_every,
                        dup_every: 0,
                    };
                    // Completing at all proves termination despite the
                    // losses (a wedged protocol would hang the test).
                    let m = distributed_local_dominant_faulty(&l, l.weights(), ranks, faults);
                    assert!(
                        m.is_valid(&l),
                        "seed {seed} ranks {ranks} drop {drop_every}"
                    );
                    let w = m.weight(&l, l.weights());
                    assert!(
                        w + 1e-9 >= half,
                        "half-approximation violated: {w} < {half} \
                         (seed {seed} ranks {ranks} drop {drop_every})"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicated_messages_do_not_change_the_matching() {
        for seed in [3, 13] {
            let l = random_l(seed, 22, 25, 0.25);
            let serial = serial_local_dominant(&l, l.weights());
            for ranks in [2, 4] {
                for dup_every in [1, 2, 5] {
                    let faults = ChannelFaults {
                        drop_every: 0,
                        dup_every,
                    };
                    assert_eq!(
                        distributed_local_dominant_faulty(&l, l.weights(), ranks, faults),
                        serial,
                        "seed {seed} ranks {ranks} dup {dup_every}"
                    );
                }
            }
        }
    }

    #[test]
    fn backoff_retransmission_survives_heavy_loss() {
        // Half of all traffic dropped: correctness now rests entirely on
        // the timed-out proposals being retransmitted on the backoff
        // schedule. Completing at all proves a silent (lossy) peer
        // cannot stall termination; maximality proves no vertex gave up
        // while a viable partner was still free.
        for seed in [4, 17] {
            let l = random_l(seed, 26, 24, 0.3);
            let half = exact_weight(&l) / 2.0;
            for ranks in [2, 4, 6] {
                let faults = ChannelFaults {
                    drop_every: 2,
                    dup_every: 0,
                };
                let m = distributed_local_dominant_faulty(&l, l.weights(), ranks, faults);
                assert!(m.is_valid(&l), "seed {seed} ranks {ranks}");
                let w = m.weight(&l, l.weights());
                assert!(
                    w + 1e-9 >= half,
                    "half-approximation violated under heavy loss: {w} < {half} \
                     (seed {seed} ranks {ranks})"
                );
                assert!(m.is_maximal(&l, l.weights()), "seed {seed} ranks {ranks}");
            }
        }
    }

    #[test]
    fn lossless_backoff_path_equals_serial() {
        // Duplication alone activates faulty mode — and with it the
        // backoff re-propose schedule — without losing any message, so
        // the retransmission machinery must be a pure no-op on the
        // final matching: candidates evolve exactly as in the
        // fault-free protocol.
        for seed in [6, 19] {
            let l = random_l(seed, 28, 26, 0.25);
            let serial = serial_local_dominant(&l, l.weights());
            for ranks in [3, 5] {
                let faults = ChannelFaults {
                    drop_every: 0,
                    dup_every: 1,
                };
                assert_eq!(
                    distributed_local_dominant_faulty(&l, l.weights(), ranks, faults),
                    serial,
                    "seed {seed} ranks {ranks}"
                );
            }
        }
    }

    #[test]
    fn combined_drop_and_dup_faults_keep_the_guarantees() {
        let l = random_l(5, 30, 30, 0.2);
        let half = exact_weight(&l) / 2.0;
        let faults = ChannelFaults {
            drop_every: 3,
            dup_every: 4,
        };
        for ranks in [2, 6] {
            let m = distributed_local_dominant_faulty(&l, l.weights(), ranks, faults);
            assert!(m.is_valid(&l), "ranks {ranks}");
            let w = m.weight(&l, l.weights());
            assert!(w + 1e-9 >= half, "ranks {ranks}: {w} < {half}");
            // The matching is also maximal: no edge with two free
            // endpoints is left behind once the faulty run settles.
            assert!(m.is_maximal(&l, l.weights()), "ranks {ranks}");
        }
    }
}
