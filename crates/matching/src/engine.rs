//! [`MatcherEngine`] — the preallocated, warm-startable rounding
//! matcher that both aligner engines call once per rounding step.
//!
//! The aligners of `netalign-core` round a *sequence* of weight vectors
//! over one fixed graph `L`. The free functions of [`crate::approx`]
//! treat every call as independent: they allocate a fresh working set
//! (mate/candidate/queue/reprocess arrays or proposal slots) and start
//! from nothing. This engine amortizes both costs:
//!
//! * **Zero steady-state allocation** — every array the matcher touches
//!   is sized once in [`MatcherEngine::new`] and recycled across calls,
//!   extending the persistent-pool guarantee of the iteration kernels
//!   through the rounding step (asserted by the counting allocator in
//!   `crates/core/tests/alloc_free.rs`).
//! * **Warm starts** — consecutive weight vectors differ little once an
//!   aligner begins to converge. A warm engine keeps the previous mate
//!   state and reprocesses only what a weight change can actually
//!   affect (the rule below), with `warm_hits` / `reseeded_vertices`
//!   counters quantifying the savings.
//!
//! # Determinism of the packed-CAS Suitor slot
//!
//! The lock-free Suitor variant ([`crate::approx::suitor`]) packs a
//! proposal into one `u64` as `(score << 32) | proposer`, where the
//! score is the proposing edge's rank inside the target's adjacency
//! under the crate's total edge order. Scores at one target are
//! distinct (each proposer reaches it through exactly one edge), so an
//! integer `fetch_max` on the slot decides *exactly* the comparison
//! `unified_edge_gt` would. The slot value is monotonically
//! non-decreasing; a rejected proposal therefore stays rejected, a lost
//! race strictly increased the slot, and the proposal dynamics converge
//! to their unique stable fixed point — the locally-dominant matching —
//! on every schedule. That is what keeps engine results bit-identical
//! at any pool size, matching the queue-based LD matcher. (Suitor
//! *event counters* — proposals, displacements, lost races — remain
//! schedule-dependent; the determinism tests exclude them.)
//!
//! # The warm-start invalidation rule
//!
//! A warm engine remembers, per run: the weight vector, the edge ids
//! sorted by the total order, each edge's rank, and the rank at which
//! each vertex's pair was decided. On the next run it diffs the new
//! weights bit-for-bit and computes
//!
//! ```text
//! r* = min over changed edges e of
//!        min( old rank of e,  insertion rank of e's new key in the old order )
//! ```
//!
//! The first `r*` entries of the *new* sorted order provably equal the
//! first `r*` of the old one (no changed edge can enter the prefix, and
//! unchanged edges cannot reorder among themselves), so every pair
//! decided before rank `r*` is decided identically by a cold run on the
//! new weights: those vertices are *kept* (frozen), everything else —
//! including every unmatched vertex — is *reseeded* and re-run through
//! the matcher. The residual run is the greedy remainder of the same
//! total order, so warm results are bit-identical to cold ones at every
//! pool size (asserted by the equivalence tests).
//!
//! Invalidation: the diff is taken against the engine's **own** last
//! weight vector, so feeding any weight sequence over the *same* graph
//! is always correct — stale state degrades only performance, never the
//! result. The one hard rule is that the graph must not change between
//! runs (shapes are asserted). Callers that restore checkpoints or
//! otherwise rewind time should call [`MatcherEngine::invalidate`] to
//! force the next run cold, which both aligner engines do in
//! `restore_state`.

use crate::approx::parallel_ld::{find_mate, ld_phase2, match_vertex, LdState, NEVER, UNSET};
use crate::approx::suitor::{
    extract_mates_into, propose_chain, SuitorWorkspace, EMPTY_SLOT, FROZEN_SCORE,
};
use crate::approx::{degree_grains, unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use netalign_trace::MatcherCounters;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which ½-approximate matcher the engine runs per rounding call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoundingMatcher {
    /// The paper's queue-based parallel locally-dominant algorithm
    /// (Algorithms 1–3) on recycled arrays — the default.
    #[default]
    Ld,
    /// The lock-free parallel Suitor with packed `fetch_max` slots.
    Suitor,
}

/// FNV-1a fingerprint of a bipartite graph's *structure*: shape plus
/// the endpoint list in the global edge order. Weights are deliberately
/// excluded — a [`MatcherEngine`] matches arbitrary weight vectors over
/// one fixed structure, so two `L`s with equal structure but different
/// weights are interchangeable bindings.
pub fn graph_fingerprint(l: &BipartiteGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(l.num_left() as u64);
    eat(l.num_right() as u64);
    eat(l.num_edges() as u64);
    for e in 0..l.num_edges() {
        let (a, b) = l.endpoints(e);
        eat(a as u64);
        eat(b as u64);
    }
    h
}

/// Preallocated, optionally warm-started rounding matcher for one fixed
/// graph `L`. See the module docs for the determinism and invalidation
/// arguments.
pub struct MatcherEngine {
    kind: RoundingMatcher,
    warm: bool,
    na: usize,
    nb: usize,
    m: usize,
    n: usize,
    /// Structure fingerprint of the graph the engine is bound to (see
    /// [`graph_fingerprint`]); lets owners that move engines between
    /// runs (the serving engine cache) verify the binding in O(1).
    graph_fp: u64,

    // Degree-aware grains over the unified vertex set (data-dependent
    // only — never pool-dependent), balancing adjacency entries so
    // power-law hubs spread across rayon tasks.
    vertex_bounds: Vec<u32>,
    entry_bounds: Vec<usize>,

    // Queue-based LD working set (kind == Ld).
    mate: Vec<std::sync::atomic::AtomicU32>,
    candidate: Vec<std::sync::atomic::AtomicU32>,
    q_cur: Vec<std::sync::atomic::AtomicU32>,
    q_next: Vec<std::sync::atomic::AtomicU32>,
    tail_cur: AtomicUsize,
    tail_next: AtomicUsize,
    reprocess: Vec<std::sync::atomic::AtomicU32>,
    reprocess_tail: AtomicUsize,
    claimed: Vec<std::sync::atomic::AtomicU32>,

    // Lock-free Suitor working set (kind == Suitor).
    suitor: Option<SuitorWorkspace>,

    // Warm-start memory (warm == true): see the module docs.
    prev_weights: Vec<f64>,
    sorted_edges: Vec<u32>,
    sorted_scratch: Vec<u32>,
    rank_of_edge: Vec<u32>,
    decided_at: Vec<u32>,
    changed: Vec<u32>,
    changed_mark: Vec<bool>,
    touched: Vec<u32>,
    touched_mark: Vec<bool>,
    reseed: Vec<u32>,
    warm_valid: bool,

    // Recycled output.
    mate_plain: Vec<VertexId>,
    out: Matching,
}

impl MatcherEngine {
    /// Size every buffer for `l`. `warm` additionally allocates the
    /// order/rank memory that warm starts diff against; a cold engine
    /// skips it entirely.
    pub fn new(l: &BipartiteGraph, kind: RoundingMatcher, warm: bool) -> Self {
        let na = l.num_left();
        let nb = l.num_right();
        let m = l.num_edges();
        let n = na + nb;
        assert!(
            (n as u64) < u32::MAX as u64,
            "vertex count must fit the u32 mate/slot encoding"
        );
        let (vertex_bounds, entry_bounds) = degree_grains(l);
        let graph_fp = graph_fingerprint(l);
        let ld = kind == RoundingMatcher::Ld;
        let atoms = |len: usize, v: u32| {
            (0..len)
                .map(|_| std::sync::atomic::AtomicU32::new(v))
                .collect::<Vec<_>>()
        };
        MatcherEngine {
            kind,
            warm,
            na,
            nb,
            m,
            n,
            graph_fp,
            vertex_bounds,
            entry_bounds,
            mate: if ld { atoms(n, UNMATCHED) } else { Vec::new() },
            candidate: if ld { atoms(n, UNSET) } else { Vec::new() },
            q_cur: if ld { atoms(n, UNMATCHED) } else { Vec::new() },
            q_next: if ld { atoms(n, UNMATCHED) } else { Vec::new() },
            tail_cur: AtomicUsize::new(0),
            tail_next: AtomicUsize::new(0),
            reprocess: if ld { atoms(n, UNMATCHED) } else { Vec::new() },
            reprocess_tail: AtomicUsize::new(0),
            claimed: if ld { atoms(n, NEVER) } else { Vec::new() },
            suitor: (!ld).then(|| SuitorWorkspace::new(l)),
            prev_weights: vec![0.0; if warm { m } else { 0 }],
            sorted_edges: vec![0u32; if warm { m } else { 0 }],
            sorted_scratch: vec![0u32; if warm { m } else { 0 }],
            rank_of_edge: vec![0u32; if warm { m } else { 0 }],
            decided_at: vec![u32::MAX; if warm { n } else { 0 }],
            changed: Vec::with_capacity(if warm { m } else { 0 }),
            changed_mark: vec![false; if warm { m } else { 0 }],
            touched: Vec::with_capacity(if warm && !ld { n } else { 0 }),
            touched_mark: vec![false; if warm && !ld { n } else { 0 }],
            reseed: Vec::with_capacity(if warm { n } else { 0 }),
            warm_valid: false,
            mate_plain: vec![UNMATCHED; n],
            out: Matching::empty(na, nb),
        }
    }

    /// The matcher variant this engine runs.
    pub fn kind(&self) -> RoundingMatcher {
        self.kind
    }

    /// Whether warm starts are enabled.
    pub fn warm(&self) -> bool {
        self.warm
    }

    /// Force the next [`MatcherEngine::run`] cold. Correctness never
    /// requires this — the engine diffs against its own last weights —
    /// but callers that rewind state (checkpoint restore) should drop
    /// the stale warm memory rather than pay a useless full diff.
    pub fn invalidate(&mut self) {
        self.warm_valid = false;
    }

    /// Structure fingerprint of the graph this engine was built for.
    /// Owners that carry engines across runs (the serving engine cache,
    /// adoption into a fresh aligner engine) compare this against
    /// [`graph_fingerprint`] of their graph to prove the binding in
    /// O(1) instead of re-hashing per call.
    pub fn bound_fingerprint(&self) -> u64 {
        self.graph_fp
    }

    /// True when this engine can round weight vectors over `l`:
    /// identical shape *and* identical edge structure (fingerprint).
    pub fn binds(&self, l: &BipartiteGraph) -> bool {
        self.na == l.num_left()
            && self.nb == l.num_right()
            && self.m == l.num_edges()
            && self.graph_fp == graph_fingerprint(l)
    }

    /// Return the engine to its post-construction state: warm memory
    /// invalidated and the recycled output cleared, with every buffer
    /// kept allocated. A reset engine's next [`MatcherEngine::run`] is
    /// a cold pass and therefore bit-identical to a freshly built
    /// engine's first run — the contract the engine-cache reset path in
    /// `netalignd` is gated on (pinned by the `engine_cache` tests).
    pub fn reset(&mut self) {
        self.warm_valid = false;
        for slot in &mut self.mate_plain {
            *slot = UNMATCHED;
        }
        self.out = Matching::empty(self.na, self.nb);
        if self.warm {
            for d in &mut self.decided_at {
                *d = u32::MAX;
            }
            self.changed.clear();
            self.reseed.clear();
        }
    }

    /// Compute the ½-approximate matching of `weights` on `l` — the
    /// same graph the engine was built for — into the recycled output.
    /// Steady-state calls perform no heap allocation.
    pub fn run(
        &mut self,
        l: &BipartiteGraph,
        weights: &[f64],
        counters: &MatcherCounters,
    ) -> &Matching {
        assert_eq!(l.num_left(), self.na, "engine is bound to one graph");
        assert_eq!(l.num_right(), self.nb, "engine is bound to one graph");
        assert_eq!(l.num_edges(), self.m, "engine is bound to one graph");
        assert_eq!(weights.len(), self.m);

        if self.warm && self.warm_valid {
            if !self.detect_changes(weights) {
                // Identical weights: the previous output *is* the
                // answer; every vertex's state is reused.
                counters.add_warm_hits(self.n as u64);
                return &self.out;
            }
            let r_star = self.prefix_rank(l, weights);
            let kept = self.build_reseed(r_star);
            counters.add_warm_hits(kept);
            counters.add_reseeded_vertices(self.reseed.len() as u64);
            match self.kind {
                RoundingMatcher::Ld => self.run_ld_warm(l, weights, counters),
                RoundingMatcher::Suitor => self.run_suitor_warm(l, weights, counters),
            }
            self.maintain_order_warm(l, weights, r_star);
            self.update_decided_warm(l);
            // Unchanged entries are bit-identical by definition of the
            // diff; refreshing just the changed ones keeps the
            // bookkeeping cost proportional to the change, not to `m`.
            for &e in &self.changed {
                self.prev_weights[e as usize] = weights[e as usize];
            }
        } else {
            match self.kind {
                RoundingMatcher::Ld => self.run_ld_cold(l, weights, counters),
                RoundingMatcher::Suitor => self.run_suitor_cold(l, weights, counters),
            }
            if self.warm {
                self.maintain_order_cold(l, weights);
                self.update_decided_cold(l);
                self.prev_weights.copy_from_slice(weights);
            }
        }
        self.warm_valid = self.warm;
        self.out.refill_from_unified(self.na, &self.mate_plain);
        &self.out
    }

    // ---- change detection & the r* prefix rule --------------------

    /// Bit-exact diff of `weights` against the previous run, into the
    /// recycled `changed` list. Returns whether anything changed.
    fn detect_changes(&mut self, weights: &[f64]) -> bool {
        self.changed.clear();
        for (e, (w, pw)) in weights.iter().zip(&self.prev_weights).enumerate() {
            if w.to_bits() != pw.to_bits() {
                self.changed.push(e as u32);
            }
        }
        !self.changed.is_empty()
    }

    /// `r*` of the module docs: the longest prefix of the old sorted
    /// order guaranteed to survive in the new one.
    fn prefix_rank(&self, l: &BipartiteGraph, weights: &[f64]) -> usize {
        let na = self.na as VertexId;
        let mut r = self.m;
        for &e in &self.changed {
            let r_old = self.rank_of_edge[e as usize] as usize;
            let (ae, be) = l.endpoints(e as usize);
            let (be_u, w_new) = (na + be, weights[e as usize]);
            // Old-order entries whose *old* key beats e's *new* key:
            // monotone along the descending order, so partition_point
            // finds the insertion rank.
            let ins = self.sorted_edges.partition_point(|&f| {
                let (af, bf) = l.endpoints(f as usize);
                unified_edge_gt(self.prev_weights[f as usize], af, na + bf, w_new, ae, be_u)
            });
            r = r.min(r_old).min(ins);
        }
        r
    }

    /// Split vertices into kept (pair decided before `r_star`) and
    /// reseeded (everything else, including all unmatched vertices).
    /// Returns the kept count; fills the recycled `reseed` list.
    fn build_reseed(&mut self, r_star: usize) -> u64 {
        self.reseed.clear();
        let mut kept = 0u64;
        for (v, &d) in self.decided_at.iter().enumerate() {
            if (d as usize) < r_star {
                kept += 1;
            } else {
                self.reseed.push(v as u32);
            }
        }
        kept
    }

    // ---- queue-based LD paths -------------------------------------

    fn run_ld_cold(&mut self, l: &BipartiteGraph, weights: &[f64], counters: &MatcherCounters) {
        let view = UnifiedView::new(l, weights);
        let vb = &self.vertex_bounds;
        let grains = vb.len() - 1;
        let (mate, candidate, claimed) = (&self.mate, &self.candidate, &self.claimed);
        (0..grains).into_par_iter().with_min_len(1).for_each(|g| {
            for v in vb[g] as usize..vb[g + 1] as usize {
                mate[v].store(UNMATCHED, Ordering::Relaxed);
                candidate[v].store(UNSET, Ordering::Relaxed);
                claimed[v].store(NEVER, Ordering::Relaxed);
            }
        });
        self.tail_cur.store(0, Ordering::Relaxed);
        self.tail_next.store(0, Ordering::Relaxed);
        self.reprocess_tail.store(0, Ordering::Relaxed);

        counters.add_find_mate_initial(self.n as u64);
        (0..grains).into_par_iter().with_min_len(1).for_each(|g| {
            for v in vb[g]..vb[g + 1] {
                candidate[v as usize].store(find_mate(&view, v, mate), Ordering::SeqCst);
            }
        });
        let (q_cur, tail_cur) = (&self.q_cur, &self.tail_cur);
        (0..grains).into_par_iter().with_min_len(1).for_each(|g| {
            for v in vb[g]..vb[g + 1] {
                match_vertex(&view, v, mate, candidate, q_cur, tail_cur, counters);
            }
        });
        self.ld_phase2_and_extract(&view, counters);
    }

    fn run_ld_warm(&mut self, l: &BipartiteGraph, weights: &[f64], counters: &MatcherCounters) {
        let view = UnifiedView::new(l, weights);
        let (mate, candidate, claimed) = (&self.mate, &self.candidate, &self.claimed);
        // Kept vertices retain their mate entries from the previous
        // run; they are never collected (the phase-2 sweep skips
        // matched vertices), so their stale candidate/claimed slots are
        // never read. Reseeded slots must be fully reset — in
        // particular `claimed`, because the round counter restarts at 0
        // every run and a stale round number would defeat the dedup.
        self.reseed.par_iter().with_min_len(256).for_each(|&v| {
            mate[v as usize].store(UNMATCHED, Ordering::Relaxed);
            candidate[v as usize].store(UNSET, Ordering::Relaxed);
            claimed[v as usize].store(NEVER, Ordering::Relaxed);
        });
        self.tail_cur.store(0, Ordering::Relaxed);
        self.tail_next.store(0, Ordering::Relaxed);
        self.reprocess_tail.store(0, Ordering::Relaxed);

        counters.add_find_mate_initial(self.reseed.len() as u64);
        self.reseed.par_iter().with_min_len(64).for_each(|&v| {
            candidate[v as usize].store(find_mate(&view, v, mate), Ordering::SeqCst);
        });
        let (q_cur, tail_cur) = (&self.q_cur, &self.tail_cur);
        self.reseed.par_iter().with_min_len(64).for_each(|&v| {
            match_vertex(&view, v, mate, candidate, q_cur, tail_cur, counters);
        });
        self.ld_phase2_and_extract(&view, counters);
    }

    fn ld_phase2_and_extract(&mut self, view: &UnifiedView<'_>, counters: &MatcherCounters) {
        let st = LdState {
            mate: &self.mate,
            candidate: &self.candidate,
            q_cur: &self.q_cur,
            q_next: &self.q_next,
            tail_cur: &self.tail_cur,
            tail_next: &self.tail_next,
            reprocess: &self.reprocess,
            reprocess_tail: &self.reprocess_tail,
            claimed: &self.claimed,
        };
        ld_phase2(view, &st, counters);
        for (v, out) in self.mate_plain.iter_mut().enumerate() {
            *out = self.mate[v].load(Ordering::Acquire);
        }
    }

    // ---- lock-free Suitor paths -----------------------------------

    fn run_suitor_cold(&mut self, l: &BipartiteGraph, weights: &[f64], counters: &MatcherCounters) {
        let ws = self.suitor.as_mut().expect("suitor workspace");
        ws.sort_segments(l, weights, &self.vertex_bounds, &self.entry_bounds);
        ws.slots
            .par_iter()
            .with_min_len(1024)
            .for_each(|s| s.store(EMPTY_SLOT, Ordering::Relaxed));
        let (slots, sl, sr) = (&ws.slots, &ws.score_left, &ws.score_right);
        let vb = &self.vertex_bounds;
        let grains = vb.len() - 1;
        (0..grains).into_par_iter().with_min_len(1).for_each(|g| {
            for v in vb[g]..vb[g + 1] {
                propose_chain(l, weights, slots, sl, sr, v, counters);
            }
        });
        extract_mates_into(slots, &mut self.mate_plain);
    }

    fn run_suitor_warm(&mut self, l: &BipartiteGraph, weights: &[f64], counters: &MatcherCounters) {
        // Only segments incident to a changed edge can have stale order
        // or scores; every other segment is bit-identical under the new
        // weights.
        self.touched.clear();
        for &e in &self.changed {
            let (a, b) = l.endpoints(e as usize);
            for v in [a as usize, self.na + b as usize] {
                if !self.touched_mark[v] {
                    self.touched_mark[v] = true;
                    self.touched.push(v as u32);
                }
            }
        }
        let ws = self.suitor.as_mut().expect("suitor workspace");
        for &v in &self.touched {
            ws.resort_vertex(l, weights, v);
        }
        for &v in &self.touched {
            self.touched_mark[v as usize] = false;
        }
        // Kept pairs freeze at an undisplaceable score; reseeded slots
        // open empty. Proposals from reseeded vertices to kept ones are
        // rejected by the monotone pre-check, exactly as if the kept
        // vertices were matched in a cold run's history.
        for (v, s) in ws.slots.iter().enumerate() {
            s.store(
                ((FROZEN_SCORE as u64) << 32) | self.mate_plain[v] as u64,
                Ordering::Relaxed,
            );
        }
        for &v in &self.reseed {
            ws.slots[v as usize].store(EMPTY_SLOT, Ordering::Relaxed);
        }
        let (slots, sl, sr) = (&ws.slots, &ws.score_left, &ws.score_right);
        self.reseed.par_iter().with_min_len(64).for_each(|&v| {
            propose_chain(l, weights, slots, sl, sr, v, counters);
        });
        extract_mates_into(slots, &mut self.mate_plain);
    }

    // ---- warm-start order maintenance -----------------------------

    /// Full re-sort of the edge order (after a cold run in warm mode).
    fn maintain_order_cold(&mut self, l: &BipartiteGraph, weights: &[f64]) {
        let na = self.na as VertexId;
        for (i, e) in self.sorted_edges.iter_mut().enumerate() {
            *e = i as u32;
        }
        self.sorted_edges.sort_unstable_by(|&x, &y| {
            if edge_gt(l, weights, na, x, y) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        for (r, &e) in self.sorted_edges.iter().enumerate() {
            self.rank_of_edge[e as usize] = r as u32;
        }
    }

    /// Incremental re-sort: by construction of `r_star` the first
    /// `r_star` entries of the old order survive verbatim, and every
    /// changed edge sits in the suffix of both the old and the new
    /// order (its old rank and its insertion rank are both `>= r_star`).
    /// So only the suffix is merged: the old suffix with the changed
    /// entries skipped against the (few) changed edges sorted by their
    /// new keys. Unchanged edges keep bit-identical weights, so one
    /// comparison under the *new* weights orders both streams. Cost is
    /// `O(m - r_star)`, not `O(m)`.
    fn maintain_order_warm(&mut self, l: &BipartiteGraph, weights: &[f64], r_star: usize) {
        let na = self.na as VertexId;
        let Self {
            sorted_edges,
            sorted_scratch,
            changed,
            changed_mark,
            rank_of_edge,
            m,
            ..
        } = self;
        changed.sort_unstable_by(|&x, &y| {
            if edge_gt(l, weights, na, x, y) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        for &e in changed.iter() {
            changed_mark[e as usize] = true;
        }
        let (mut i, mut j) = (r_star, 0usize);
        for slot in sorted_scratch[r_star..].iter_mut() {
            while i < *m && changed_mark[sorted_edges[i] as usize] {
                i += 1;
            }
            let take_old = if i >= *m {
                false
            } else if j >= changed.len() {
                true
            } else {
                edge_gt(l, weights, na, sorted_edges[i], changed[j])
            };
            *slot = if take_old {
                i += 1;
                sorted_edges[i - 1]
            } else {
                j += 1;
                changed[j - 1]
            };
        }
        sorted_edges[r_star..].copy_from_slice(&sorted_scratch[r_star..]);
        for &e in changed.iter() {
            changed_mark[e as usize] = false;
        }
        for (off, &e) in sorted_edges[r_star..].iter().enumerate() {
            rank_of_edge[e as usize] = (r_star + off) as u32;
        }
    }

    /// Record the order rank at which each vertex's pair was decided
    /// (`u32::MAX` for unmatched vertices) — the kept/reseeded split of
    /// the next warm run. Full sweep, used after cold runs.
    fn update_decided_cold(&mut self, l: &BipartiteGraph) {
        self.decided_at.fill(u32::MAX);
        for a in 0..self.na {
            let mb = self.mate_plain[a];
            if mb == UNMATCHED {
                continue;
            }
            let b = mb - self.na as VertexId;
            let e = l
                .edge_id(a as VertexId, b)
                .expect("matched pair must be an L edge");
            let r = self.rank_of_edge[e];
            self.decided_at[a] = r;
            self.decided_at[self.na + b as usize] = r;
        }
    }

    /// Warm variant of the decided-rank bookkeeping. Kept pairs were
    /// decided inside the stable prefix, whose entries (and therefore
    /// ranks) are unchanged, and a reseeded vertex can only pair with
    /// another reseeded vertex (kept ones stay frozen to their mates) —
    /// so only the reseeded entries need rewriting: `O(|reseed|)`.
    fn update_decided_warm(&mut self, l: &BipartiteGraph) {
        for &v in &self.reseed {
            self.decided_at[v as usize] = u32::MAX;
        }
        let na = self.na as VertexId;
        for &v in &self.reseed {
            let a = v as usize;
            if a >= self.na {
                continue;
            }
            let mb = self.mate_plain[a];
            if mb == UNMATCHED {
                continue;
            }
            let b = mb - na;
            let e = l
                .edge_id(a as VertexId, b)
                .expect("matched pair must be an L edge");
            let r = self.rank_of_edge[e];
            self.decided_at[a] = r;
            self.decided_at[na as usize + b as usize] = r;
        }
    }
}

/// Total-order comparison of two edges by global id under `weights`.
#[inline]
fn edge_gt(l: &BipartiteGraph, weights: &[f64], na: VertexId, x: u32, y: u32) -> bool {
    let (ax, bx) = l.endpoints(x as usize);
    let (ay, by) = l.endpoints(y as usize);
    unified_edge_gt(
        weights[x as usize],
        ax,
        na + bx,
        weights[y as usize],
        ay,
        na + by,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::parallel_ld::ParallelLdOptions;
    use crate::approx::{parallel_local_dominant, parallel_suitor, serial_local_dominant};
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    /// A weight sequence with progressively sparser changes, modeling a
    /// converging aligner (sign flips included to exercise the w ≤ 0
    /// paths).
    fn weight_sequence(l: &BipartiteGraph, seed: u64, steps: usize) -> Vec<Vec<f64>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = l.num_edges();
        let mut w: Vec<f64> = l.weights().to_vec();
        let mut seq = vec![w.clone()];
        for s in 0..steps {
            let frac = 1.0 / (s + 1) as f64;
            for v in w.iter_mut() {
                if rng.gen_bool(frac.min(0.8)) {
                    *v += rng.gen_range(-1.5..1.5);
                }
            }
            if m > 0 {
                // Occasionally zero an edge outright.
                let e = rng.gen_range(0..m);
                if rng.gen_bool(0.5) {
                    w[e] = 0.0;
                }
            }
            seq.push(w.clone());
        }
        seq
    }

    #[test]
    fn cold_engine_matches_free_functions() {
        for seed in 0..12 {
            let l = random_l(seed, 35, 32, 0.2, seed % 2 == 0);
            let mut ld = MatcherEngine::new(&l, RoundingMatcher::Ld, false);
            let mut su = MatcherEngine::new(&l, RoundingMatcher::Suitor, false);
            let c = MatcherCounters::disabled();
            let reference = serial_local_dominant(&l, l.weights());
            assert_eq!(*ld.run(&l, l.weights(), c), reference, "seed {seed}");
            assert_eq!(*su.run(&l, l.weights(), c), reference, "seed {seed}");
            assert_eq!(
                parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default()),
                reference
            );
            assert_eq!(parallel_suitor(&l, l.weights()), reference);
        }
    }

    #[test]
    fn cold_ld_engine_counters_match_legacy() {
        // The engine's cold LD path must replay the legacy algorithm
        // event-for-event, not just result-for-result.
        let l = random_l(77, 50, 45, 0.15, true);
        let legacy = MatcherCounters::new(true);
        let _ = crate::approx::parallel_local_dominant_traced(
            &l,
            l.weights(),
            ParallelLdOptions::default(),
            &legacy,
        );
        let engine = MatcherCounters::new(true);
        let mut eng = MatcherEngine::new(&l, RoundingMatcher::Ld, false);
        let _ = eng.run(&l, l.weights(), &engine);
        assert_eq!(engine.snapshot(), legacy.snapshot());
    }

    #[test]
    fn warm_equals_cold_over_sequences() {
        for seed in 0..6 {
            let l = random_l(300 + seed, 40, 38, 0.18, seed % 2 == 0);
            let seq = weight_sequence(&l, 900 + seed, 10);
            for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
                let mut warm = MatcherEngine::new(&l, kind, true);
                let mut cold = MatcherEngine::new(&l, kind, false);
                let c = MatcherCounters::disabled();
                for (step, w) in seq.iter().enumerate() {
                    let got = warm.run(&l, w, c).clone();
                    let want = cold.run(&l, w, c).clone();
                    assert_eq!(got, want, "kind {kind:?} seed {seed} step {step}");
                    assert_eq!(got, serial_local_dominant(&l, w));
                }
            }
        }
    }

    #[test]
    fn warm_counters_report_reuse() {
        let l = random_l(5, 60, 60, 0.15, false);
        let mut eng = MatcherEngine::new(&l, RoundingMatcher::Ld, true);
        let n = (l.num_left() + l.num_right()) as u64;
        let c0 = MatcherCounters::new(true);
        let _ = eng.run(&l, l.weights(), &c0);
        assert_eq!(c0.snapshot().warm_hits, 0, "first run is cold");

        // Unchanged weights: everything is reused.
        let c1 = MatcherCounters::new(true);
        let _ = eng.run(&l, l.weights(), &c1);
        assert_eq!(c1.snapshot().warm_hits, n);
        assert_eq!(c1.snapshot().reseeded_vertices, 0);

        // Perturb one light edge: most decided pairs survive.
        let mut w = l.weights().to_vec();
        let lightest = (0..l.num_edges())
            .min_by(|&x, &y| w[x].total_cmp(&w[y]))
            .unwrap();
        w[lightest] += 1e-9;
        let c2 = MatcherCounters::new(true);
        let _ = eng.run(&l, &w, &c2);
        let s = c2.snapshot();
        assert!(s.warm_hits > 0, "sparse change must reuse some vertices");
        assert!(s.reseeded_vertices > 0, "the changed edge reseeds");
        assert_eq!(s.warm_hits % 2, 0, "kept vertices come in pairs");
    }

    #[test]
    fn invalidate_forces_cold_and_same_result() {
        let l = random_l(9, 30, 30, 0.25, true);
        let seq = weight_sequence(&l, 4, 4);
        let mut a = MatcherEngine::new(&l, RoundingMatcher::Suitor, true);
        let mut b = MatcherEngine::new(&l, RoundingMatcher::Suitor, true);
        let c = MatcherCounters::disabled();
        for w in &seq {
            let ra = a.run(&l, w, c).clone();
            b.invalidate();
            let rb = b.run(&l, w, c).clone();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn warm_handles_all_negative_and_empty() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, -1.0), (1, 1, -2.0)]);
        let mut eng = MatcherEngine::new(&l, RoundingMatcher::Ld, true);
        let c = MatcherCounters::disabled();
        assert_eq!(eng.run(&l, l.weights(), c).cardinality(), 0);
        let w = vec![3.0, -2.0];
        assert_eq!(eng.run(&l, &w, c).cardinality(), 1);
        let empty = BipartiteGraph::from_entries(3, 2, Vec::<(u32, u32, f64)>::new());
        let mut e2 = MatcherEngine::new(&empty, RoundingMatcher::Suitor, true);
        assert_eq!(e2.run(&empty, empty.weights(), c).cardinality(), 0);
        assert_eq!(e2.run(&empty, empty.weights(), c).cardinality(), 0);
    }
}
