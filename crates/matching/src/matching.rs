//! The [`Matching`] result type.

use netalign_graph::{BipartiteGraph, EdgeId, VertexId};

/// Sentinel for an unmatched vertex.
pub const UNMATCHED: VertexId = VertexId::MAX;

/// A matching in a bipartite graph `L`, stored as mate arrays over both
/// vertex sides.
///
/// ```
/// use netalign_matching::Matching;
///
/// let mut m = Matching::empty(2, 3);
/// m.add_pair(0, 2);
/// assert_eq!(m.cardinality(), 1);
/// assert_eq!(m.mate_of_left(0), Some(2));
/// assert_eq!(m.mate_of_right(2), Some(0));
/// assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate_of_left: Vec<VertexId>,
    mate_of_right: Vec<VertexId>,
}

impl Matching {
    /// The empty matching for a graph with `na` left and `nb` right
    /// vertices.
    pub fn empty(na: usize, nb: usize) -> Self {
        Self {
            mate_of_left: vec![UNMATCHED; na],
            mate_of_right: vec![UNMATCHED; nb],
        }
    }

    /// Reset to the empty matching over the same vertex sets, keeping
    /// the allocations.
    pub fn clear(&mut self) {
        self.mate_of_left.fill(UNMATCHED);
        self.mate_of_right.fill(UNMATCHED);
    }

    /// Build from raw mate arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (a claims b but b does not
    /// claim a back).
    pub fn from_mates(mate_of_left: Vec<VertexId>, mate_of_right: Vec<VertexId>) -> Self {
        let m = Self {
            mate_of_left,
            mate_of_right,
        };
        m.assert_consistent();
        m
    }

    fn assert_consistent(&self) {
        for (a, &b) in self.mate_of_left.iter().enumerate() {
            if b != UNMATCHED {
                assert!(
                    (b as usize) < self.mate_of_right.len()
                        && self.mate_of_right[b as usize] == a as VertexId,
                    "inconsistent mates: left {a} -> right {b}"
                );
            }
        }
        for (b, &a) in self.mate_of_right.iter().enumerate() {
            if a != UNMATCHED {
                assert!(
                    (a as usize) < self.mate_of_left.len()
                        && self.mate_of_left[a as usize] == b as VertexId,
                    "inconsistent mates: right {b} -> left {a}"
                );
            }
        }
    }

    /// Overwrite this matching in place from a unified mate array
    /// (left ids unchanged, right vertex `b` stored as `na + b` — the
    /// [`crate::approx`] convention), reusing the existing buffers so
    /// the preallocated engine can return `&Matching` without
    /// allocating.
    pub(crate) fn refill_from_unified(&mut self, na: usize, mate: &[VertexId]) {
        debug_assert_eq!(
            mate.len(),
            self.mate_of_left.len() + self.mate_of_right.len()
        );
        debug_assert_eq!(na, self.mate_of_left.len());
        for (a, slot) in self.mate_of_left.iter_mut().enumerate() {
            let m = mate[a];
            *slot = if m == UNMATCHED {
                UNMATCHED
            } else {
                debug_assert!(m >= na as VertexId, "left vertex matched to left vertex");
                m - na as VertexId
            };
        }
        for (b, slot) in self.mate_of_right.iter_mut().enumerate() {
            *slot = mate[na + b];
        }
        debug_assert!({
            self.assert_consistent();
            true
        });
    }

    /// Add the pair `(a, b)` to the matching.
    ///
    /// # Panics
    /// Panics if either endpoint is already matched.
    pub fn add_pair(&mut self, a: VertexId, b: VertexId) {
        assert_eq!(
            self.mate_of_left[a as usize], UNMATCHED,
            "left {a} already matched"
        );
        assert_eq!(
            self.mate_of_right[b as usize], UNMATCHED,
            "right {b} already matched"
        );
        self.mate_of_left[a as usize] = b;
        self.mate_of_right[b as usize] = a;
    }

    /// Mate of left vertex `a`, if any.
    #[inline]
    pub fn mate_of_left(&self, a: VertexId) -> Option<VertexId> {
        let m = self.mate_of_left[a as usize];
        (m != UNMATCHED).then_some(m)
    }

    /// Mate of right vertex `b`, if any.
    #[inline]
    pub fn mate_of_right(&self, b: VertexId) -> Option<VertexId> {
        let m = self.mate_of_right[b as usize];
        (m != UNMATCHED).then_some(m)
    }

    /// Raw left-side mate array (`UNMATCHED` sentinel for free vertices).
    #[inline]
    pub fn left_mates(&self) -> &[VertexId] {
        &self.mate_of_left
    }

    /// Raw right-side mate array.
    #[inline]
    pub fn right_mates(&self) -> &[VertexId] {
        &self.mate_of_right
    }

    /// Number of matched pairs.
    pub fn cardinality(&self) -> usize {
        self.mate_of_left
            .iter()
            .filter(|&&m| m != UNMATCHED)
            .count()
    }

    /// Iterate over matched `(a, b)` pairs in order of `a`.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.mate_of_left
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b != UNMATCHED)
            .map(|(a, &b)| (a as VertexId, b))
    }

    /// Total weight of the matching under the given per-edge weight
    /// vector (global edge order of `l`).
    ///
    /// # Panics
    /// Panics if a matched pair is not an edge of `l`.
    pub fn weight(&self, l: &BipartiteGraph, weights: &[f64]) -> f64 {
        self.pairs()
            .map(|(a, b)| {
                let e = l
                    .edge_id(a, b)
                    .unwrap_or_else(|| panic!("matched pair ({a},{b}) is not an edge of L"));
                weights[e]
            })
            .sum()
    }

    /// Total weight under `l`'s own weight vector.
    pub fn weight_in(&self, l: &BipartiteGraph) -> f64 {
        self.weight(l, l.weights())
    }

    /// Edge ids (global order) of the matched pairs.
    pub fn edge_ids(&self, l: &BipartiteGraph) -> Vec<EdgeId> {
        self.pairs()
            .map(|(a, b)| l.edge_id(a, b).expect("matched pair must be an edge of L"))
            .collect()
    }

    /// 0/1 indicator vector `x` over the global edge order of `l`.
    pub fn indicator(&self, l: &BipartiteGraph) -> Vec<f64> {
        let mut x = vec![0.0; l.num_edges()];
        self.indicator_into(l, &mut x);
        x
    }

    /// Fill a caller-owned 0/1 indicator vector over the global edge
    /// order of `l` — the allocation-free form of
    /// [`Matching::indicator`] for preallocated iteration scratch.
    pub fn indicator_into(&self, l: &BipartiteGraph, x: &mut [f64]) {
        assert_eq!(x.len(), l.num_edges());
        x.fill(0.0);
        for (a, b) in self.pairs() {
            let e = l.edge_id(a, b).expect("matched pair must be an edge of L");
            x[e] = 1.0;
        }
    }

    /// Check that every matched pair is an edge of `l` and the mate
    /// arrays are mutually consistent.
    pub fn is_valid(&self, l: &BipartiteGraph) -> bool {
        if self.mate_of_left.len() != l.num_left() || self.mate_of_right.len() != l.num_right() {
            return false;
        }
        for (a, &b) in self.mate_of_left.iter().enumerate() {
            if b != UNMATCHED
                && ((b as usize) >= l.num_right()
                    || self.mate_of_right[b as usize] != a as VertexId
                    || !l.has_edge(a as VertexId, b))
            {
                return false;
            }
        }
        for (b, &a) in self.mate_of_right.iter().enumerate() {
            if a != UNMATCHED && self.mate_of_left[a as usize] != b as VertexId {
                return false;
            }
        }
        true
    }

    /// True when no edge of `l` with positive weight has both endpoints
    /// free — i.e. the matching is maximal on the positive-weight
    /// subgraph (the half-approximation guarantee needs this).
    pub fn is_maximal(&self, l: &BipartiteGraph, weights: &[f64]) -> bool {
        for (a, b, e) in l.edge_iter() {
            if weights[e] > 0.0
                && self.mate_of_left[a as usize] == UNMATCHED
                && self.mate_of_right[b as usize] == UNMATCHED
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_l() -> BipartiteGraph {
        BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
    }

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3, 2);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.pairs().count(), 0);
        assert_eq!(m.mate_of_left(0), None);
    }

    #[test]
    fn add_pairs_and_weight() {
        let l = sample_l();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 2);
        m.add_pair(2, 1);
        assert_eq!(m.cardinality(), 2);
        assert_eq!(m.weight_in(&l), 7.0);
        assert!(m.is_valid(&l));
    }

    #[test]
    fn indicator_marks_matched_edges() {
        let l = sample_l();
        let mut m = Matching::empty(3, 3);
        m.add_pair(1, 1);
        let x = m.indicator(&l);
        assert_eq!(x, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "already matched")]
    fn double_match_panics() {
        let mut m = Matching::empty(2, 2);
        m.add_pair(0, 1);
        m.add_pair(1, 1);
    }

    #[test]
    fn validity_rejects_non_edges() {
        let l = sample_l();
        let mut m = Matching::empty(3, 3);
        m.add_pair(1, 0); // (1,0) is not an edge
        assert!(!m.is_valid(&l));
    }

    #[test]
    fn maximality() {
        let l = sample_l();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 0);
        // (1,1) has both endpoints free and positive weight
        assert!(!m.is_maximal(&l, l.weights()));
        m.add_pair(1, 1);
        // Now every positive edge touches a matched vertex: (0,*) via a0,
        // (2,0) via b0, (2,1) via b1.
        assert!(m.is_maximal(&l, l.weights()));
    }

    #[test]
    fn maximality_holds_when_positive_edges_covered() {
        let l = sample_l();
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 2);
        m.add_pair(1, 1);
        m.add_pair(2, 0);
        assert!(m.is_maximal(&l, l.weights()));
    }

    #[test]
    fn from_mates_accepts_consistent() {
        let m = Matching::from_mates(vec![1, UNMATCHED], vec![UNMATCHED, 0]);
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_mates_rejects_inconsistent() {
        let _ = Matching::from_mates(vec![1, UNMATCHED], vec![0, UNMATCHED]);
    }
}
