//! Maximum-weight bipartite matching algorithms.
//!
//! The SC'12 paper replaces the exact bipartite matching inside network
//! alignment by a parallel half-approximate *locally-dominant* matching.
//! This crate provides the full menagerie:
//!
//! * [`exact`] — an optimal sparse solver (successive shortest
//!   augmenting paths with dual potentials, LEDA-style), a dense
//!   brute-force oracle for testing, and an auction algorithm.
//! * [`approx`] — half-approximations: global greedy, the serial
//!   pointer-based locally-dominant algorithm (Preis / Manne–Bisseling),
//!   and the paper's parallel queue-based variant (Algorithms 1–3) with
//!   the optional one-side bipartite initialization.
//! * [`Matching`] — the result type: mate arrays over both sides plus
//!   weight/validation helpers and the 0/1 indicator vector used by the
//!   aligners.
//!
//! All algorithms share one deterministic total order on edges
//! ([`order::edge_key`]): weight first, then endpoint ids. Under that
//! order the locally-dominant matching is *unique* and equals the greedy
//! matching, which the test-suite exploits as a cross-implementation
//! oracle (serial LD == parallel LD == greedy, for every schedule).
//!
//! Only edges with strictly positive weight are ever matched: a
//! maximum-weight matching that is free to leave vertices unmatched
//! never benefits from a non-positive edge.

pub mod api;
pub mod approx;
pub mod cardinality;
pub mod distributed;
pub mod engine;
pub mod exact;
pub mod matching;
pub mod order;

pub use api::{max_weight_matching, max_weight_matching_traced, MatcherKind};
pub use approx::{external_suitor, external_suitor_traced, greedy_matching, GreedyScratch};
pub use distributed::{distributed_local_dominant_faulty, ChannelFaults};
pub use engine::{graph_fingerprint, MatcherEngine, RoundingMatcher};
pub use matching::Matching;
pub use netalign_trace::{MatcherCounterSnapshot, MatcherCounters};
