//! The deterministic total order on weighted edges shared by every
//! approximation algorithm in this crate.
//!
//! The paper breaks weight ties with "unique vertex ids" (§V). We make
//! that precise: edges compare by weight first, then by the larger
//! endpoint id (in the *unified* id space where right vertex `b` gets id
//! `na + b`), then by the smaller endpoint id. This is a total order on
//! the edge set of any simple graph, because two distinct edges can only
//! tie on weight, never on both endpoints.
//!
//! Under a total order, the locally-dominant matching is **unique** and
//! equals the greedy matching taken in decreasing order — the property
//! the test-suite uses to cross-validate the serial and parallel
//! implementations.

use netalign_graph::VertexId;

/// Comparison key of an edge: `(weight, max_unified_id, min_unified_id)`.
///
/// Larger keys dominate. `a` is a left-vertex id, `b` a right-vertex id;
/// `na` is the number of left vertices (for unifying the id spaces).
#[inline]
pub fn edge_key(w: f64, a: VertexId, b: VertexId, na: usize) -> (f64, VertexId, VertexId) {
    let ub = b + na as VertexId;
    if a > ub {
        (w, a, ub)
    } else {
        (w, ub, a)
    }
}

/// True when edge 1 strictly dominates edge 2 in the total order.
#[inline]
pub fn edge_gt(
    w1: f64,
    a1: VertexId,
    b1: VertexId,
    w2: f64,
    a2: VertexId,
    b2: VertexId,
    na: usize,
) -> bool {
    let k1 = edge_key(w1, a1, b1, na);
    let k2 = edge_key(w2, a2, b2, na);
    match k1.0.total_cmp(&k2.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => (k1.1, k1.2) > (k2.1, k2.2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_dominates() {
        assert!(edge_gt(2.0, 0, 0, 1.0, 5, 5, 10));
        assert!(!edge_gt(1.0, 5, 5, 2.0, 0, 0, 10));
    }

    #[test]
    fn ties_break_by_max_then_min_unified_id() {
        // edges (a=0,b=3) and (a=1,b=2) with na=4: unified (0,7) vs (1,6)
        assert!(edge_gt(1.0, 0, 3, 1.0, 1, 2, 4));
        // equal max id: (a=2,b=1) vs (a=3,b=1) with na=4: (2,5) vs (3,5)
        assert!(edge_gt(1.0, 3, 1, 1.0, 2, 1, 4));
    }

    #[test]
    fn order_is_total_on_distinct_edges() {
        let edges = [(0u32, 0u32), (0, 1), (1, 0), (1, 1)];
        for (i, &(a1, b1)) in edges.iter().enumerate() {
            for (j, &(a2, b2)) in edges.iter().enumerate() {
                if i != j {
                    let gt = edge_gt(1.0, a1, b1, 1.0, a2, b2, 2);
                    let lt = edge_gt(1.0, a2, b2, 1.0, a1, b1, 2);
                    assert!(gt ^ lt, "exactly one of gt/lt must hold for distinct edges");
                }
            }
        }
    }

    #[test]
    fn irreflexive() {
        assert!(!edge_gt(1.0, 2, 3, 1.0, 2, 3, 5));
    }
}
