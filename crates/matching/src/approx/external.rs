//! External-memory Suitor: run-partitioned ½-approximate matching for
//! candidate graphs larger than RAM (after Birn et al.'s external
//! semi-matching construction).
//!
//! The lock-free Suitor ([`super::suitor`]) starts one proposal chain
//! per vertex, all concurrently — its scan working set is the whole
//! adjacency at once. This variant partitions the unified vertex order
//! into contiguous *runs* and processes them one at a time:
//!
//! * **run pass** — chains start (in parallel) only from the run's
//!   vertices, so the bulk of the scanning touches the run's own
//!   adjacency segments and weight entries: a chunk-resident working
//!   set when the edge arrays are paged or mapped;
//! * **boundary merge** — a chain that displaces a vertex from an
//!   earlier run continues *through* it immediately (the displaced
//!   vertex re-proposes on the spot, exactly as in the in-core
//!   algorithm), so cross-run conflicts are resolved by the same
//!   displacement dynamics rather than a separate reconciliation
//!   sweep. Work outside the current run is proportional to the
//!   conflicts, not to the run size.
//!
//! Because the proposal slots are monotone `fetch_max` registers under
//! one *global* score order (sorted once up front), the algorithm is
//! just another schedule of the same dynamics, and the slots converge
//! to the **same unique stable fixed point** as
//! [`parallel_suitor`](super::parallel_suitor) — the result is
//! bit-identical for every run length and thread count, which the
//! tests (and a cross-implementation proptest) pin.

use super::suitor::{extract_mates_into, propose_chain, SuitorWorkspace};
use super::{degree_grains, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use netalign_trace::MatcherCounters;
use rayon::prelude::*;

/// Default run length: large enough that per-run overheads vanish,
/// small enough that a run's adjacency stays cache/chunk-resident on
/// the instances the paper aligns.
pub fn default_run_len(l: &BipartiteGraph) -> usize {
    ((l.num_left() + l.num_right()) / 8).max(1024)
}

/// External Suitor with the default run length.
pub fn external_suitor(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    external_suitor_traced(l, weights, default_run_len(l), MatcherCounters::disabled())
}

/// External Suitor over explicit runs, with event counting.
///
/// `run_len` is a scheduling knob only: the returned matching is
/// identical for every value (including `1` and `n`).
///
/// # Panics
/// Panics if `weights.len() != l.num_edges()` or `run_len == 0`.
pub fn external_suitor_traced(
    l: &BipartiteGraph,
    weights: &[f64],
    run_len: usize,
    counters: &MatcherCounters,
) -> Matching {
    assert_eq!(weights.len(), l.num_edges(), "weights/edge mismatch");
    assert!(run_len > 0, "run length must be positive");
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mut ws = SuitorWorkspace::new(l);
    let (vertex_bounds, order_bounds) = degree_grains(l);
    ws.sort_segments(l, weights, &vertex_bounds, &order_bounds);
    let slots = &ws.slots;
    let score_left = &ws.score_left;
    let score_right = &ws.score_right;
    let mut run_start = 0usize;
    while run_start < n {
        let run_end = (run_start + run_len).min(n);
        (run_start as VertexId..run_end as VertexId)
            .into_par_iter()
            .with_min_len(64)
            .for_each(|v| propose_chain(l, weights, slots, score_left, score_right, v, counters));
        run_start = run_end;
    }
    let mut mate = vec![UNMATCHED; n];
    extract_mates_into(&ws.slots, &mut mate);
    view.to_matching(&mate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::suitor::parallel_suitor;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn external_equals_parallel_for_every_run_length() {
        for seed in 0..15 {
            let l = random_l(seed, 30, 28, 0.2, false);
            let reference = parallel_suitor(&l, l.weights());
            let n = l.num_left() + l.num_right();
            for run_len in [1, 7, 64, n] {
                assert_eq!(
                    external_suitor_traced(&l, l.weights(), run_len, MatcherCounters::disabled()),
                    reference,
                    "seed {seed}, run_len {run_len}"
                );
            }
        }
    }

    #[test]
    fn external_equals_parallel_with_ties() {
        for seed in 40..55 {
            let l = random_l(seed, 24, 26, 0.35, true);
            let reference = parallel_suitor(&l, l.weights());
            for run_len in [1, 13, 1000] {
                assert_eq!(
                    external_suitor_traced(&l, l.weights(), run_len, MatcherCounters::disabled()),
                    reference,
                    "seed {seed}, run_len {run_len}"
                );
            }
        }
    }

    #[test]
    fn default_run_length_and_wrapper() {
        let l = random_l(77, 40, 40, 0.15, false);
        assert_eq!(
            external_suitor(&l, l.weights()),
            parallel_suitor(&l, l.weights())
        );
        assert!(default_run_len(&l) >= 1024);
    }

    #[test]
    fn handles_degenerate_graphs() {
        let empty = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(external_suitor(&empty, empty.weights()).cardinality(), 0);
        let neg = BipartiteGraph::from_entries(1, 1, vec![(0, 0, -1.0)]);
        assert_eq!(external_suitor(&neg, neg.weights()).cardinality(), 0);
    }

    #[test]
    fn counters_record_proposals() {
        let l = random_l(5, 20, 20, 0.3, false);
        let counters = MatcherCounters::new(true);
        let m = external_suitor_traced(&l, l.weights(), 8, &counters);
        assert!(counters.snapshot().proposals >= m.cardinality() as u64);
    }
}
