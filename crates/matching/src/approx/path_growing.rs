//! The path-growing ½-approximation of Drake & Hougardy — an
//! alternative serial baseline with the same guarantee as the
//! locally-dominant family but a different construction, useful for
//! contrasting matcher behaviour inside the aligners.
//!
//! Starting from an arbitrary vertex, repeatedly extend a path along
//! the heaviest remaining edge of the current endpoint, alternately
//! assigning edges to two candidate matchings `M1` and `M2`; visited
//! vertices are removed. The heavier of the two matchings is returned.
//! Because the assignment alternates along paths, both `M1` and `M2`
//! are matchings, and their union covers a weight at least that of the
//! optimum — hence `max(M1, M2) ≥ opt / 2`.

use super::UnifiedView;
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};

/// Path-growing ½-approximate matching (serial).
pub fn path_growing_matching(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mut removed = vec![false; n];
    // Two alternating matchings as mate arrays.
    let mut mate = [vec![UNMATCHED; n], vec![UNMATCHED; n]];
    let mut weight = [0.0f64, 0.0f64];

    for start in 0..n as VertexId {
        if removed[start as usize] {
            continue;
        }
        let mut current = start;
        let mut side = 0usize;
        loop {
            // Heaviest positive edge from `current` into the not-yet-
            // removed part of the graph.
            let mut best_t = UNMATCHED;
            let mut best_w = 0.0f64;
            view.for_each_neighbor(current, |t, w| {
                if w <= 0.0 || removed[t as usize] {
                    return;
                }
                if best_t == UNMATCHED
                    || super::unified_edge_gt(w, current, t, best_w, current, best_t)
                {
                    best_t = t;
                    best_w = w;
                }
            });
            removed[current as usize] = true;
            let Some(t) = (best_t != UNMATCHED).then_some(best_t) else {
                break;
            };
            mate[side][current as usize] = t;
            mate[side][t as usize] = current;
            weight[side] += best_w;
            side ^= 1;
            current = t;
        }
    }

    let pick = if weight[0] >= weight[1] { 0 } else { 1 };
    view.to_matching(&mate[pick])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ssp::max_weight_matching_ssp;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    entries.push((a as u32, b as u32, rng.gen_range(0.1..5.0)));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn result_is_a_valid_matching() {
        for seed in 0..20 {
            let l = random_l(seed, 12, 10, 0.35);
            let m = path_growing_matching(&l, l.weights());
            assert!(m.is_valid(&l), "seed {seed}");
        }
    }

    #[test]
    fn half_approximation_guarantee() {
        for seed in 30..55 {
            let l = random_l(seed, 10, 10, 0.4);
            let m = path_growing_matching(&l, l.weights());
            let (opt, _) = max_weight_matching_ssp(&l, l.weights());
            assert!(
                m.weight_in(&l) * 2.0 >= opt.weight_in(&l) - 1e-9,
                "seed {seed}: {} vs opt {}",
                m.weight_in(&l),
                opt.weight_in(&l)
            );
        }
    }

    #[test]
    fn single_path_alternation() {
        // a0-b0 (1), a1-b0 (4), a1-b1 (2): path grows from a0? a0 starts:
        // best edge (a0,b0,1) -> M1; from b0 best remaining (a1,b0,4)?
        // b0's neighbors: a0 (removed), a1 -> (b0,a1,4) -> M2; from a1:
        // (a1,b1,2) -> M1. M1 = {1 + 2} = 3, M2 = {4}. Pick M2? 4 > 3.
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 0, 4.0), (1, 1, 2.0)]);
        let m = path_growing_matching(&l, l.weights());
        assert_eq!(m.weight_in(&l), 4.0);
        assert_eq!(m.mate_of_left(1), Some(0));
    }

    #[test]
    fn empty_and_negative() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, -1.0)]);
        assert_eq!(path_growing_matching(&l, l.weights()).cardinality(), 0);
    }
}
