//! Serial pointer-based locally-dominant ½-approximate matching
//! (Preis [22], in the Manne–Bisseling formulation the paper builds on).
//!
//! Each vertex points at its heaviest free neighbor (`candidate`); an
//! edge whose endpoints point at each other is *locally dominant* and
//! gets matched. Matching a pair invalidates the candidates of their
//! other neighbors, which are then recomputed — the queue propagates
//! exactly those invalidations.
//!
//! With the total edge order of [`crate::order`], the result is the
//! unique locally-dominant matching (identical to
//! [`crate::approx::greedy_matching`]). This implementation is the
//! serial twin of the parallel Algorithm 1–3 and serves as its oracle.

use super::{unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use std::collections::VecDeque;

/// Serial locally-dominant matching on the unified view of `l`.
pub fn serial_local_dominant(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    let mut candidate = vec![UNMATCHED; n];

    // Phase 1: initial candidates.
    for v in 0..n as VertexId {
        candidate[v as usize] = find_mate(&view, v, &mate);
    }
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for v in 0..n as VertexId {
        try_match(v, &mut mate, &candidate, &mut queue);
    }

    // Phase 2: propagate invalidations from newly matched vertices.
    while let Some(u) = queue.pop_front() {
        let neighbors: Vec<VertexId> = {
            let mut tmp = Vec::new();
            view.for_each_neighbor(u, |t, _| tmp.push(t));
            tmp
        };
        for v in neighbors {
            if mate[v as usize] == UNMATCHED && candidate[v as usize] == u {
                candidate[v as usize] = find_mate(&view, v, &mate);
                try_match(v, &mut mate, &candidate, &mut queue);
            }
        }
    }

    view.to_matching(&mate)
}

/// Heaviest currently-unmatched neighbor of `s` under the total edge
/// order, or `UNMATCHED` when no positive-weight free neighbor exists.
fn find_mate(view: &UnifiedView<'_>, s: VertexId, mate: &[VertexId]) -> VertexId {
    let mut best_id = UNMATCHED;
    let mut best_w = 0.0f64;
    view.for_each_neighbor(s, |t, w| {
        if w <= 0.0 || mate[t as usize] != UNMATCHED {
            return;
        }
        if best_id == UNMATCHED || unified_edge_gt(w, s, t, best_w, s, best_id) {
            best_id = t;
            best_w = w;
        }
    });
    best_id
}

/// Match `(s, candidate[s])` if it is locally dominant.
fn try_match(
    s: VertexId,
    mate: &mut [VertexId],
    candidate: &[VertexId],
    queue: &mut VecDeque<VertexId>,
) {
    if mate[s as usize] != UNMATCHED {
        return;
    }
    let c = candidate[s as usize];
    if c != UNMATCHED && mate[c as usize] == UNMATCHED && candidate[c as usize] == s {
        mate[s as usize] = c;
        mate[c as usize] = s;
        queue.push_back(s);
        queue.push_back(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy::greedy_matching;
    use crate::exact::ssp::max_weight_matching_ssp;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn equals_greedy_on_randoms() {
        for seed in 0..25 {
            let l = random_l(seed, 8, 9, 0.4, false);
            let ld = serial_local_dominant(&l, l.weights());
            let gr = greedy_matching(&l, l.weights());
            assert_eq!(ld, gr, "seed {seed}");
        }
    }

    #[test]
    fn equals_greedy_with_weight_ties() {
        for seed in 100..125 {
            let l = random_l(seed, 10, 10, 0.5, true);
            let ld = serial_local_dominant(&l, l.weights());
            let gr = greedy_matching(&l, l.weights());
            assert_eq!(ld, gr, "seed {seed}");
        }
    }

    #[test]
    fn half_approximation_guarantee() {
        for seed in 200..215 {
            let l = random_l(seed, 9, 8, 0.45, false);
            let ld = serial_local_dominant(&l, l.weights());
            assert!(ld.is_valid(&l));
            assert!(ld.is_maximal(&l, l.weights()));
            let (opt, _) = max_weight_matching_ssp(&l, l.weights());
            assert!(ld.weight_in(&l) * 2.0 >= opt.weight_in(&l) - 1e-9);
            // Maximal matching ⇒ ≥ half the maximum cardinality; the
            // optimum of the weight problem is not necessarily maximum
            // cardinality, so only check validity here.
        }
    }

    #[test]
    fn empty_and_negative_graphs() {
        let l = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(serial_local_dominant(&l, l.weights()).cardinality(), 0);
        let l = BipartiteGraph::from_entries(1, 1, vec![(0, 0, -2.0)]);
        assert_eq!(serial_local_dominant(&l, l.weights()).cardinality(), 0);
    }

    #[test]
    fn path_graph_picks_dominant_middle() {
        // a0-b0 (1), a1-b0 (5), a1-b1 (2): dominant edge (a1,b0).
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (1, 0, 5.0), (1, 1, 2.0)]);
        let m = serial_local_dominant(&l, l.weights());
        assert_eq!(m.mate_of_left(1), Some(0));
        assert_eq!(m.mate_of_left(0), None);
    }
}
