//! Global greedy ½-approximate matching.
//!
//! Sort the positive-weight edges by the total edge order and take each
//! edge whose endpoints are both still free. The result is exactly the
//! (unique) locally-dominant matching, so this doubles as the reference
//! implementation for the pointer-based algorithms.

use crate::matching::{Matching, UNMATCHED};
use crate::order::edge_key;
use netalign_graph::{BipartiteGraph, EdgeId};

/// Greedy maximum-weight matching: ½-approximate in weight and
/// cardinality.
pub fn greedy_matching(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let mut scratch = GreedyScratch::new(l);
    scratch.run(l, weights);
    scratch.out
}

/// Reusable buffers for repeated [`GreedyScratch::run`] calls over one
/// graph: the sorted-order vector and the output matching. One sort and
/// one linear pass per call, no steady-state allocation — the cheap
/// sequential path for callers that already know the matching is
/// pool-invariant (greedy ≡ locally-dominant ≡ Suitor on the strict
/// total order), such as the delta-replay stage rematcher.
pub struct GreedyScratch {
    order: Vec<EdgeId>,
    /// The matching produced by the last [`Self::run`].
    pub out: Matching,
}

impl GreedyScratch {
    /// Preallocate for `l`.
    pub fn new(l: &BipartiteGraph) -> Self {
        Self {
            order: Vec::with_capacity(l.num_edges()),
            out: Matching::empty(l.num_left(), l.num_right()),
        }
    }

    /// Compute the greedy matching of `weights` into [`Self::out`] and
    /// return it.
    pub fn run(&mut self, l: &BipartiteGraph, weights: &[f64]) -> &Matching {
        assert_eq!(weights.len(), l.num_edges());
        let na = l.num_left();
        self.order.clear();
        self.order
            .extend((0..l.num_edges()).filter(|&e| weights[e] > 0.0));
        self.order.sort_unstable_by(|&e1, &e2| {
            let (a1, b1) = l.endpoints(e1);
            let (a2, b2) = l.endpoints(e2);
            let k1 = edge_key(weights[e1], a1, b1, na);
            let k2 = edge_key(weights[e2], a2, b2, na);
            // Descending.
            k2.0.total_cmp(&k1.0)
                .then_with(|| (k2.1, k2.2).cmp(&(k1.1, k1.2)))
        });
        self.out.clear();
        for &e in &self.order {
            let (a, b) = l.endpoints(e);
            if self.out.left_mates()[a as usize] == UNMATCHED
                && self.out.right_mates()[b as usize] == UNMATCHED
            {
                self.out.add_pair(a, b);
            }
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ssp::max_weight_matching_ssp;

    #[test]
    fn takes_heaviest_first() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0)]);
        let m = greedy_matching(&l, l.weights());
        // Greedy grabs (0,1)=3 and then (1,?) has only b1, taken → card 1.
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.weight_in(&l), 3.0);
    }

    #[test]
    fn is_half_approximation_on_randoms() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        for _ in 0..30 {
            let na = rng.gen_range(2..10);
            let nb = rng.gen_range(2..10);
            let mut entries = Vec::new();
            for a in 0..na {
                for b in 0..nb {
                    if rng.gen_bool(0.4) {
                        entries.push((a as u32, b as u32, rng.gen_range(0.1..5.0)));
                    }
                }
            }
            let l = BipartiteGraph::from_entries(na, nb, entries);
            let m = greedy_matching(&l, l.weights());
            assert!(m.is_valid(&l));
            assert!(m.is_maximal(&l, l.weights()));
            let (opt, _) = max_weight_matching_ssp(&l, l.weights());
            assert!(
                m.weight_in(&l) * 2.0 >= opt.weight_in(&l) - 1e-9,
                "greedy below half of optimal"
            );
        }
    }

    #[test]
    fn skips_non_positive_edges() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 0.0), (1, 1, -1.0), (0, 1, 1.0)]);
        let m = greedy_matching(&l, l.weights());
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_left(0), Some(1));
    }

    #[test]
    fn deterministic_tie_breaking() {
        // All weights equal: the order key decides. Unified ids: right b
        // becomes na+b = 2+b. Keys (max,min): (0,1)->(3,0), (1,0)->(2,1),
        // (1,1)->(3,1), (0,0)->(2,0). Descending: (1,1), (0,1), (1,0), (0,0).
        let l = BipartiteGraph::from_entries(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
        );
        let m = greedy_matching(&l, l.weights());
        assert_eq!(m.mate_of_left(1), Some(1));
        assert_eq!(m.mate_of_left(0), Some(0));
    }
}
