//! The Suitor algorithm for ½-approximate maximum-weight matching
//! (Manne & Halappanavar, IPDPS 2014) — the authors' own follow-up to
//! the queue-based algorithm reproduced in [`super::parallel_ld`], and
//! the natural "future work" of the paper's §V.
//!
//! Every vertex *proposes* to its heaviest neighbor whose current best
//! proposal it can beat; a displaced suitor immediately continues
//! proposing on its own behalf. The fixed point assigns each vertex the
//! best proposal it received, and mutual proposals form exactly the
//! locally-dominant matching — so under this crate's total edge order
//! the Suitor result equals the greedy / pointer-based results, which
//! the tests assert.
//!
//! The parallel variant runs the proposal loops concurrently, with a
//! per-vertex lock (paper's published version) realized here as a CAS
//! spinlock over the packed `(suitor, weight-index)` slot.

use super::{unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use rayon::prelude::*;
use std::sync::Mutex;

/// Serial Suitor algorithm.
pub fn serial_suitor(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    // suitor[v] = current best proposer to v; ws[v] = its edge weight.
    let mut suitor = vec![UNMATCHED; n];
    let mut ws = vec![0.0f64; n];

    for start in 0..n as VertexId {
        let mut current = start;
        loop {
            // Find the heaviest neighbor `t` of `current` that would
            // accept `current` (beats t's standing proposal).
            let mut best_t = UNMATCHED;
            let mut best_w = 0.0f64;
            view.for_each_neighbor(current, |t, w| {
                if w <= 0.0 {
                    return;
                }
                let standing = suitor[t as usize];
                let accepts = standing == UNMATCHED
                    || unified_edge_gt(w, current, t, ws[t as usize], standing, t);
                if accepts
                    && (best_t == UNMATCHED
                        || unified_edge_gt(w, current, t, best_w, current, best_t))
                {
                    best_t = t;
                    best_w = w;
                }
            });
            let Some(t) = (best_t != UNMATCHED).then_some(best_t) else {
                break; // current retires unmatched
            };
            let displaced = suitor[t as usize];
            suitor[t as usize] = current;
            ws[t as usize] = best_w;
            if displaced == UNMATCHED {
                break;
            }
            current = displaced; // displaced suitor proposes again
        }
    }
    mutual_proposals_to_matching(&view, &suitor)
}

/// Parallel Suitor: vertices propose concurrently; each proposal slot
/// is guarded by a per-vertex mutex, and displacement chains continue
/// on the displacing thread.
pub fn parallel_suitor(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let slots: Vec<Mutex<(VertexId, f64)>> =
        (0..n).map(|_| Mutex::new((UNMATCHED, 0.0f64))).collect();

    (0..n as VertexId).into_par_iter().for_each(|start| {
        let mut current = start;
        loop {
            // Scan for the best acceptable target under a consistent
            // snapshot; re-validated under the lock below.
            let mut best_t = UNMATCHED;
            let mut best_w = 0.0f64;
            view.for_each_neighbor(current, |t, w| {
                if w <= 0.0 {
                    return;
                }
                // Invariant: no code path panics while holding a slot
                // lock, so the mutex can never be poisoned.
                let (standing, sw) = *slots[t as usize].lock().unwrap();
                let accepts =
                    standing == UNMATCHED || unified_edge_gt(w, current, t, sw, standing, t);
                if accepts
                    && (best_t == UNMATCHED
                        || unified_edge_gt(w, current, t, best_w, current, best_t))
                {
                    best_t = t;
                    best_w = w;
                }
            });
            if best_t == UNMATCHED {
                break;
            }
            let t = best_t;
            let displaced = {
                let mut slot = slots[t as usize].lock().unwrap();
                let (standing, sw) = *slot;
                // Re-check under the lock: someone may have outbid us.
                if standing == UNMATCHED || unified_edge_gt(best_w, current, t, sw, standing, t) {
                    *slot = (current, best_w);
                    standing
                } else {
                    // Outbid between scan and lock: rescan from scratch.
                    continue;
                }
            };
            if displaced == UNMATCHED {
                break;
            }
            current = displaced;
        }
    });

    let suitor: Vec<VertexId> = slots.iter().map(|s| s.lock().unwrap().0).collect();
    mutual_proposals_to_matching(&view, &suitor)
}

/// Mutual proposals are the matched pairs.
fn mutual_proposals_to_matching(view: &UnifiedView<'_>, suitor: &[VertexId]) -> Matching {
    let n = suitor.len();
    let mut mate = vec![UNMATCHED; n];
    for v in 0..n {
        let s = suitor[v];
        if s != UNMATCHED && suitor[s as usize] == v as VertexId {
            mate[v] = s;
        }
    }
    view.to_matching(&mate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy::greedy_matching;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn serial_suitor_equals_greedy() {
        for seed in 0..25 {
            let l = random_l(seed, 10, 11, 0.4, false);
            assert_eq!(
                serial_suitor(&l, l.weights()),
                greedy_matching(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn serial_suitor_equals_greedy_with_ties() {
        for seed in 50..70 {
            let l = random_l(seed, 12, 12, 0.5, true);
            assert_eq!(
                serial_suitor(&l, l.weights()),
                greedy_matching(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_suitor_equals_serial() {
        for seed in 100..120 {
            let l = random_l(seed, 30, 28, 0.2, false);
            assert_eq!(
                parallel_suitor(&l, l.weights()),
                serial_suitor(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_suitor_deterministic_across_runs() {
        let l = random_l(7, 60, 55, 0.15, true);
        let first = parallel_suitor(&l, l.weights());
        for _ in 0..10 {
            assert_eq!(first, parallel_suitor(&l, l.weights()));
        }
    }

    #[test]
    fn handles_degenerate_graphs() {
        let empty = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(serial_suitor(&empty, empty.weights()).cardinality(), 0);
        assert_eq!(parallel_suitor(&empty, empty.weights()).cardinality(), 0);
        let neg = BipartiteGraph::from_entries(1, 1, vec![(0, 0, -1.0)]);
        assert_eq!(serial_suitor(&neg, neg.weights()).cardinality(), 0);
    }

    #[test]
    fn star_graph_takes_heaviest_leaf() {
        let l = BipartiteGraph::from_entries(
            1,
            4,
            vec![(0, 0, 1.0), (0, 1, 3.0), (0, 2, 2.0), (0, 3, 0.5)],
        );
        let m = serial_suitor(&l, l.weights());
        assert_eq!(m.mate_of_left(0), Some(1));
        assert_eq!(m.cardinality(), 1);
    }
}
