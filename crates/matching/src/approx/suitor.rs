//! The Suitor algorithm for ½-approximate maximum-weight matching
//! (Manne & Halappanavar, IPDPS 2014) — the authors' own follow-up to
//! the queue-based algorithm reproduced in [`super::parallel_ld`], and
//! the natural "future work" of the paper's §V.
//!
//! Every vertex *proposes* to its heaviest neighbor whose current best
//! proposal it can beat; a displaced suitor immediately continues
//! proposing on its own behalf. The fixed point assigns each vertex the
//! best proposal it received, and mutual proposals form exactly the
//! locally-dominant matching — so under this crate's total edge order
//! the Suitor result equals the greedy / pointer-based results, which
//! the tests assert.
//!
//! # Lock-free proposal slots
//!
//! The parallel variant runs the proposal chains concurrently. Instead
//! of the per-vertex lock of the published algorithm, each vertex `v`
//! owns one `AtomicU64` slot packing `(score << 32) | proposer`, where
//! the *score* of an edge at `v` is its rank from the bottom of `v`'s
//! adjacency under the crate's total edge order (heaviest edge of a
//! degree-`d` vertex scores `d`, lightest scores `1`, empty slot is
//! `0`). Scores are precomputed per weight vector by sorting every
//! vertex's adjacency segment, so
//!
//! * comparing packed values compares proposals *exactly* as
//!   [`unified_edge_gt`] would — scores at one vertex are distinct
//!   because each proposer reaches `v` through exactly one edge;
//! * a proposal is published with one `fetch_max`: the slot's value is
//!   monotonically non-decreasing, so a rejection is final and the
//!   acceptance pre-check (`slot >> 32 < score`) never goes stale in
//!   the accepting direction;
//! * after a lost `fetch_max` the standing score is *strictly* greater
//!   than the attempted one (ties are impossible), so a rescan makes
//!   progress and the chains terminate.
//!
//! Monotone slots mean the final configuration is the unique stable
//! fixed point of the proposal dynamics — the same one the serial
//! algorithm reaches — independent of thread count and schedule, which
//! preserves the crate's bit-identical-at-any-pool-size guarantee.
//!
//! [`parallel_suitor_traced`] counts proposals, displacements and lost
//! `fetch_max` races into a [`MatcherCounters`]. Unlike the queue-based
//! matcher's counters these are schedule-*dependent* (which thread
//! loses a race, and how often chains rescan, varies), so they are
//! excluded from the determinism assertions.

use super::{degree_grains, unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use netalign_trace::MatcherCounters;
use rayon::par_uneven_chunks_mut;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Empty proposal slot (any real proposal has score ≥ 1).
pub(crate) const EMPTY_SLOT: u64 = 0;
/// Low half of a packed slot: the proposer id.
pub(crate) const PROPOSER_MASK: u64 = 0xffff_ffff;
/// Score reserved by the warm-started engine for frozen pairs carried
/// over from the previous run: real scores are bounded by the maximum
/// degree (< `u32::MAX`), so a frozen slot can never be displaced.
pub(crate) const FROZEN_SCORE: u32 = u32::MAX;

/// Serial Suitor algorithm.
pub fn serial_suitor(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    // suitor[v] = current best proposer to v; ws[v] = its edge weight.
    let mut suitor = vec![UNMATCHED; n];
    let mut ws = vec![0.0f64; n];

    for start in 0..n as VertexId {
        let mut current = start;
        loop {
            // Find the heaviest neighbor `t` of `current` that would
            // accept `current` (beats t's standing proposal).
            let mut best_t = UNMATCHED;
            let mut best_w = 0.0f64;
            view.for_each_neighbor(current, |t, w| {
                if w <= 0.0 {
                    return;
                }
                let standing = suitor[t as usize];
                let accepts = standing == UNMATCHED
                    || unified_edge_gt(w, current, t, ws[t as usize], standing, t);
                if accepts
                    && (best_t == UNMATCHED
                        || unified_edge_gt(w, current, t, best_w, current, best_t))
                {
                    best_t = t;
                    best_w = w;
                }
            });
            let Some(t) = (best_t != UNMATCHED).then_some(best_t) else {
                break; // current retires unmatched
            };
            let displaced = suitor[t as usize];
            suitor[t as usize] = current;
            ws[t as usize] = best_w;
            if displaced == UNMATCHED {
                break;
            }
            current = displaced; // displaced suitor proposes again
        }
    }
    mutual_proposals_to_matching(&view, &suitor)
}

/// Preallocated state of the lock-free parallel Suitor: the proposal
/// slots plus the per-vertex adjacency segments and edge scores that
/// realize the packed total order. Recycled across weight vectors by
/// [`crate::engine::MatcherEngine`].
pub(crate) struct SuitorWorkspace {
    /// `slot[v] = (score << 32) | proposer`, [`EMPTY_SLOT`] when free.
    pub slots: Vec<AtomicU64>,
    /// Edge ids grouped per unified vertex (left segments then right),
    /// each segment sorted descending under the total edge order by
    /// [`SuitorWorkspace::sort_segments`].
    pub order: Vec<u32>,
    /// Segment bounds into `order` (len `n + 1`).
    pub seg_start: Vec<usize>,
    /// `score_left[e]`: rank of edge `e` at its left endpoint.
    pub score_left: Vec<AtomicU32>,
    /// `score_right[e]`: rank of edge `e` at its right endpoint.
    pub score_right: Vec<AtomicU32>,
}

impl SuitorWorkspace {
    /// Allocate the workspace for `l` (structure only; scores are
    /// filled per weight vector by [`SuitorWorkspace::sort_segments`]).
    pub fn new(l: &BipartiteGraph) -> Self {
        let na = l.num_left();
        let nb = l.num_right();
        let m = l.num_edges();
        let n = na + nb;
        assert!(
            (n as u64) < u32::MAX as u64,
            "vertex count must fit the packed slot's id half"
        );
        let mut seg_start = Vec::with_capacity(n + 1);
        seg_start.push(0usize);
        for a in 0..na {
            seg_start.push(seg_start[a] + l.left_degree(a as VertexId));
        }
        for b in 0..nb {
            seg_start.push(seg_start[na + b] + l.right_degree(b as VertexId));
        }
        debug_assert_eq!(seg_start[n], 2 * m);
        let mut order = vec![0u32; 2 * m];
        for a in 0..na {
            let s = seg_start[a];
            for (i, (_, e)) in l.left_edges(a as VertexId).enumerate() {
                order[s + i] = e as u32;
            }
        }
        for b in 0..nb {
            let s = seg_start[na + b];
            for (i, (_, e)) in l.right_edges(b as VertexId).enumerate() {
                order[s + i] = e as u32;
            }
        }
        SuitorWorkspace {
            slots: (0..n).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            order,
            seg_start,
            score_left: (0..m).map(|_| AtomicU32::new(0)).collect(),
            score_right: (0..m).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Sort every vertex segment descending under `weights` and refill
    /// the scores, parallel over degree-aware grains (`vertex_bounds` /
    /// `order_bounds` from [`degree_grains`]). Deterministic: segments
    /// are disjoint and each sort depends only on its own data.
    pub fn sort_segments(
        &mut self,
        l: &BipartiteGraph,
        weights: &[f64],
        vertex_bounds: &[u32],
        order_bounds: &[usize],
    ) {
        let seg_start = &self.seg_start;
        let score_left = &self.score_left;
        let score_right = &self.score_right;
        let na = l.num_left();
        par_uneven_chunks_mut(&mut self.order, order_bounds)
            .enumerate()
            .for_each(|(g, chunk)| {
                let base = order_bounds[g];
                for v in vertex_bounds[g]..vertex_bounds[g + 1] {
                    let (s, e) = (seg_start[v as usize], seg_start[v as usize + 1]);
                    let seg = &mut chunk[s - base..e - base];
                    sort_one_segment(l, weights, v, na, seg);
                    fill_scores(v, na, seg, score_left, score_right);
                }
            });
    }

    /// Re-sort the segment of a single vertex and refill its scores
    /// (the warm path touches only the endpoints of changed edges).
    pub fn resort_vertex(&mut self, l: &BipartiteGraph, weights: &[f64], v: VertexId) {
        let na = l.num_left();
        let (s, e) = (self.seg_start[v as usize], self.seg_start[v as usize + 1]);
        let seg = &mut self.order[s..e];
        sort_one_segment(l, weights, v, na, seg);
        fill_scores(v, na, seg, &self.score_left, &self.score_right);
    }
}

/// Sort one vertex's adjacency segment descending under the total edge
/// order (weight by `total_cmp`, then the `(max_id, min_id)` pair).
fn sort_one_segment(l: &BipartiteGraph, weights: &[f64], v: VertexId, na: usize, seg: &mut [u32]) {
    let other = |e: u32| -> VertexId {
        let (a, b) = l.endpoints(e as usize);
        if (v as usize) < na {
            na as VertexId + b
        } else {
            a
        }
    };
    seg.sort_unstable_by(|&x, &y| {
        if unified_edge_gt(
            weights[x as usize],
            v,
            other(x),
            weights[y as usize],
            v,
            other(y),
        ) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
}

/// `score = deg − position` over a sorted segment: the heaviest edge at
/// a degree-`d` vertex scores `d`, the lightest scores `1`.
fn fill_scores(
    v: VertexId,
    na: usize,
    seg: &[u32],
    score_left: &[AtomicU32],
    score_right: &[AtomicU32],
) {
    let deg = seg.len() as u32;
    for (pos, &e) in seg.iter().enumerate() {
        let sc = deg - pos as u32;
        if (v as usize) < na {
            score_left[e as usize].store(sc, Ordering::Relaxed);
        } else {
            score_right[e as usize].store(sc, Ordering::Relaxed);
        }
    }
}

/// One proposal chain starting at `start`: scan for the best target
/// that would accept, publish with `fetch_max`, continue with whoever
/// got displaced. See the module docs for the termination and
/// determinism argument.
pub(crate) fn propose_chain(
    l: &BipartiteGraph,
    weights: &[f64],
    slots: &[AtomicU64],
    score_left: &[AtomicU32],
    score_right: &[AtomicU32],
    start: VertexId,
    counters: &MatcherCounters,
) {
    let na = l.num_left() as VertexId;
    let mut current = start;
    'chain: loop {
        let mut best_t = UNMATCHED;
        let mut best_w = 0.0f64;
        let mut best_score = 0u32;
        if current < na {
            for (b, e) in l.left_edges(current) {
                let w = weights[e];
                if w <= 0.0 {
                    continue;
                }
                let t = na + b;
                let sc = score_right[e].load(Ordering::Relaxed);
                if ((slots[t as usize].load(Ordering::Acquire) >> 32) as u32) >= sc {
                    continue; // t rejects — final, slots only grow
                }
                if best_t == UNMATCHED || unified_edge_gt(w, current, t, best_w, current, best_t) {
                    best_t = t;
                    best_w = w;
                    best_score = sc;
                }
            }
        } else {
            for (a, e) in l.right_edges(current - na) {
                let w = weights[e];
                if w <= 0.0 {
                    continue;
                }
                let sc = score_left[e].load(Ordering::Relaxed);
                if ((slots[a as usize].load(Ordering::Acquire) >> 32) as u32) >= sc {
                    continue;
                }
                if best_t == UNMATCHED || unified_edge_gt(w, current, a, best_w, current, best_t) {
                    best_t = a;
                    best_w = w;
                    best_score = sc;
                }
            }
        }
        if best_t == UNMATCHED {
            return; // current retires unmatched
        }
        let packed = ((best_score as u64) << 32) | current as u64;
        let old = slots[best_t as usize].fetch_max(packed, Ordering::AcqRel);
        if old >= packed {
            // Outbid between scan and publish; the standing score is
            // strictly higher, so the rescan cannot loop on this target.
            counters.add_cas_failures(1);
            continue 'chain;
        }
        counters.add_proposals(1);
        if old == EMPTY_SLOT {
            return;
        }
        counters.add_displacements(1);
        current = (old & PROPOSER_MASK) as VertexId;
    }
}

/// Decode the fixed-point slots into a unified mate array: mutual
/// proposals are the matched pairs.
pub(crate) fn extract_mates_into(slots: &[AtomicU64], mate: &mut [VertexId]) {
    for (v, mv) in mate.iter_mut().enumerate() {
        let sv = slots[v].load(Ordering::Acquire);
        *mv = if sv == EMPTY_SLOT {
            UNMATCHED
        } else {
            let s = (sv & PROPOSER_MASK) as VertexId;
            let ss = slots[s as usize].load(Ordering::Acquire);
            if ss != EMPTY_SLOT && (ss & PROPOSER_MASK) as VertexId == v as VertexId {
                s
            } else {
                UNMATCHED
            }
        };
    }
}

/// Lock-free parallel Suitor (see the module docs): vertices propose
/// concurrently through packed `fetch_max` slots; displacement chains
/// continue on the displacing thread.
pub fn parallel_suitor(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    parallel_suitor_traced(l, weights, MatcherCounters::disabled())
}

/// [`parallel_suitor`] with event counting: proposals, displacements
/// and lost `fetch_max` races (schedule-dependent — see module docs).
pub fn parallel_suitor_traced(
    l: &BipartiteGraph,
    weights: &[f64],
    counters: &MatcherCounters,
) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mut ws = SuitorWorkspace::new(l);
    let (vertex_bounds, order_bounds) = degree_grains(l);
    ws.sort_segments(l, weights, &vertex_bounds, &order_bounds);
    let slots = &ws.slots;
    let score_left = &ws.score_left;
    let score_right = &ws.score_right;
    (0..n as VertexId)
        .into_par_iter()
        .with_min_len(64)
        .for_each(|v| propose_chain(l, weights, slots, score_left, score_right, v, counters));
    let mut mate = vec![UNMATCHED; n];
    extract_mates_into(&ws.slots, &mut mate);
    view.to_matching(&mate)
}

/// Mutual proposals are the matched pairs.
fn mutual_proposals_to_matching(view: &UnifiedView<'_>, suitor: &[VertexId]) -> Matching {
    let n = suitor.len();
    let mut mate = vec![UNMATCHED; n];
    for v in 0..n {
        let s = suitor[v];
        if s != UNMATCHED && suitor[s as usize] == v as VertexId {
            mate[v] = s;
        }
    }
    view.to_matching(&mate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy::greedy_matching;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn serial_suitor_equals_greedy() {
        for seed in 0..25 {
            let l = random_l(seed, 10, 11, 0.4, false);
            assert_eq!(
                serial_suitor(&l, l.weights()),
                greedy_matching(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn serial_suitor_equals_greedy_with_ties() {
        for seed in 50..70 {
            let l = random_l(seed, 12, 12, 0.5, true);
            assert_eq!(
                serial_suitor(&l, l.weights()),
                greedy_matching(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_suitor_equals_serial() {
        for seed in 100..120 {
            let l = random_l(seed, 30, 28, 0.2, false);
            assert_eq!(
                parallel_suitor(&l, l.weights()),
                serial_suitor(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_suitor_equals_serial_with_ties() {
        for seed in 200..220 {
            let l = random_l(seed, 24, 26, 0.35, true);
            assert_eq!(
                parallel_suitor(&l, l.weights()),
                serial_suitor(&l, l.weights()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_suitor_deterministic_across_runs() {
        let l = random_l(7, 60, 55, 0.15, true);
        let first = parallel_suitor(&l, l.weights());
        for _ in 0..10 {
            assert_eq!(first, parallel_suitor(&l, l.weights()));
        }
    }

    #[test]
    fn handles_degenerate_graphs() {
        let empty = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(serial_suitor(&empty, empty.weights()).cardinality(), 0);
        assert_eq!(parallel_suitor(&empty, empty.weights()).cardinality(), 0);
        let neg = BipartiteGraph::from_entries(1, 1, vec![(0, 0, -1.0)]);
        assert_eq!(serial_suitor(&neg, neg.weights()).cardinality(), 0);
        assert_eq!(parallel_suitor(&neg, neg.weights()).cardinality(), 0);
    }

    #[test]
    fn star_graph_takes_heaviest_leaf() {
        let l = BipartiteGraph::from_entries(
            1,
            4,
            vec![(0, 0, 1.0), (0, 1, 3.0), (0, 2, 2.0), (0, 3, 0.5)],
        );
        let m = serial_suitor(&l, l.weights());
        assert_eq!(m.mate_of_left(0), Some(1));
        assert_eq!(m.cardinality(), 1);
        assert_eq!(parallel_suitor(&l, l.weights()), m);
    }

    #[test]
    fn traced_counts_proposals_and_displacements() {
        // Star: every leaf proposes to the center in turn; each winner
        // displaces the previous one except the first.
        let l = random_l(33, 20, 20, 0.3, false);
        let counters = MatcherCounters::new(true);
        let m = parallel_suitor_traced(&l, l.weights(), &counters);
        let s = counters.snapshot();
        assert!(
            s.proposals >= m.cardinality() as u64,
            "every matched pair needs at least one proposal per side"
        );
        // Untraced sink records nothing and does not perturb results.
        assert_eq!(m, parallel_suitor(&l, l.weights()));
        assert!(MatcherCounters::disabled().snapshot().is_zero());
    }

    #[test]
    fn scores_encode_the_total_order() {
        let l = random_l(91, 15, 15, 0.4, true);
        let mut ws = SuitorWorkspace::new(&l);
        let (vb, ob) = degree_grains(&l);
        ws.sort_segments(&l, l.weights(), &vb, &ob);
        let na = l.num_left();
        // Within every vertex's adjacency, a higher score must mean a
        // greater edge under the unified order.
        for v in 0..(na + l.num_right()) as VertexId {
            let seg = &ws.order[ws.seg_start[v as usize]..ws.seg_start[v as usize + 1]];
            for pair in seg.windows(2) {
                let (hi, lo) = (pair[0] as usize, pair[1] as usize);
                let other = |e: usize| {
                    let (a, b) = l.endpoints(e);
                    if (v as usize) < na {
                        na as VertexId + b
                    } else {
                        a
                    }
                };
                assert!(unified_edge_gt(
                    l.weights()[hi],
                    v,
                    other(hi),
                    l.weights()[lo],
                    v,
                    other(lo)
                ));
                let score_of = |e: usize| {
                    if (v as usize) < na {
                        ws.score_left[e].load(Ordering::Relaxed)
                    } else {
                        ws.score_right[e].load(Ordering::Relaxed)
                    }
                };
                assert!(score_of(hi) > score_of(lo));
            }
        }
    }
}
