//! The paper's parallel locally-dominant ½-approximate matching
//! (Algorithms 1–3 of §V), implemented with `std::sync::atomic` and
//! rayon.
//!
//! Structure (mirroring the pseudo-code):
//!
//! * **Phase 1** — `FindMate` for every vertex in parallel, then
//!   `MatchVertex` for every vertex in parallel. Locally-dominant pairs
//!   (mutual candidates) are claimed and enqueued in `Q_C`.
//! * **Phase 2** — while `Q_C` is non-empty, one *round* per queue
//!   generation, each round split into three barrier-separated
//!   sub-phases:
//!   1. **collect** — for each matched vertex `u ∈ Q_C` in parallel,
//!      every free neighbor `v` whose candidate was invalidated
//!      (`candidate[v] = u`, or never computed) is claimed into a
//!      deduplicated reprocess list;
//!   2. **re-find** — `FindMate` re-runs for every listed vertex
//!      against the frozen mate array;
//!   3. **match** — `MatchVertex` runs for every listed vertex; fresh
//!      matches enqueue into `Q_N`, and the queues swap.
//!
//!   The barriers between sub-phases (the ends of the rayon parallel
//!   loops) freeze `mate` during collect/re-find and `candidate` during
//!   match, so *which* vertices re-run `FindMate`, *what* they compute,
//!   and *which* pairs match in a round are all schedule-independent.
//!   Only the order of the reprocess list and the identity of the
//!   thread that wins a claim remain racy — neither affects the result
//!   nor any counter value.
//!
//! Queue pushes use `fetch_add` on an atomic tail index — the Rust
//! equivalent of the `__sync_fetch_and_add` hardware intrinsic the
//! paper highlights. Mate claims use a single compare-exchange on the
//! smaller endpoint (canonical order), so exactly one thread wins a
//! pair and duplicates are impossible; the winner alone enqueues both
//! endpoints, bounding each queue by the vertex count.
//!
//! Under the total edge order of [`crate::order`] the locally-dominant
//! matching is unique, so this routine returns bit-identical results
//! for every thread count and schedule — a property the tests assert
//! against the serial implementation.
//!
//! # Observability
//!
//! [`parallel_local_dominant_traced`] records event counts into a
//! [`MatcherCounters`]: phase-2 rounds, initial and re-run `FindMate`
//! executions, `MatchVertex` attempts (reciprocity hits), matched
//! pairs, lost claim compare-exchanges, and the queue high-water mark.
//! With [`InitStrategy::BothSides`] every counter is deterministic for
//! a fixed input at any thread count (the sub-phase structure above);
//! with [`InitStrategy::LeftSide`] the on-demand candidate computation
//! makes `find_mate_initial` (and through it `match_attempts` /
//! `cas_failures`) schedule-dependent.

use super::{unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use netalign_trace::MatcherCounters;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// How Phase 1 seeds the candidate pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Spawn from both vertex sets, as in the general-graph algorithm.
    #[default]
    BothSides,
    /// Spawn only from `V_A`, computing the reciprocal candidate of the
    /// chosen `V_B` vertex on demand — the bipartite-aware
    /// initialization the paper reports as "noticeably" faster (§V).
    LeftSide,
}

/// Options for [`parallel_local_dominant`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelLdOptions {
    /// Phase-1 initialization strategy.
    pub init: InitStrategy,
}

/// Candidate sentinel: not yet computed (used by the one-side init).
pub(crate) const UNSET: VertexId = VertexId::MAX;
/// Candidate sentinel: computed, no eligible neighbor.
pub(crate) const NO_CANDIDATE: VertexId = VertexId::MAX - 1;
/// Reprocess-claim sentinel: never claimed in any round.
pub(crate) const NEVER: u32 = u32::MAX;

/// Parallel locally-dominant matching on the unified view of `l`,
/// using the current rayon thread pool.
pub fn parallel_local_dominant(
    l: &BipartiteGraph,
    weights: &[f64],
    opts: ParallelLdOptions,
) -> Matching {
    parallel_local_dominant_traced(l, weights, opts, MatcherCounters::disabled())
}

/// [`parallel_local_dominant`] with event counting (see the module
/// docs for the determinism guarantees per init strategy).
pub fn parallel_local_dominant_traced(
    l: &BipartiteGraph,
    weights: &[f64],
    opts: ParallelLdOptions,
    counters: &MatcherCounters,
) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mate: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let candidate: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    // Queues: each matched vertex is enqueued exactly once (by the
    // thread that won its pair), so capacity n suffices.
    let q_cur: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let q_next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let tail_cur = AtomicUsize::new(0);
    let tail_next = AtomicUsize::new(0);

    // Phase-2 reprocess list: `claimed[v]` holds the last round that
    // listed `v` (swap-as-claim dedups without a per-round reset).
    let reprocess: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let reprocess_tail = AtomicUsize::new(0);
    let claimed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NEVER)).collect();

    match opts.init {
        InitStrategy::BothSides => {
            counters.add_find_mate_initial(n as u64);
            (0..n as VertexId).into_par_iter().for_each(|v| {
                candidate[v as usize].store(find_mate(&view, v, &mate), Ordering::SeqCst);
            });
            (0..n as VertexId).into_par_iter().for_each(|v| {
                match_vertex(&view, v, &mate, &candidate, &q_cur, &tail_cur, counters);
            });
        }
        InitStrategy::LeftSide => {
            let na = view.na() as VertexId;
            counters.add_find_mate_initial(na as u64);
            (0..na).into_par_iter().for_each(|a| {
                candidate[a as usize].store(find_mate(&view, a, &mate), Ordering::SeqCst);
            });
            (0..na).into_par_iter().for_each(|a| {
                let b = candidate[a as usize].load(Ordering::SeqCst);
                if b == NO_CANDIDATE || b == UNSET {
                    return;
                }
                // MatchVertex computes `b`'s candidate on demand (see
                // below). Attempt the match from both endpoints: `b`'s
                // freshly computed candidate may reciprocate some
                // *other* left vertex whose own MatchVertex already ran
                // and missed it.
                match_vertex(&view, a, &mate, &candidate, &q_cur, &tail_cur, counters);
                match_vertex(&view, b, &mate, &candidate, &q_cur, &tail_cur, counters);
            });
        }
    }
    let st = LdState {
        mate: &mate,
        candidate: &candidate,
        q_cur: &q_cur,
        q_next: &q_next,
        tail_cur: &tail_cur,
        tail_next: &tail_next,
        reprocess: &reprocess,
        reprocess_tail: &reprocess_tail,
        claimed: &claimed,
    };
    ld_phase2(&view, &st, counters);

    let mate_plain: Vec<VertexId> = mate.iter().map(|m| m.load(Ordering::Acquire)).collect();
    view.to_matching(&mate_plain)
}

/// Borrowed working state of the queue-based algorithm, shared between
/// the one-shot entry point above and the preallocated
/// [`crate::engine::MatcherEngine`].
pub(crate) struct LdState<'s> {
    pub mate: &'s [AtomicU32],
    pub candidate: &'s [AtomicU32],
    pub q_cur: &'s [AtomicU32],
    pub q_next: &'s [AtomicU32],
    pub tail_cur: &'s AtomicUsize,
    pub tail_next: &'s AtomicUsize,
    pub reprocess: &'s [AtomicU32],
    pub reprocess_tail: &'s AtomicUsize,
    pub claimed: &'s [AtomicU32],
}

/// Phase 2: process queue rounds until no new matches appear. Expects
/// `q_cur`/`tail_cur` seeded by a phase-1 sweep, `reprocess_tail` zero
/// and `claimed` at [`NEVER`] for every vertex that might be listed
/// (the round counter restarts at 0 on every call).
pub(crate) fn ld_phase2(view: &UnifiedView<'_>, st: &LdState<'_>, counters: &MatcherCounters) {
    counters.record_queue_len(st.tail_cur.load(Ordering::Acquire) as u64);
    let (mate, candidate) = (st.mate, st.candidate);
    let (reprocess, reprocess_tail, claimed) = (st.reprocess, st.reprocess_tail, st.claimed);
    let (mut qc, mut tc, mut qn, mut tn) = (st.q_cur, st.tail_cur, st.q_next, st.tail_next);
    let mut round: u32 = 0;
    while tc.load(Ordering::Acquire) > 0 {
        let len = tc.load(Ordering::Acquire);
        counters.incr_rounds();

        // Sub-phase 2a (collect): claim every free neighbor whose
        // candidate the previous round's matches invalidated. `mate`
        // and `candidate` are frozen here, so the claimed *set* is
        // deterministic; only its order in the list is not.
        qc[..len].par_iter().for_each(|slot| {
            let u = slot.load(Ordering::Acquire);
            debug_assert_ne!(u, UNMATCHED);
            let na = view.na() as VertexId;
            let consider = |v: VertexId| {
                if mate[v as usize].load(Ordering::Acquire) != UNMATCHED {
                    return;
                }
                let c = candidate[v as usize].load(Ordering::SeqCst);
                // `UNSET` only occurs with the one-side init: the right
                // vertex never computed a candidate, so list it too.
                if (c == u || c == UNSET)
                    && claimed[v as usize].swap(round, Ordering::AcqRel) != round
                {
                    let idx = reprocess_tail.fetch_add(1, Ordering::AcqRel);
                    reprocess[idx].store(v, Ordering::Release);
                }
            };
            if u < na {
                for (b, _) in view.l.left_edges(u) {
                    consider(na + b);
                }
            } else {
                for (a, _) in view.l.right_edges(u - na) {
                    consider(a);
                }
            }
        });
        let listed = reprocess_tail.load(Ordering::Acquire);
        counters.add_find_mate_reruns(listed as u64);

        // Sub-phase 2b (re-find): recompute candidates against the
        // frozen mate array. Distinct listed vertices write distinct
        // slots, so the computed values are deterministic.
        reprocess[..listed].par_iter().for_each(|slot| {
            let v = slot.load(Ordering::Acquire);
            candidate[v as usize].store(find_mate(view, v, mate), Ordering::SeqCst);
        });

        // Sub-phase 2c (match): candidates are now frozen; the
        // reciprocal pairs — and with them every counter increment —
        // are fixed before the first claim races.
        reprocess[..listed].par_iter().for_each(|slot| {
            let v = slot.load(Ordering::Acquire);
            match_vertex(view, v, mate, candidate, qn, tn, counters);
        });

        reprocess_tail.store(0, Ordering::Release);
        std::mem::swap(&mut qc, &mut qn);
        std::mem::swap(&mut tc, &mut tn);
        tn.store(0, Ordering::Release);
        counters.record_queue_len(tc.load(Ordering::Acquire) as u64);
        round += 1;
    }
}

/// `FindMate` (Algorithm 2): the heaviest currently-free neighbor of
/// `s` under the total edge order, or `NO_CANDIDATE`.
pub(crate) fn find_mate(view: &UnifiedView<'_>, s: VertexId, mate: &[AtomicU32]) -> VertexId {
    let mut best_id = NO_CANDIDATE;
    let mut best_w = 0.0f64;
    view.for_each_neighbor(s, |t, w| {
        if w <= 0.0 || mate[t as usize].load(Ordering::Acquire) != UNMATCHED {
            return;
        }
        if best_id == NO_CANDIDATE || unified_edge_gt(w, s, t, best_w, s, best_id) {
            best_id = t;
            best_w = w;
        }
    });
    best_id
}

/// `MatchVertex` (Algorithm 3): match `(s, candidate[s])` when locally
/// dominant; the claim winner enqueues both endpoints.
#[allow(clippy::too_many_arguments)]
pub(crate) fn match_vertex(
    view: &UnifiedView<'_>,
    s: VertexId,
    mate: &[AtomicU32],
    candidate: &[AtomicU32],
    queue: &[AtomicU32],
    tail: &AtomicUsize,
    counters: &MatcherCounters,
) {
    let c = candidate[s as usize].load(Ordering::SeqCst);
    if c == NO_CANDIDATE || c == UNSET {
        return;
    }
    // One-side init leaves right-vertex candidates uncomputed until
    // first touched: compute on demand (once, CAS keeps the first
    // write) or the reciprocity check below would wrongly fail.
    if candidate[c as usize].load(Ordering::SeqCst) == UNSET {
        counters.add_find_mate_initial(1);
        let fm = find_mate(view, c, mate);
        let _ =
            candidate[c as usize].compare_exchange(UNSET, fm, Ordering::SeqCst, Ordering::SeqCst);
    }
    if candidate[c as usize].load(Ordering::SeqCst) != s {
        return;
    }
    // Locally dominant: claim in canonical (smaller id first) order so
    // that exactly one of the two symmetric MatchVertex calls wins.
    counters.add_match_attempts(1);
    let (lo, hi) = if s < c { (s, c) } else { (c, s) };
    if mate[lo as usize]
        .compare_exchange(UNMATCHED, hi, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        counters.add_matched_pairs(1);
        // Reciprocity is stable once observed (a vertex only recomputes
        // its candidate after its current candidate got matched), so the
        // partner slot is exclusively ours.
        let prev = mate[hi as usize].swap(lo, Ordering::AcqRel);
        debug_assert_eq!(prev, UNMATCHED, "partner was claimed twice");
        let idx = tail.fetch_add(2, Ordering::AcqRel);
        queue[idx].store(lo, Ordering::Release);
        queue[idx + 1].store(hi, Ordering::Release);
    } else {
        counters.add_cas_failures(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy::greedy_matching;
    use crate::approx::local_dominant::serial_local_dominant;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn equals_serial_on_randoms_both_sides() {
        for seed in 0..20 {
            let l = random_l(seed, 30, 28, 0.15, false);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn equals_serial_with_one_side_init() {
        let opts = ParallelLdOptions {
            init: InitStrategy::LeftSide,
        };
        for seed in 40..60 {
            let l = random_l(seed, 25, 31, 0.2, false);
            let par = parallel_local_dominant(&l, l.weights(), opts);
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn equals_serial_with_weight_ties() {
        for seed in 80..95 {
            let l = random_l(seed, 40, 40, 0.25, true);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let l = random_l(7, 60, 55, 0.1, true);
        let first = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        for _ in 0..10 {
            let again = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            assert_eq!(first, again);
        }
    }

    #[test]
    fn matches_greedy_reference() {
        for seed in 120..135 {
            let l = random_l(seed, 20, 20, 0.3, false);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let gr = greedy_matching(&l, l.weights());
            assert_eq!(par, gr, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let l = BipartiteGraph::from_entries(4, 4, Vec::<(u32, u32, f64)>::new());
        let m = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn maximality_on_larger_instance() {
        let l = random_l(999, 200, 180, 0.05, false);
        let m = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        assert!(m.is_valid(&l));
        assert!(m.is_maximal(&l, l.weights()));
    }

    /// Hand-built conflict instance with exactly known counter values.
    ///
    /// Path weights `a0 -2- b0`, `a0 -3- b1`, `a1 -1- b1`:
    /// phase 1 matches `(a0, b1)` (mutual best, weight 3) in one pair;
    /// round 1 reprocesses `b0` (candidate was `a0`) and `a1`
    /// (candidate was `b1`), both re-run FindMate and find nothing
    /// (their only positive-weight neighbors are taken); round 2 never
    /// happens because no pair matched.
    #[test]
    fn counters_exact_on_conflict_path() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 1.0)]);
        let counters = MatcherCounters::new(true);
        let m = parallel_local_dominant_traced(
            &l,
            l.weights(),
            ParallelLdOptions::default(),
            &counters,
        );
        assert_eq!(m.cardinality(), 1);
        let s = counters.snapshot();
        assert_eq!(s.find_mate_initial, 4, "one FindMate per vertex in phase 1");
        assert_eq!(s.rounds, 1, "one phase-2 round drains the queue");
        assert_eq!(s.find_mate_reruns, 2, "b0 and a1 re-run FindMate");
        assert_eq!(s.match_attempts, 2, "both endpoints of (a0,b1) attempt");
        assert_eq!(s.matched_pairs, 1);
        assert_eq!(s.cas_failures, 1, "the losing endpoint of the pair");
        assert_eq!(s.queue_peak, 2, "the queue held both endpoints once");
    }

    /// A 3×3 chain of conflicts that needs a productive second round:
    /// `a0 -5- b0` and `a1`'s best (`b0`) gets taken, so `a1` falls
    /// back to `b1`, displacing `a2`'s hope in round 2.
    #[test]
    fn counters_exact_on_cascading_rounds() {
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 5.0),
                (1, 0, 4.0),
                (1, 1, 3.0),
                (2, 1, 2.0),
                (2, 2, 1.0),
            ],
        );
        let counters = MatcherCounters::new(true);
        let m = parallel_local_dominant_traced(
            &l,
            l.weights(),
            ParallelLdOptions::default(),
            &counters,
        );
        // Locally-dominant (= greedy by weight): (a0,b0), (a1,b1), (a2,b2).
        assert_eq!(m.cardinality(), 3);
        let s = counters.snapshot();
        assert_eq!(s.find_mate_initial, 6);
        // Phase 1 matches (a0,b0) (both endpoints attempt, one loses the
        // claim). Round 1 lists only a1 (its candidate b0 got taken);
        // its re-found candidate b1 still points at a1, so (a1,b1)
        // matches from a1's attempt alone. Round 2 likewise lists only
        // a2 and matches (a2,b2). Round 3 lists nothing and the queue
        // drains.
        assert_eq!(s.rounds, 3);
        assert_eq!(s.find_mate_reruns, 2, "a1 in round 1, a2 in round 2");
        assert_eq!(s.match_attempts, 4);
        assert_eq!(s.matched_pairs, 3);
        assert_eq!(s.cas_failures, 1);
        assert_eq!(s.queue_peak, 2);
    }

    /// Counter determinism: two traced runs on the same input produce
    /// identical snapshots (BothSides init; see module docs).
    #[test]
    fn counters_are_deterministic_across_runs() {
        let l = random_l(4242, 80, 75, 0.12, true);
        let mut snaps = Vec::new();
        for _ in 0..5 {
            let c = MatcherCounters::new(true);
            let _ =
                parallel_local_dominant_traced(&l, l.weights(), ParallelLdOptions::default(), &c);
            snaps.push(c.snapshot());
        }
        for s in &snaps[1..] {
            assert_eq!(*s, snaps[0]);
        }
    }

    /// The disabled sink records nothing and does not perturb results.
    #[test]
    fn disabled_counters_stay_zero() {
        let l = random_l(11, 30, 30, 0.2, false);
        let traced = MatcherCounters::new(true);
        let a =
            parallel_local_dominant_traced(&l, l.weights(), ParallelLdOptions::default(), &traced);
        let b = parallel_local_dominant_traced(
            &l,
            l.weights(),
            ParallelLdOptions::default(),
            MatcherCounters::disabled(),
        );
        assert_eq!(a, b);
        assert!(!traced.snapshot().is_zero());
        assert!(MatcherCounters::disabled().snapshot().is_zero());
    }
}
