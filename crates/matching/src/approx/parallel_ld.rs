//! The paper's parallel locally-dominant ½-approximate matching
//! (Algorithms 1–3 of §V), implemented with `std::sync::atomic` and
//! rayon.
//!
//! Structure (mirroring the pseudo-code):
//!
//! * **Phase 1** — `FindMate` for every vertex in parallel, then
//!   `MatchVertex` for every vertex in parallel. Locally-dominant pairs
//!   (mutual candidates) are claimed and enqueued in `Q_C`.
//! * **Phase 2** — while `Q_C` is non-empty: for each matched vertex
//!   `u ∈ Q_C` in parallel, every free neighbor `v` whose candidate was
//!   invalidated (`candidate[v] = u`) re-runs `FindMate` and
//!   `MatchVertex`, enqueuing fresh matches in `Q_N`; then the queues
//!   swap. Each round is separated by a barrier (the end of the rayon
//!   parallel loop), which is what makes the candidate-invalidation
//!   protocol race-free: a vertex matched in round *r* is processed in
//!   round *r + 1*, after every round-*r* candidate write has completed.
//!
//! Queue pushes use `fetch_add` on an atomic tail index — the Rust
//! equivalent of the `__sync_fetch_and_add` hardware intrinsic the
//! paper highlights. Mate claims use a single compare-exchange on the
//! smaller endpoint (canonical order), so exactly one thread wins a
//! pair and duplicates are impossible; the winner alone enqueues both
//! endpoints, bounding each queue by the vertex count.
//!
//! Under the total edge order of [`crate::order`] the locally-dominant
//! matching is unique, so this routine returns bit-identical results
//! for every thread count and schedule — a property the tests assert
//! against the serial implementation.

use super::{unified_edge_gt, UnifiedView};
use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// How Phase 1 seeds the candidate pointers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Spawn from both vertex sets, as in the general-graph algorithm.
    #[default]
    BothSides,
    /// Spawn only from `V_A`, computing the reciprocal candidate of the
    /// chosen `V_B` vertex on demand — the bipartite-aware
    /// initialization the paper reports as "noticeably" faster (§V).
    LeftSide,
}

/// Options for [`parallel_local_dominant`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelLdOptions {
    /// Phase-1 initialization strategy.
    pub init: InitStrategy,
}

/// Candidate sentinel: not yet computed (used by the one-side init).
const UNSET: VertexId = VertexId::MAX;
/// Candidate sentinel: computed, no eligible neighbor.
const NO_CANDIDATE: VertexId = VertexId::MAX - 1;

/// Parallel locally-dominant matching on the unified view of `l`,
/// using the current rayon thread pool.
pub fn parallel_local_dominant(
    l: &BipartiteGraph,
    weights: &[f64],
    opts: ParallelLdOptions,
) -> Matching {
    let view = UnifiedView::new(l, weights);
    let n = view.num_vertices();
    let mate: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let candidate: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    // Queues: each matched vertex is enqueued exactly once (by the
    // thread that won its pair), so capacity n suffices.
    let q_cur: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let q_next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let tail_cur = AtomicUsize::new(0);
    let tail_next = AtomicUsize::new(0);

    match opts.init {
        InitStrategy::BothSides => {
            (0..n as VertexId).into_par_iter().for_each(|v| {
                candidate[v as usize].store(find_mate(&view, v, &mate), Ordering::SeqCst);
            });
            (0..n as VertexId).into_par_iter().for_each(|v| {
                match_vertex(&view, v, &mate, &candidate, &q_cur, &tail_cur);
            });
        }
        InitStrategy::LeftSide => {
            let na = view.na() as VertexId;
            (0..na).into_par_iter().for_each(|a| {
                candidate[a as usize].store(find_mate(&view, a, &mate), Ordering::SeqCst);
            });
            (0..na).into_par_iter().for_each(|a| {
                let b = candidate[a as usize].load(Ordering::SeqCst);
                if b == NO_CANDIDATE || b == UNSET {
                    return;
                }
                // MatchVertex computes `b`'s candidate on demand (see
                // below). Attempt the match from both endpoints: `b`'s
                // freshly computed candidate may reciprocate some
                // *other* left vertex whose own MatchVertex already ran
                // and missed it.
                match_vertex(&view, a, &mate, &candidate, &q_cur, &tail_cur);
                match_vertex(&view, b, &mate, &candidate, &q_cur, &tail_cur);
            });
        }
    }

    // Phase 2: process rounds until no new matches appear.
    let (mut qc, mut tc, mut qn, mut tn) = (&q_cur, &tail_cur, &q_next, &tail_next);
    while tc.load(Ordering::Acquire) > 0 {
        let len = tc.load(Ordering::Acquire);
        qc[..len].par_iter().for_each(|slot| {
            let u = slot.load(Ordering::Acquire);
            debug_assert_ne!(u, UNMATCHED);
            let na = view.na() as VertexId;
            let process = |v: VertexId| {
                if mate[v as usize].load(Ordering::Acquire) != UNMATCHED {
                    return;
                }
                let c = candidate[v as usize].load(Ordering::SeqCst);
                // `UNSET` only occurs with the one-side init: the right
                // vertex never computed a candidate, so compute it now.
                if c == u || c == UNSET {
                    // SeqCst store + SeqCst reciprocity loads in
                    // MatchVertex: when two vertices pick each other in
                    // the same round, sequential consistency forbids the
                    // store-buffer outcome where *both* of their
                    // MatchVertex calls read the other's stale pointer,
                    // so at least one detects the pair.
                    candidate[v as usize].store(find_mate(&view, v, &mate), Ordering::SeqCst);
                    match_vertex(&view, v, &mate, &candidate, qn, tn);
                }
            };
            if u < na {
                for (b, _) in view.l.left_edges(u) {
                    process(na + b);
                }
            } else {
                for (a, _) in view.l.right_edges(u - na) {
                    process(a);
                }
            }
        });
        // Barrier reached (parallel loop joined): swap queues.
        std::mem::swap(&mut qc, &mut qn);
        std::mem::swap(&mut tc, &mut tn);
        tn.store(0, Ordering::Release);
    }

    let mate_plain: Vec<VertexId> = mate.iter().map(|m| m.load(Ordering::Acquire)).collect();
    view.to_matching(&mate_plain)
}

/// `FindMate` (Algorithm 2): the heaviest currently-free neighbor of
/// `s` under the total edge order, or `NO_CANDIDATE`.
fn find_mate(view: &UnifiedView<'_>, s: VertexId, mate: &[AtomicU32]) -> VertexId {
    let mut best_id = NO_CANDIDATE;
    let mut best_w = 0.0f64;
    view.for_each_neighbor(s, |t, w| {
        if w <= 0.0 || mate[t as usize].load(Ordering::Acquire) != UNMATCHED {
            return;
        }
        if best_id == NO_CANDIDATE || unified_edge_gt(w, s, t, best_w, s, best_id) {
            best_id = t;
            best_w = w;
        }
    });
    best_id
}

/// `MatchVertex` (Algorithm 3): match `(s, candidate[s])` when locally
/// dominant; the claim winner enqueues both endpoints.
fn match_vertex(
    view: &UnifiedView<'_>,
    s: VertexId,
    mate: &[AtomicU32],
    candidate: &[AtomicU32],
    queue: &[AtomicU32],
    tail: &AtomicUsize,
) {
    let c = candidate[s as usize].load(Ordering::SeqCst);
    if c == NO_CANDIDATE || c == UNSET {
        return;
    }
    // One-side init leaves right-vertex candidates uncomputed until
    // first touched: compute on demand (once, CAS keeps the first
    // write) or the reciprocity check below would wrongly fail.
    if candidate[c as usize].load(Ordering::SeqCst) == UNSET {
        let fm = find_mate(view, c, mate);
        let _ = candidate[c as usize].compare_exchange(UNSET, fm, Ordering::SeqCst, Ordering::SeqCst);
    }
    if candidate[c as usize].load(Ordering::SeqCst) != s {
        return;
    }
    // Locally dominant: claim in canonical (smaller id first) order so
    // that exactly one of the two symmetric MatchVertex calls wins.
    let (lo, hi) = if s < c { (s, c) } else { (c, s) };
    if mate[lo as usize]
        .compare_exchange(UNMATCHED, hi, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        // Reciprocity is stable once observed (a vertex only recomputes
        // its candidate after its current candidate got matched), so the
        // partner slot is exclusively ours.
        let prev = mate[hi as usize].swap(lo, Ordering::AcqRel);
        debug_assert_eq!(prev, UNMATCHED, "partner was claimed twice");
        let idx = tail.fetch_add(2, Ordering::AcqRel);
        queue[idx].store(lo, Ordering::Release);
        queue[idx + 1].store(hi, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy::greedy_matching;
    use crate::approx::local_dominant::serial_local_dominant;
    use rand::{Rng, SeedableRng};

    fn random_l(seed: u64, na: usize, nb: usize, p: f64, ties: bool) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut entries = Vec::new();
        for a in 0..na {
            for b in 0..nb {
                if rng.gen_bool(p) {
                    let w = if ties {
                        rng.gen_range(1..4) as f64
                    } else {
                        rng.gen_range(0.1..5.0)
                    };
                    entries.push((a as u32, b as u32, w));
                }
            }
        }
        BipartiteGraph::from_entries(na, nb, entries)
    }

    #[test]
    fn equals_serial_on_randoms_both_sides() {
        for seed in 0..20 {
            let l = random_l(seed, 30, 28, 0.15, false);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn equals_serial_with_one_side_init() {
        let opts = ParallelLdOptions { init: InitStrategy::LeftSide };
        for seed in 40..60 {
            let l = random_l(seed, 25, 31, 0.2, false);
            let par = parallel_local_dominant(&l, l.weights(), opts);
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn equals_serial_with_weight_ties() {
        for seed in 80..95 {
            let l = random_l(seed, 40, 40, 0.25, true);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let ser = serial_local_dominant(&l, l.weights());
            assert_eq!(par, ser, "seed {seed}");
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let l = random_l(7, 60, 55, 0.1, true);
        let first = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        for _ in 0..10 {
            let again = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            assert_eq!(first, again);
        }
    }

    #[test]
    fn matches_greedy_reference() {
        for seed in 120..135 {
            let l = random_l(seed, 20, 20, 0.3, false);
            let par = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
            let gr = greedy_matching(&l, l.weights());
            assert_eq!(par, gr, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let l = BipartiteGraph::from_entries(4, 4, Vec::<(u32, u32, f64)>::new());
        let m = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn maximality_on_larger_instance() {
        let l = random_l(999, 200, 180, 0.05, false);
        let m = parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default());
        assert!(m.is_valid(&l));
        assert!(m.is_maximal(&l, l.weights()));
    }
}
