//! Half-approximate maximum-weight matching algorithms.
//!
//! All three algorithms compute *the same* matching — the unique
//! locally-dominant matching under the total edge order of
//! [`crate::order`] — by different means:
//!
//! * [`greedy`] — global sort by edge key, then a linear scan,
//! * [`local_dominant`] — the serial pointer-based algorithm
//!   (Preis / Manne–Bisseling),
//! * [`parallel_ld`] — the paper's multicore queue-based algorithm
//!   (Algorithms 1–3) with atomic mate claims and `fetch_add` queues.
//!
//! Each is a ½-approximation in both weight and cardinality because the
//! result is a maximal matching of locally-dominant edges.

pub mod external;
pub mod greedy;
pub mod local_dominant;
pub mod parallel_ld;
pub mod path_growing;
pub mod suitor;

pub use external::{default_run_len, external_suitor, external_suitor_traced};
pub use greedy::{greedy_matching, GreedyScratch};
pub use local_dominant::serial_local_dominant;
pub use parallel_ld::{
    parallel_local_dominant, parallel_local_dominant_traced, InitStrategy, ParallelLdOptions,
};
pub use path_growing::path_growing_matching;
pub use suitor::{parallel_suitor, parallel_suitor_traced, serial_suitor};

use netalign_graph::{BipartiteGraph, VertexId};

/// Adjacency entries per parallel grain for the vertex sweeps. Chosen
/// so a grain amortizes rayon's task overhead while hub vertices of a
/// power-law `L` still spread across grains.
const GRAIN_ENTRIES: usize = 2048;

/// Degree-aware grain bounds over the unified vertex set: consecutive
/// vertex ranges holding roughly [`GRAIN_ENTRIES`] adjacency entries
/// each, so power-law hubs don't pile into one rayon task the way
/// fixed-width vertex chunks would.
///
/// Returns `(vertex_bounds, entry_bounds)`, both of length `g + 1`:
/// grain `i` spans unified vertices `vertex_bounds[i]..vertex_bounds[i+1]`
/// whose adjacency segments occupy `entry_bounds[i]..entry_bounds[i+1]`
/// of the concatenated (left then right) adjacency array. The split
/// depends only on the graph — never on the pool size — so every sweep
/// over these grains partitions work identically at any thread count.
pub(crate) fn degree_grains(l: &BipartiteGraph) -> (Vec<u32>, Vec<usize>) {
    let na = l.num_left();
    let n = na + l.num_right();
    let mut vertex_bounds = vec![0u32];
    let mut entry_bounds = vec![0usize];
    let mut acc = 0usize;
    let mut cum = 0usize;
    for v in 0..n {
        let d = if v < na {
            l.left_degree(v as VertexId)
        } else {
            l.right_degree((v - na) as VertexId)
        };
        acc += d;
        cum += d;
        if acc >= GRAIN_ENTRIES {
            vertex_bounds.push((v + 1) as u32);
            entry_bounds.push(cum);
            acc = 0;
        }
    }
    if *vertex_bounds.last().unwrap() != n as u32 {
        vertex_bounds.push(n as u32);
        entry_bounds.push(cum);
    }
    debug_assert_eq!(cum, 2 * l.num_edges());
    (vertex_bounds, entry_bounds)
}

/// A view of the bipartite graph `L` as a *general* graph on the
/// unified vertex set `0..na+nb` (left ids unchanged, right vertex `b`
/// becomes `na + b`). The paper feeds `L` to the matcher this way:
/// "we provide a bipartite graph as a general graph to the algorithm by
/// not making a distinction between the two sets of vertices" (§V).
pub(crate) struct UnifiedView<'a> {
    pub l: &'a BipartiteGraph,
    pub weights: &'a [f64],
}

impl<'a> UnifiedView<'a> {
    pub fn new(l: &'a BipartiteGraph, weights: &'a [f64]) -> Self {
        assert_eq!(weights.len(), l.num_edges());
        Self { l, weights }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.l.num_left() + self.l.num_right()
    }

    #[inline]
    pub fn na(&self) -> usize {
        self.l.num_left()
    }

    /// Visit `(unified_neighbor, weight)` for every neighbor of a
    /// unified vertex id. A closure-based visitor avoids boxing an
    /// iterator in the innermost matching loop.
    #[inline]
    pub fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, f64)) {
        let na = self.na() as VertexId;
        if v < na {
            for (b, e) in self.l.left_edges(v) {
                f(na + b, self.weights[e]);
            }
        } else {
            for (a, e) in self.l.right_edges(v - na) {
                f(a, self.weights[e]);
            }
        }
    }

    /// Convert a matching over unified ids (mate array of length
    /// `na + nb`) into a [`crate::Matching`].
    pub fn to_matching(&self, mate: &[VertexId]) -> crate::Matching {
        use crate::matching::UNMATCHED;
        let na = self.na();
        let nb = self.l.num_right();
        let mut left = vec![UNMATCHED; na];
        let mut right = vec![UNMATCHED; nb];
        for a in 0..na {
            let m = mate[a];
            if m != UNMATCHED {
                debug_assert!(m >= na as VertexId, "left vertex matched to left vertex");
                left[a] = m - na as VertexId;
            }
        }
        for b in 0..nb {
            let m = mate[na + b];
            if m != UNMATCHED {
                right[b] = m;
            }
        }
        crate::Matching::from_mates(left, right)
    }
}

/// The unified-id edge comparison used by every locally-dominant
/// variant: weight first, then `(max_id, min_id)` — a total order on
/// distinct edges (see [`crate::order`]).
#[inline]
pub(crate) fn unified_edge_gt(
    w1: f64,
    u1: VertexId,
    v1: VertexId,
    w2: f64,
    u2: VertexId,
    v2: VertexId,
) -> bool {
    match w1.total_cmp(&w2) {
        std::cmp::Ordering::Greater => return true,
        std::cmp::Ordering::Less => return false,
        std::cmp::Ordering::Equal => {}
    }
    let k1 = if u1 > v1 { (u1, v1) } else { (v1, u1) };
    let k2 = if u2 > v2 { (u2, v2) } else { (v2, u2) };
    k1 > k2
}
