//! Maximum-*cardinality* bipartite matching (Hopcroft–Karp).
//!
//! Network alignment proper maximizes weight, but cardinality matching
//! is the natural companion: the ½-approximation guarantee of the
//! locally-dominant family holds for cardinality too (any maximal
//! matching is ≥ half the maximum), and experiment reports often quote
//! matched fractions. `O(E √V)`.

use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use std::collections::VecDeque;

/// Maximum-cardinality matching by Hopcroft–Karp.
pub fn hopcroft_karp(l: &BipartiteGraph) -> Matching {
    let na = l.num_left();
    let nb = l.num_right();
    let mut mate_a = vec![UNMATCHED; na];
    let mut mate_b = vec![UNMATCHED; nb];
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; na];
    let mut queue = VecDeque::new();

    loop {
        // BFS from free left vertices to build layer distances.
        queue.clear();
        for a in 0..na {
            if mate_a[a] == UNMATCHED {
                dist[a] = 0;
                queue.push_back(a as VertexId);
            } else {
                dist[a] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(a) = queue.pop_front() {
            for b in l.left_neighbors(a) {
                let owner = mate_b[*b as usize];
                if owner == UNMATCHED {
                    found_augmenting = true;
                } else if dist[owner as usize] == INF {
                    dist[owner as usize] = dist[a as usize] + 1;
                    queue.push_back(owner);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS along layers for a maximal set of disjoint augmenting paths.
        for a in 0..na as VertexId {
            if mate_a[a as usize] == UNMATCHED {
                let _ = dfs(a, l, &mut mate_a, &mut mate_b, &mut dist);
            }
        }
    }
    Matching::from_mates(mate_a, mate_b)
}

fn dfs(
    a: VertexId,
    l: &BipartiteGraph,
    mate_a: &mut [VertexId],
    mate_b: &mut [VertexId],
    dist: &mut [u32],
) -> bool {
    for &b in l.left_neighbors(a) {
        let owner = mate_b[b as usize];
        let advance = owner == UNMATCHED
            || (dist[owner as usize] == dist[a as usize] + 1
                && dfs(owner, l, mate_a, mate_b, dist));
        if advance {
            mate_a[a as usize] = b;
            mate_b[b as usize] = a;
            return true;
        }
    }
    dist[a as usize] = u32::MAX; // dead end: prune for this phase
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::greedy_matching;
    use rand::{Rng, SeedableRng};

    #[test]
    fn perfect_matching_on_cycle() {
        // 2x2 biclique has a perfect matching.
        let l = BipartiteGraph::from_entries(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
        );
        assert_eq!(hopcroft_karp(&l).cardinality(), 2);
    }

    #[test]
    fn augmenting_path_is_used() {
        // Greedy-by-order may match (0,0) and strand 1; HK must find 2.
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        assert_eq!(hopcroft_karp(&l).cardinality(), 2);
    }

    #[test]
    fn respects_koenig_bound_on_stars() {
        // A star: one left vertex, many rights — cardinality 1.
        let l = BipartiteGraph::from_entries(
            1,
            5,
            (0..5).map(|b| (0u32, b as u32, 1.0)).collect::<Vec<_>>(),
        );
        assert_eq!(hopcroft_karp(&l).cardinality(), 1);
    }

    #[test]
    fn dominates_any_maximal_matching() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let na = rng.gen_range(3..20);
            let nb = rng.gen_range(3..20);
            let mut entries = Vec::new();
            for a in 0..na as u32 {
                for b in 0..nb as u32 {
                    if rng.gen_bool(0.2) {
                        entries.push((a, b, rng.gen_range(0.1..2.0)));
                    }
                }
            }
            let l = BipartiteGraph::from_entries(na, nb, entries);
            let hk = hopcroft_karp(&l);
            assert!(hk.is_valid(&l));
            let greedy = greedy_matching(&l, l.weights());
            assert!(hk.cardinality() >= greedy.cardinality());
            // ½-approx in cardinality for the maximal matching:
            assert!(2 * greedy.cardinality() >= hk.cardinality());
        }
    }

    #[test]
    fn empty_graph() {
        let l = BipartiteGraph::from_entries(3, 2, Vec::<(u32, u32, f64)>::new());
        assert_eq!(hopcroft_karp(&l).cardinality(), 0);
    }
}
