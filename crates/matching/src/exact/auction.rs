//! Bertsekas' auction algorithm (single phase, "stay free" option).
//!
//! A near-exact baseline: left vertices bid for right vertices, raising
//! prices by at least ε per bid; a bidder retires when its best net
//! value drops to ≤ 0. Starting from zero prices, the final matching
//! satisfies ε-complementary-slackness, which bounds the gap to the
//! optimum by `cardinality · ε`:
//!
//! * every assigned bidder is within ε of its best current option,
//! * every retired bidder's best option is non-positive (prices only
//!   rise, so retirement is permanent and justified),
//! * unassigned objects keep price 0 (an object, once bid on, never
//!   becomes free again), so `(prices, max-net-values)` is a feasible
//!   LP dual whose value exceeds the optimum by at most
//!   `cardinality · ε`.
//!
//! ε-scaling with kept prices is deliberately *not* used: combined with
//! the stay-free option it leaves positive prices on objects that end
//! the final phase unassigned, which silently voids the bound. The
//! worst-case bid count is `O(nb · max_w / ε)`; this routine is an
//! ablation baseline, not the production matcher.

use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};

/// Auction parameters.
#[derive(Clone, Copy, Debug)]
pub struct AuctionOptions {
    /// ε as a fraction of the maximum edge weight. The optimality gap
    /// is at most `cardinality · eps_rel · max_weight`.
    pub eps_rel: f64,
}

impl Default for AuctionOptions {
    fn default() -> Self {
        Self { eps_rel: 1e-4 }
    }
}

/// Run the auction and return a matching within
/// `cardinality · eps_rel · max_weight` of optimal.
///
/// # Panics
/// Panics if `weights.len() != l.num_edges()` or `eps_rel <= 0`.
pub fn auction_matching(l: &BipartiteGraph, weights: &[f64], opts: AuctionOptions) -> Matching {
    assert_eq!(weights.len(), l.num_edges());
    assert!(opts.eps_rel > 0.0, "eps_rel must be positive");
    let na = l.num_left();
    let nb = l.num_right();
    let max_w = weights.iter().fold(0.0f64, |a, &w| a.max(w));
    if max_w <= 0.0 {
        return Matching::empty(na, nb);
    }
    let eps = opts.eps_rel * max_w;

    let mut prices = vec![0.0f64; nb];
    let mut mate_a = vec![UNMATCHED; na];
    let mut mate_b = vec![UNMATCHED; nb];
    let mut queue: Vec<VertexId> = (0..na as VertexId).collect();

    while let Some(a) = queue.pop() {
        // Best and second-best net value among positive edges.
        let mut best_net = f64::NEG_INFINITY;
        let mut best_b = UNMATCHED;
        let mut second = f64::NEG_INFINITY;
        for (b, e) in l.left_edges(a) {
            let w = weights[e];
            if w <= 0.0 {
                continue;
            }
            let net = w - prices[b as usize];
            if net > best_net {
                second = best_net;
                best_net = net;
                best_b = b;
            } else if net > second {
                second = net;
            }
        }
        if best_b == UNMATCHED || best_net <= 0.0 {
            continue; // retire: staying free is at least as good
        }
        let b = best_b;
        // Bid: raise the price so `a` is indifferent between its best
        // option and the better of (second best, staying free).
        prices[b as usize] += (best_net - second.max(0.0)) + eps;
        let prev = mate_b[b as usize];
        if prev != UNMATCHED {
            mate_a[prev as usize] = UNMATCHED;
            queue.push(prev);
        }
        mate_b[b as usize] = a;
        mate_a[a as usize] = b;
    }
    Matching::from_mates(mate_a, mate_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ssp::max_weight_matching_ssp;

    fn near_optimal(l: &BipartiteGraph, eps_rel: f64) {
        let m = auction_matching(l, l.weights(), AuctionOptions { eps_rel });
        assert!(m.is_valid(l));
        let (opt, _) = max_weight_matching_ssp(l, l.weights());
        let max_w = l.weights().iter().fold(0.0f64, |a, &w| a.max(w));
        let gap = opt.weight_in(l) - m.weight_in(l);
        let bound = m.cardinality().max(1) as f64 * eps_rel * max_w;
        assert!(gap <= bound + 1e-12, "gap {gap} exceeds bound {bound}");
    }

    #[test]
    fn simple_instances_reach_optimum() {
        near_optimal(
            &BipartiteGraph::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0)]),
            1e-6,
        );
        near_optimal(
            &BipartiteGraph::from_entries(2, 1, vec![(0, 0, 4.0), (1, 0, 5.0)]),
            1e-6,
        );
    }

    #[test]
    fn all_negative_yields_empty() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, -1.0), (1, 1, -2.0)]);
        let m = auction_matching(&l, l.weights(), AuctionOptions::default());
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn random_instances_near_optimal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for trial in 0..20 {
            let na = 3 + (trial % 6);
            let nb = 3 + (trial % 5);
            let mut entries = Vec::new();
            for a in 0..na {
                for b in 0..nb {
                    if rng.gen_bool(0.5) {
                        entries.push((a as u32, b as u32, rng.gen_range(0.0..10.0)));
                    }
                }
            }
            near_optimal(&BipartiteGraph::from_entries(na, nb, entries), 1e-5);
        }
    }

    #[test]
    fn tighter_eps_means_smaller_gap() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut entries = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                if rng.gen_bool(0.6) {
                    entries.push((a, b, rng.gen_range(0.0..1.0)));
                }
            }
        }
        let l = BipartiteGraph::from_entries(12, 12, entries);
        let (opt, _) = max_weight_matching_ssp(&l, l.weights());
        let coarse = auction_matching(&l, l.weights(), AuctionOptions { eps_rel: 0.05 });
        let fine = auction_matching(&l, l.weights(), AuctionOptions { eps_rel: 1e-6 });
        assert!(fine.weight_in(&l) + 1e-9 >= coarse.weight_in(&l));
        assert!((opt.weight_in(&l) - fine.weight_in(&l)).abs() < 1e-3);
    }
}
