//! Brute-force maximum-weight matching oracle for tiny instances.
//!
//! Bitmask DP over the right side: `O(na · 2^nb)`. Only intended for
//! testing the real solvers (`nb ≤ 20`).

use crate::matching::Matching;
use netalign_graph::{BipartiteGraph, VertexId};

/// Optimal matching value and one optimal matching, by exhaustive DP.
///
/// # Panics
/// Panics if `l.num_right() > 20` (the DP table would explode).
pub fn brute_force_matching(l: &BipartiteGraph, weights: &[f64]) -> (f64, Matching) {
    let na = l.num_left();
    let nb = l.num_right();
    assert!(
        nb <= 20,
        "brute force oracle limited to 20 right vertices, got {nb}"
    );
    assert_eq!(weights.len(), l.num_edges());

    let full = 1usize << nb;
    // dp[mask] = best value using left vertices 0..i with right-usage mask
    let neg = f64::NEG_INFINITY;
    let mut dp = vec![neg; full];
    let mut choice: Vec<Vec<i8>> = Vec::with_capacity(na); // -1 = skip, else local edge offset
    dp[0] = 0.0;
    for a in 0..na as VertexId {
        let mut ndp = vec![neg; full];
        let mut nchoice = vec![-1i8; full];
        let edges: Vec<(VertexId, usize)> = l.left_edges(a).collect();
        for mask in 0..full {
            if dp[mask] == neg {
                continue;
            }
            // skip a
            if dp[mask] > ndp[mask] {
                ndp[mask] = dp[mask];
                nchoice[mask] = -1;
            }
            for (off, &(b, e)) in edges.iter().enumerate() {
                let w = weights[e];
                if w <= 0.0 {
                    continue;
                }
                let bit = 1usize << b;
                if mask & bit == 0 {
                    let nm = mask | bit;
                    let v = dp[mask] + w;
                    if v > ndp[nm] {
                        ndp[nm] = v;
                        nchoice[nm] = off as i8;
                    }
                }
            }
        }
        dp = ndp;
        choice.push(nchoice);
    }

    // Best final mask and backtrack.
    let (mut best_mask, mut best_val) = (0usize, 0.0f64);
    for (mask, &v) in dp.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best_mask = mask;
        }
    }
    let mut m = Matching::empty(na, nb);
    let mut mask = best_mask;
    for a in (0..na).rev() {
        let c = choice[a][mask];
        if c >= 0 {
            // Invariant: choice[a] stores an index into a's own edge
            // list (set while enumerating those edges), so nth() hits.
            let (b, _) = l.left_edges(a as VertexId).nth(c as usize).unwrap();
            m.add_pair(a as VertexId, b);
            mask &= !(1usize << b);
        }
    }
    (best_val, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computed_optimum() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0)]);
        let (v, m) = brute_force_matching(&l, l.weights());
        assert_eq!(v, 4.0);
        assert!(m.is_valid(&l));
        assert_eq!(m.weight_in(&l), 4.0);
    }

    #[test]
    fn negative_edges_ignored() {
        let l = BipartiteGraph::from_entries(1, 1, vec![(0, 0, -1.0)]);
        let (v, m) = brute_force_matching(&l, l.weights());
        assert_eq!(v, 0.0);
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn backtracked_matching_attains_value() {
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 1, 4.0),
                (1, 0, 3.0),
                (1, 2, 1.5),
                (2, 1, 2.0),
                (2, 2, 2.5),
            ],
        );
        let (v, m) = brute_force_matching(&l, l.weights());
        assert!((m.weight_in(&l) - v).abs() < 1e-12);
        assert_eq!(v, 4.0 + 3.0 + 2.5);
    }
}
