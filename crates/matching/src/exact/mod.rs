//! Exact (and near-exact) maximum-weight bipartite matching.
//!
//! * [`ssp`] — the production solver: successive shortest augmenting
//!   paths with dual potentials, in the style of Mehlhorn–Schäfer's LEDA
//!   implementation that the paper cites as the practical
//!   `O(|E_L| N log N)` exact routine. Returns a dual certificate so
//!   optimality can be verified independently.
//! * [`hungarian`] — a dense O(n³) Kuhn–Munkres solver; an independent
//!   second exact implementation that cross-validates SSP in tests.
//! * [`brute`] — exponential/bitmask-DP oracle for tiny instances; used
//!   by the test-suite to validate everything else.
//! * [`auction`] — Bertsekas' auction algorithm with ε-scaling; a
//!   near-exact baseline with a tunable optimality gap.

pub mod auction;
pub mod brute;
pub mod hungarian;
pub mod ssp;

pub use auction::{auction_matching, AuctionOptions};
pub use brute::brute_force_matching;
pub use hungarian::hungarian_matching;
pub use ssp::{max_weight_matching_ssp, verify_optimality, DualCertificate};
