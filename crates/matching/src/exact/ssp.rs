//! Exact maximum-weight bipartite matching by successive shortest
//! augmenting paths with dual potentials.
//!
//! This is the classical primal–dual algorithm (Mehlhorn–Schäfer /
//! LEDA `MAX_WEIGHT_BIPARTITE_MATCHING`): process the left vertices one
//! at a time, growing an alternating-path forest by Dijkstra over
//! *reduced costs* `rc(a,b) = pot[a] + pot[b] − w(a,b) ≥ 0`. The search
//! may end either at a free right vertex (augment) or by "retiring" a
//! left vertex whose potential drops to zero (it prefers to stay
//! unmatched). The potentials form an LP-dual feasible point whose value
//! equals the matching weight, which certifies optimality.
//!
//! Invariants maintained between phases:
//! 1. `pot[a] + pot[b] ≥ w(a,b)` for every positive-weight edge,
//! 2. matched edges are tight (`=`),
//! 3. all potentials are ≥ 0 and *processed* free vertices have
//!    potential 0.
//!
//! Only strictly positive weights participate: a maximum-weight
//! matching that may leave vertices free never uses a non-positive
//! edge.

use crate::matching::{Matching, UNMATCHED};
use netalign_graph::{BipartiteGraph, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dual potentials returned by the solver; a feasibility+tightness
/// certificate of optimality (see [`verify_optimality`]).
#[derive(Clone, Debug)]
pub struct DualCertificate {
    /// Potentials of the left (`V_A`) vertices.
    pub pot_left: Vec<f64>,
    /// Potentials of the right (`V_B`) vertices.
    pub pot_right: Vec<f64>,
}

/// Min-heap item for the Dijkstra phase.
#[derive(Copy, Clone, PartialEq)]
struct HeapItem {
    dist: f64,
    right: VertexId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest dist.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.right.cmp(&self.right))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compute a maximum-weight matching of `l` under `weights` (global
/// edge order), together with an optimality certificate.
///
/// # Panics
/// Panics if `weights.len() != l.num_edges()`.
pub fn max_weight_matching_ssp(l: &BipartiteGraph, weights: &[f64]) -> (Matching, DualCertificate) {
    assert_eq!(
        weights.len(),
        l.num_edges(),
        "weight vector length mismatch"
    );
    let na = l.num_left();
    let nb = l.num_right();

    let mut mate_a = vec![UNMATCHED; na];
    let mut mate_b = vec![UNMATCHED; nb];
    // pot[a] starts at the heaviest positive incident weight so that
    // invariant (1) holds with pot[b] = 0.
    let mut pot_a: Vec<f64> = (0..na as VertexId)
        .map(|a| l.left_range(a).map(|e| weights[e]).fold(0.0f64, f64::max))
        .collect();
    let mut pot_b = vec![0.0f64; nb];

    // Phase-local state with generation stamps so clears are O(touched).
    let mut gen: u32 = 0;
    let mut dist_b = vec![f64::INFINITY; nb];
    let mut stamp_b = vec![0u32; nb];
    let mut finalized_b = vec![false; nb];
    let mut prev_b = vec![UNMATCHED; nb]; // left vertex that relaxed b
    let mut dist_a = vec![f64::INFINITY; na];
    let mut stamp_a = vec![0u32; na];
    let mut touched_a: Vec<VertexId> = Vec::new();
    let mut touched_b: Vec<VertexId> = Vec::new();
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();

    for s in 0..na as VertexId {
        if pot_a[s as usize] <= 0.0 {
            // No positive edge: staying free is optimal.
            pot_a[s as usize] = 0.0;
            continue;
        }
        gen += 1;
        heap.clear();
        touched_a.clear();
        touched_b.clear();

        // Seed: s at distance 0.
        dist_a[s as usize] = 0.0;
        stamp_a[s as usize] = gen;
        touched_a.push(s);
        // Option: leave `s` unmatched. Cost of retiring left vertex a'
        // is dist[a'] + pot[a'].
        let mut best_retire = pot_a[s as usize];
        let mut best_retire_at = s;

        relax_edges(
            l,
            weights,
            s,
            0.0,
            &pot_a,
            &pot_b,
            gen,
            &mut dist_b,
            &mut stamp_b,
            &mut finalized_b,
            &mut prev_b,
            &mut touched_b,
            &mut heap,
        );

        // Dijkstra over right vertices.
        let mut end_free_right: Option<(VertexId, f64)> = None;
        while let Some(HeapItem { dist, right }) = heap.pop() {
            if stamp_b[right as usize] != gen || finalized_b[right as usize] {
                continue;
            }
            if dist > dist_b[right as usize] {
                continue; // stale heap entry
            }
            if dist >= best_retire {
                break; // retiring is at least as good as anything left
            }
            finalized_b[right as usize] = true;
            let owner = mate_b[right as usize];
            if owner == UNMATCHED {
                end_free_right = Some((right, dist));
                break;
            }
            // Traverse the matched (tight) edge at zero reduced cost.
            let a2 = owner;
            dist_a[a2 as usize] = dist;
            stamp_a[a2 as usize] = gen;
            touched_a.push(a2);
            let retire = dist + pot_a[a2 as usize];
            if retire < best_retire {
                best_retire = retire;
                best_retire_at = a2;
            }
            relax_edges(
                l,
                weights,
                a2,
                dist,
                &pot_a,
                &pot_b,
                gen,
                &mut dist_b,
                &mut stamp_b,
                &mut finalized_b,
                &mut prev_b,
                &mut touched_b,
                &mut heap,
            );
        }

        let delta = match end_free_right {
            Some((_, d)) => d,
            None => best_retire,
        };

        // Dual updates over finalized vertices.
        for &a in &touched_a {
            if stamp_a[a as usize] == gen && dist_a[a as usize] <= delta {
                pot_a[a as usize] += dist_a[a as usize] - delta;
                if pot_a[a as usize] < 0.0 {
                    pot_a[a as usize] = 0.0; // guard against roundoff
                }
            }
        }
        for &b in &touched_b {
            if stamp_b[b as usize] == gen && finalized_b[b as usize] {
                pot_b[b as usize] += delta - dist_b[b as usize];
            }
        }

        // Augment.
        match end_free_right {
            Some((b_end, _)) => {
                augment(&mut mate_a, &mut mate_b, &prev_b, s, b_end);
            }
            None => {
                let a_star = best_retire_at;
                if a_star != s {
                    // a* gives up its mate; flip the alternating path
                    // from that right vertex back to s.
                    let b_star = mate_a[a_star as usize];
                    debug_assert_ne!(b_star, UNMATCHED);
                    mate_a[a_star as usize] = UNMATCHED;
                    mate_b[b_star as usize] = UNMATCHED;
                    augment(&mut mate_a, &mut mate_b, &prev_b, s, b_star);
                }
                // else: s simply stays free with potential 0.
            }
        }

        // Reset finalized flags for touched right vertices (stamps make
        // dist arrays self-cleaning, but `finalized_b` is a plain bool).
        for &b in &touched_b {
            finalized_b[b as usize] = false;
        }
    }

    let matching = Matching::from_mates(mate_a, mate_b);
    (
        matching,
        DualCertificate {
            pot_left: pot_a,
            pot_right: pot_b,
        },
    )
}

/// Relax all positive-weight edges of left vertex `a` at distance `da`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn relax_edges(
    l: &BipartiteGraph,
    weights: &[f64],
    a: VertexId,
    da: f64,
    pot_a: &[f64],
    pot_b: &[f64],
    gen: u32,
    dist_b: &mut [f64],
    stamp_b: &mut [u32],
    finalized_b: &mut [bool],
    prev_b: &mut [VertexId],
    touched_b: &mut Vec<VertexId>,
    heap: &mut BinaryHeap<HeapItem>,
) {
    for (b, e) in l.left_edges(a) {
        let w = weights[e];
        if w <= 0.0 {
            continue;
        }
        // Reduced cost; clamp tiny negatives from float roundoff.
        let rc = (pot_a[a as usize] + pot_b[b as usize] - w).max(0.0);
        let nd = da + rc;
        let bi = b as usize;
        if stamp_b[bi] != gen {
            stamp_b[bi] = gen;
            finalized_b[bi] = false;
            dist_b[bi] = f64::INFINITY;
            touched_b.push(b);
        }
        if !finalized_b[bi] && nd < dist_b[bi] {
            dist_b[bi] = nd;
            prev_b[bi] = a;
            heap.push(HeapItem { dist: nd, right: b });
        }
    }
}

/// Flip the alternating path that ends at free right vertex `b_end`
/// back to the root `s`, matching every tree edge on it.
fn augment(
    mate_a: &mut [VertexId],
    mate_b: &mut [VertexId],
    prev_b: &[VertexId],
    s: VertexId,
    mut b_end: VertexId,
) {
    loop {
        let a = prev_b[b_end as usize];
        let next_b = mate_a[a as usize];
        mate_a[a as usize] = b_end;
        mate_b[b_end as usize] = a;
        if a == s {
            break;
        }
        debug_assert_ne!(
            next_b, UNMATCHED,
            "interior path vertices must have been matched"
        );
        b_end = next_b;
    }
}

/// Verify the LP-duality optimality certificate: dual feasibility,
/// non-negativity, tightness of matched edges, and zero potential on
/// free vertices. Returns the matching weight on success.
///
/// Tolerance is absolute, scaled by the largest |weight|.
pub fn verify_optimality(
    l: &BipartiteGraph,
    weights: &[f64],
    m: &Matching,
    cert: &DualCertificate,
) -> Result<f64, String> {
    let scale = weights.iter().fold(1.0f64, |acc, w| acc.max(w.abs()));
    let tol = 1e-9 * scale;
    for (a, b, e) in l.edge_iter() {
        let w = weights[e];
        if w <= 0.0 {
            continue;
        }
        let slack = cert.pot_left[a as usize] + cert.pot_right[b as usize] - w;
        if slack < -tol {
            return Err(format!("dual infeasible at edge ({a},{b}): slack {slack}"));
        }
    }
    for (i, &p) in cert.pot_left.iter().enumerate() {
        if p < -tol {
            return Err(format!("negative left potential at {i}: {p}"));
        }
        if m.mate_of_left(i as VertexId).is_none() && p > tol {
            return Err(format!("free left vertex {i} has positive potential {p}"));
        }
    }
    for (i, &p) in cert.pot_right.iter().enumerate() {
        if p < -tol {
            return Err(format!("negative right potential at {i}: {p}"));
        }
        if m.mate_of_right(i as VertexId).is_none() && p > tol {
            return Err(format!("free right vertex {i} has positive potential {p}"));
        }
    }
    let mut total = 0.0;
    for (a, b) in m.pairs() {
        let e = l
            .edge_id(a, b)
            .ok_or_else(|| format!("matched pair ({a},{b}) is not an edge"))?;
        let w = weights[e];
        let gap = cert.pot_left[a as usize] + cert.pot_right[b as usize] - w;
        if gap.abs() > tol {
            return Err(format!("matched edge ({a},{b}) not tight: gap {gap}"));
        }
        total += w;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(l: &BipartiteGraph) -> (Matching, DualCertificate) {
        max_weight_matching_ssp(l, l.weights())
    }

    #[test]
    fn single_edge() {
        let l = BipartiteGraph::from_entries(1, 1, vec![(0, 0, 5.0)]);
        let (m, cert) = solve(&l);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(verify_optimality(&l, l.weights(), &m, &cert).unwrap(), 5.0);
    }

    #[test]
    fn prefers_heavier_disjoint_pairing() {
        // (0,0)=1, (0,1)=2, (1,0)=2: best is (0,1)+(1,0) = 4.
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0)]);
        let (m, cert) = solve(&l);
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        assert_eq!(val, 4.0);
        assert_eq!(m.cardinality(), 2);
    }

    #[test]
    fn skips_negative_edges() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, -3.0), (1, 1, 2.0)]);
        let (m, cert) = solve(&l);
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        assert_eq!(val, 2.0);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_left(0), None);
    }

    #[test]
    fn heavy_single_beats_two_light() {
        // (0,0)=10 vs (0,1)=1 + (1,0)=1: take the 10.
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let (m, cert) = solve(&l);
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        // {(0,0)} = 10 beats {(0,1),(1,0)} = 2; vertex 1 stays free.
        assert_eq!(val, 10.0);
        assert_eq!(m.mate_of_left(1), None);
    }

    #[test]
    fn augmenting_path_is_found() {
        // Greedy would take (0,1)=3 and strand vertex 1;
        // optimal is (0,0)=2 + (1,1)=2 = 4 vs 3.
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0)]);
        let (m, cert) = solve(&l);
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        assert_eq!(val, 4.0);
    }

    #[test]
    fn retire_path_frees_a_vertex() {
        // Vertex 1 only connects to b0 with weight 5; vertex 0 connects
        // to b0 with 4 and nothing else: optimal leaves 0 free.
        let l = BipartiteGraph::from_entries(2, 1, vec![(0, 0, 4.0), (1, 0, 5.0)]);
        let (m, cert) = solve(&l);
        let val = verify_optimality(&l, l.weights(), &m, &cert).unwrap();
        assert_eq!(val, 5.0);
        assert_eq!(m.mate_of_left(0), None);
        assert_eq!(m.mate_of_left(1), Some(0));
    }

    #[test]
    fn empty_graph() {
        let l = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        let (m, cert) = solve(&l);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(verify_optimality(&l, l.weights(), &m, &cert).unwrap(), 0.0);
    }
}
