//! Dense Hungarian algorithm (Kuhn–Munkres, O(n³)) for maximum-weight
//! bipartite matching with a free "stay unmatched" option.
//!
//! A second, independently-implemented exact solver: the sparse SSP
//! solver and this dense one cross-validate each other in the tests
//! (different algorithm family, different failure modes). Only
//! sensible for small, dense-ish instances — the aligners use SSP.
//!
//! Implementation: the classical potential-based row-by-row algorithm
//! on an `na × (nb + na)` rectangle, where column `nb + a` is row `a`'s
//! private "stay unmatched" option of weight 0; null assignments are
//! dropped from the returned matching.

use crate::matching::Matching;
use netalign_graph::{BipartiteGraph, VertexId};

/// Maximum-weight matching by the dense Hungarian algorithm.
///
/// # Panics
/// Panics if `na * (nb + na)` would exceed ~10⁸ entries (use the SSP
/// solver for anything large) or on a weight-length mismatch.
pub fn hungarian_matching(l: &BipartiteGraph, weights: &[f64]) -> Matching {
    assert_eq!(weights.len(), l.num_edges());
    let na = l.num_left();
    let nb = l.num_right();
    let ncols = nb + na; // real columns + one null column per row
    assert!(
        na.saturating_mul(ncols) <= 100_000_000,
        "dense Hungarian limited to ~1e8 entries ({na} x {ncols})"
    );
    if na == 0 {
        return Matching::empty(na, nb);
    }

    // Cost matrix (minimization): cost = -weight, null options cost 0.
    // Stored row-major, only negative entries matter; absent edges get
    // +BIG so they are never taken.
    const BIG: f64 = 1e18;
    let mut cost = vec![BIG; na * ncols];
    for (a, b, e) in l.edge_iter() {
        let w = weights[e];
        cost[a as usize * ncols + b as usize] = if w > 0.0 { -w } else { BIG };
    }
    for a in 0..na {
        cost[a * ncols + nb + a] = 0.0; // the row's null option
    }

    let mut buffers = HungarianBuffers::default();
    let p = solve_dense_assignment(&cost, na, ncols, &mut buffers);

    let mut m = Matching::empty(na, nb);
    for j in 1..=nb {
        let i = p[j];
        if i != 0 {
            let a = (i - 1) as VertexId;
            let b = (j - 1) as VertexId;
            // Only keep real positive-weight assignments.
            if let Some(e) = l.edge_id(a, b) {
                if weights[e] > 0.0 {
                    m.add_pair(a, b);
                }
            }
        }
    }
    m
}

/// Reusable scratch space for [`solve_dense_assignment`]. Callers that
/// solve many small assignments (MR's per-row matchings) keep one per
/// worker thread so the hot loop allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct HungarianBuffers {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

/// Classical O(n³) min-cost assignment with potentials on a dense
/// row-major `na × ncols` cost matrix (`na ≤ ncols` required; give each
/// row a private 0-cost slack column to model "stay unmatched").
///
/// Returns `p` (1-indexed): `p[j]` is the row assigned to column `j`,
/// or 0 when the column is free. The slice borrows the scratch in
/// `bufs` — no allocation per solve.
pub fn solve_dense_assignment<'a>(
    cost: &[f64],
    na: usize,
    ncols: usize,
    bufs: &'a mut HungarianBuffers,
) -> &'a [usize] {
    assert!(na <= ncols, "need na <= ncols (pad with slack columns)");
    assert_eq!(cost.len(), na * ncols);
    bufs.u.clear();
    bufs.u.resize(na + 1, 0.0);
    bufs.v.clear();
    bufs.v.resize(ncols + 1, 0.0);
    bufs.p.clear();
    bufs.p.resize(ncols + 1, 0);
    bufs.way.clear();
    bufs.way.resize(ncols + 1, 0);
    bufs.minv.clear();
    bufs.minv.resize(ncols + 1, f64::INFINITY);
    bufs.used.clear();
    bufs.used.resize(ncols + 1, false);
    let HungarianBuffers {
        u,
        v,
        p,
        way,
        minv,
        used,
    } = bufs;
    for i in 1..=na {
        p[0] = i;
        let mut j0 = 0usize;
        minv.fill(f64::INFINITY);
        used.fill(false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=ncols {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * ncols + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=ncols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::brute_force_matching;
    use crate::exact::ssp::max_weight_matching_ssp;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_brute_force_on_smalls() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        for _ in 0..40 {
            let na = rng.gen_range(1..7);
            let nb = rng.gen_range(1..7);
            let mut entries = Vec::new();
            for a in 0..na as u32 {
                for b in 0..nb as u32 {
                    if rng.gen_bool(0.6) {
                        entries.push((a, b, rng.gen_range(-1.0..5.0)));
                    }
                }
            }
            let l = BipartiteGraph::from_entries(na, nb, entries);
            let m = hungarian_matching(&l, l.weights());
            assert!(m.is_valid(&l));
            let (opt, _) = brute_force_matching(&l, l.weights());
            assert!(
                (m.weight_in(&l) - opt).abs() < 1e-9,
                "hungarian {} vs brute {}",
                m.weight_in(&l),
                opt
            );
        }
    }

    #[test]
    fn cross_validates_the_ssp_solver() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        for trial in 0..15 {
            let na = 5 + trial % 10;
            let nb = 5 + (trial * 3) % 10;
            let mut entries = Vec::new();
            for a in 0..na as u32 {
                for b in 0..nb as u32 {
                    if rng.gen_bool(0.4) {
                        entries.push((a, b, rng.gen_range(0.01..3.0)));
                    }
                }
            }
            let l = BipartiteGraph::from_entries(na, nb, entries);
            let hung = hungarian_matching(&l, l.weights());
            let (ssp, _) = max_weight_matching_ssp(&l, l.weights());
            assert!(
                (hung.weight_in(&l) - ssp.weight_in(&l)).abs() < 1e-9,
                "trial {trial}: hungarian {} vs ssp {}",
                hung.weight_in(&l),
                ssp.weight_in(&l)
            );
        }
    }

    #[test]
    fn prefers_staying_free_over_negative_edges() {
        let l = BipartiteGraph::from_entries(2, 2, vec![(0, 0, -5.0), (1, 1, 3.0)]);
        let m = hungarian_matching(&l, l.weights());
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.mate_of_left(1), Some(1));
    }

    #[test]
    fn empty_inputs() {
        let l = BipartiteGraph::from_entries(0, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(hungarian_matching(&l, l.weights()).cardinality(), 0);
        let l2 = BipartiteGraph::from_entries(3, 3, Vec::<(u32, u32, f64)>::new());
        assert_eq!(hungarian_matching(&l2, l2.weights()).cardinality(), 0);
    }
}
