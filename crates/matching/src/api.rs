//! A single entry point over all matching algorithms, used by the
//! aligners to swap exact and approximate rounding (the paper's central
//! experiment).

use crate::approx::{
    default_run_len, external_suitor_traced, greedy_matching, parallel_local_dominant_traced,
    parallel_suitor_traced, path_growing_matching, serial_local_dominant, serial_suitor,
    InitStrategy, ParallelLdOptions,
};
use crate::distributed::distributed_local_dominant;
use crate::exact::{auction_matching, max_weight_matching_ssp, AuctionOptions};
use crate::Matching;
use netalign_graph::BipartiteGraph;
use netalign_trace::MatcherCounters;

/// Which maximum-weight matching algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MatcherKind {
    /// Exact: successive shortest augmenting paths with potentials.
    #[default]
    Exact,
    /// Global greedy ½-approximation (serial).
    Greedy,
    /// Serial pointer-based locally-dominant ½-approximation.
    LocalDominant,
    /// The paper's parallel queue-based locally-dominant
    /// ½-approximation, spawning from both vertex sets.
    ParallelLocalDominant,
    /// Parallel locally-dominant with the bipartite one-side
    /// initialization (§V, last paragraph).
    ParallelLocalDominantOneSide,
    /// Serial Suitor algorithm (Manne–Halappanavar) — same matching as
    /// the locally-dominant family, proposal-driven construction.
    Suitor,
    /// Parallel Suitor with per-vertex proposal locks.
    ParallelSuitor,
    /// External-memory Suitor: proposal chains scheduled run-by-run so
    /// the scan working set stays chunk-resident (Birn et al.); same
    /// matching as [`MatcherKind::ParallelSuitor`] at every run length.
    ExternalSuitor,
    /// Path-growing ½-approximation (Drake–Hougardy).
    PathGrowing,
    /// Simulated distributed-memory locally-dominant matching over the
    /// given number of ranks (paper §IX future work).
    Distributed {
        /// Number of simulated ranks (worker threads).
        ranks: usize,
    },
    /// Bertsekas auction (near-exact baseline).
    Auction {
        /// ε as a fraction of the max weight; the gap to optimal is at
        /// most `cardinality · eps_rel · max_weight`.
        eps_rel: f64,
    },
}

impl MatcherKind {
    /// Short stable name, used in experiment output tables.
    pub fn name(&self) -> &'static str {
        match self {
            MatcherKind::Exact => "exact",
            MatcherKind::Greedy => "greedy",
            MatcherKind::LocalDominant => "ld-serial",
            MatcherKind::ParallelLocalDominant => "ld-parallel",
            MatcherKind::ParallelLocalDominantOneSide => "ld-parallel-1side",
            MatcherKind::Suitor => "suitor",
            MatcherKind::ParallelSuitor => "suitor-parallel",
            MatcherKind::ExternalSuitor => "suitor-external",
            MatcherKind::PathGrowing => "path-growing",
            MatcherKind::Distributed { .. } => "ld-distributed",
            MatcherKind::Auction { .. } => "auction",
        }
    }

    /// True for the ½-approximate algorithms.
    pub fn is_approximate(&self) -> bool {
        matches!(
            self,
            MatcherKind::Greedy
                | MatcherKind::LocalDominant
                | MatcherKind::ParallelLocalDominant
                | MatcherKind::ParallelLocalDominantOneSide
                | MatcherKind::Suitor
                | MatcherKind::ParallelSuitor
                | MatcherKind::ExternalSuitor
                | MatcherKind::PathGrowing
                | MatcherKind::Distributed { .. }
        )
    }
}

/// Compute a maximum-weight matching of `l` under `weights` with the
/// chosen algorithm.
///
/// ```
/// use netalign_graph::BipartiteGraph;
/// use netalign_matching::{max_weight_matching, MatcherKind};
///
/// let l = BipartiteGraph::from_entries(2, 2, vec![
///     (0, 0, 2.0), (0, 1, 3.0), (1, 1, 2.0),
/// ]);
/// let exact = max_weight_matching(&l, l.weights(), MatcherKind::Exact);
/// assert_eq!(exact.weight_in(&l), 4.0); // (0,0) + (1,1)
///
/// // The ½-approximate matcher may settle for the heavy edge:
/// let approx = max_weight_matching(&l, l.weights(), MatcherKind::ParallelLocalDominant);
/// assert!(approx.weight_in(&l) * 2.0 >= exact.weight_in(&l));
/// ```
///
/// # Panics
/// Panics if `weights.len() != l.num_edges()`.
pub fn max_weight_matching(l: &BipartiteGraph, weights: &[f64], kind: MatcherKind) -> Matching {
    max_weight_matching_traced(l, weights, kind, MatcherCounters::disabled())
}

/// [`max_weight_matching`] with event counting for the parallel
/// locally-dominant family. Other matchers run unchanged and leave
/// `counters` untouched (their snapshots stay zero).
pub fn max_weight_matching_traced(
    l: &BipartiteGraph,
    weights: &[f64],
    kind: MatcherKind,
    counters: &MatcherCounters,
) -> Matching {
    match kind {
        MatcherKind::Exact => max_weight_matching_ssp(l, weights).0,
        MatcherKind::Greedy => greedy_matching(l, weights),
        MatcherKind::LocalDominant => serial_local_dominant(l, weights),
        MatcherKind::ParallelLocalDominant => parallel_local_dominant_traced(
            l,
            weights,
            ParallelLdOptions {
                init: InitStrategy::BothSides,
            },
            counters,
        ),
        MatcherKind::ParallelLocalDominantOneSide => parallel_local_dominant_traced(
            l,
            weights,
            ParallelLdOptions {
                init: InitStrategy::LeftSide,
            },
            counters,
        ),
        MatcherKind::Suitor => serial_suitor(l, weights),
        MatcherKind::ParallelSuitor => parallel_suitor_traced(l, weights, counters),
        MatcherKind::ExternalSuitor => {
            external_suitor_traced(l, weights, default_run_len(l), counters)
        }
        MatcherKind::PathGrowing => path_growing_matching(l, weights),
        MatcherKind::Distributed { ranks } => distributed_local_dominant(l, weights, ranks),
        MatcherKind::Auction { eps_rel } => {
            auction_matching(l, weights, AuctionOptions { eps_rel })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l() -> BipartiteGraph {
        BipartiteGraph::from_entries(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, 3.0),
                (1, 1, 2.0),
                (2, 2, 1.0),
                (1, 2, 0.5),
            ],
        )
    }

    #[test]
    fn every_kind_returns_valid_matching() {
        let l = l();
        for kind in [
            MatcherKind::Exact,
            MatcherKind::Greedy,
            MatcherKind::LocalDominant,
            MatcherKind::ParallelLocalDominant,
            MatcherKind::ParallelLocalDominantOneSide,
            MatcherKind::Suitor,
            MatcherKind::ParallelSuitor,
            MatcherKind::ExternalSuitor,
            MatcherKind::PathGrowing,
            MatcherKind::Distributed { ranks: 3 },
            MatcherKind::Auction { eps_rel: 1e-6 },
        ] {
            let m = max_weight_matching(&l, l.weights(), kind);
            assert!(
                m.is_valid(&l),
                "{} produced an invalid matching",
                kind.name()
            );
            assert!(m.weight_in(&l) > 0.0);
        }
    }

    #[test]
    fn exact_dominates_approximations() {
        let l = l();
        let opt = max_weight_matching(&l, l.weights(), MatcherKind::Exact).weight_in(&l);
        for kind in [
            MatcherKind::Greedy,
            MatcherKind::LocalDominant,
            MatcherKind::ParallelLocalDominant,
        ] {
            let w = max_weight_matching(&l, l.weights(), kind).weight_in(&l);
            assert!(w <= opt + 1e-12);
            assert!(w * 2.0 >= opt - 1e-12, "{} below half-approx", kind.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MatcherKind::Exact.name(), "exact");
        assert_eq!(MatcherKind::ParallelLocalDominant.name(), "ld-parallel");
        assert!(MatcherKind::ParallelLocalDominant.is_approximate());
        assert!(!MatcherKind::Exact.is_approximate());
        assert!(!MatcherKind::Auction { eps_rel: 1e-6 }.is_approximate());
    }
}
