//! Cross-implementation equivalence under pool sweeps.
//!
//! The locally-dominant matching is unique under the crate's total edge
//! order, so five independent implementations — the sequential greedy,
//! serial LD, the paper's queue-based parallel LD, serial Suitor, and
//! the lock-free parallel Suitor — must return bit-identical results at
//! every thread count. Property tests drive random graphs (zero and
//! negative weights included) through all five, plus the preallocated
//! engine in cold and warm mode, at pools {1, 2, 4, 8}.

use netalign_graph::BipartiteGraph;
use netalign_matching::approx::{
    parallel_local_dominant, parallel_suitor, serial_local_dominant, serial_suitor,
    ParallelLdOptions,
};
use netalign_matching::{
    external_suitor_traced, greedy_matching, GreedyScratch, MatcherCounters, MatcherEngine,
    Matching, RoundingMatcher,
};
use proptest::prelude::*;

const POOLS: [usize; 4] = [1, 2, 4, 8];

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

/// Random bipartite instance with weights spanning negative, zero and
/// tied positive values — the edge cases of the "only positive edges
/// match" rule.
fn arb_instance() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..14, 2usize..14).prop_flat_map(|(na, nb)| {
        let max_edges = na * nb;
        proptest::collection::vec(
            // (endpoint, endpoint, weight-class selector, raw weight):
            // the selector mixes positives with zeros, negatives and
            // small-integer ties.
            (0..na as u32, 0..nb as u32, 0u32..6, 0.1f64..5.0),
            0..max_edges.min(60),
        )
        .prop_map(move |raw| {
            let mut entries: Vec<(u32, u32, f64)> = raw
                .into_iter()
                .map(|(a, b, class, w)| {
                    let w = match class {
                        0 => 0.0,
                        1 => -w,
                        2 => w.ceil(), // ties on 1.0..=5.0
                        _ => w,
                    };
                    (a, b, w)
                })
                .collect();
            entries.sort_by_key(|&(a, b, _)| (a, b));
            entries.dedup_by_key(|&mut (a, b, _)| (a, b));
            BipartiteGraph::from_entries(na, nb, entries)
        })
    })
}

/// A short sequence of weight vectors derived from the graph's own by
/// sparse perturbations — what a converging aligner feeds the matcher.
fn arb_instance_and_sequence() -> impl Strategy<Value = (BipartiteGraph, Vec<Vec<f64>>)> {
    arb_instance().prop_flat_map(|l| {
        let m = l.num_edges();
        let base: Vec<f64> = l.weights().to_vec();
        proptest::collection::vec(
            proptest::collection::vec((0..m.max(1), -2.0f64..2.0), 0..(m / 2 + 1)),
            1..5,
        )
        .prop_map(move |steps| {
            let mut w = base.clone();
            let mut seq = vec![w.clone()];
            for step in steps {
                for (e, delta) in step {
                    if e < w.len() {
                        w[e] += delta;
                    }
                }
                seq.push(w.clone());
            }
            (l.clone(), seq)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sequential greedy ≡ serial Suitor ≡ lock-free parallel Suitor ≡
    /// serial LD ≡ parallel LD, at every pool size. The greedy leg is
    /// what licenses the delta replay's cheap stage rematcher: a sort
    /// plus one linear pass reproduces the pool-invariant matching.
    #[test]
    fn five_way_equivalence_across_pools(l in arb_instance()) {
        let reference = serial_local_dominant(&l, l.weights());
        prop_assert_eq!(&greedy_matching(&l, l.weights()), &reference);
        let mut scratch = GreedyScratch::new(&l);
        prop_assert_eq!(scratch.run(&l, l.weights()), &reference);
        prop_assert_eq!(&serial_suitor(&l, l.weights()), &reference);
        for threads in POOLS {
            let (pld, psu) = pool(threads).install(|| {
                (
                    parallel_local_dominant(&l, l.weights(), ParallelLdOptions::default()),
                    parallel_suitor(&l, l.weights()),
                )
            });
            prop_assert_eq!(&pld, &reference, "parallel LD at {} threads", threads);
            prop_assert_eq!(&psu, &reference, "parallel Suitor at {} threads", threads);
        }
    }

    /// The external (run-partitioned) Suitor reaches the same unique
    /// fixed point as the in-core matchers at every run length — from
    /// one vertex per run to one run for the whole graph — and at
    /// every pool size. This is the contract that lets the out-of-core
    /// rounding path swap it in without perturbing a single bit.
    #[test]
    fn external_suitor_equals_in_core_across_runs_and_pools(
        l in arb_instance(),
        run_len_exp in 0u32..8,
    ) {
        let reference = serial_suitor(&l, l.weights());
        let run_len = 1usize << run_len_exp;
        for threads in POOLS {
            let got = pool(threads).install(|| {
                external_suitor_traced(
                    &l,
                    l.weights(),
                    run_len,
                    MatcherCounters::disabled(),
                )
            });
            prop_assert_eq!(
                &got, &reference,
                "external Suitor, run_len {} at {} threads", run_len, threads
            );
        }
    }

    /// Warm-started engines are bit-identical to cold ones — and to the
    /// serial oracle — at every pool size, for both matcher kinds, over
    /// weight sequences with sparse changes.
    #[test]
    fn warm_engine_equals_cold_across_pools((l, seq) in arb_instance_and_sequence()) {
        // Serial oracle per step, computed once.
        let oracle: Vec<Matching> =
            seq.iter().map(|w| serial_local_dominant(&l, w)).collect();
        for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
            for threads in POOLS {
                pool(threads).install(|| {
                    let mut warm = MatcherEngine::new(&l, kind, true);
                    let mut cold = MatcherEngine::new(&l, kind, false);
                    let c = MatcherCounters::disabled();
                    for (step, w) in seq.iter().enumerate() {
                        let got = warm.run(&l, w, c).clone();
                        prop_assert_eq!(
                            &got, &oracle[step],
                            "warm {:?} at {} threads, step {}", kind, threads, step
                        );
                        let cold_got = cold.run(&l, w, c).clone();
                        prop_assert_eq!(
                            &cold_got, &oracle[step],
                            "cold {:?} at {} threads, step {}", kind, threads, step
                        );
                    }
                });
            }
        }
    }
}

/// Deterministic counters (`warm_hits` / `reseeded_vertices` and the
/// queue-based LD events) are identical at every pool size; only the
/// Suitor race counters may vary with the schedule.
#[test]
fn warm_counters_are_pool_independent() {
    let l = BipartiteGraph::from_entries(
        4,
        4,
        vec![
            (0, 0, 5.0),
            (0, 1, 1.0),
            (1, 1, 4.0),
            (1, 2, 2.0),
            (2, 2, 3.0),
            (2, 3, 1.5),
            (3, 3, 2.5),
        ],
    );
    let mut w2 = l.weights().to_vec();
    w2[5] = 1.75; // perturb (2,3): light edge, deep in the order
    let mut base: Option<(u64, u64)> = None;
    for threads in POOLS {
        pool(threads).install(|| {
            let mut eng = MatcherEngine::new(&l, RoundingMatcher::Ld, true);
            let c0 = MatcherCounters::new(true);
            let _ = eng.run(&l, l.weights(), &c0);
            let c1 = MatcherCounters::new(true);
            let _ = eng.run(&l, &w2, &c1);
            let s = c1.snapshot();
            assert!(s.warm_hits > 0);
            match base {
                None => base = Some((s.warm_hits, s.reseeded_vertices)),
                Some(b) => assert_eq!((s.warm_hits, s.reseeded_vertices), b),
            }
        });
    }
}
