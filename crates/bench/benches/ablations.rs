//! Ablations for the design choices DESIGN.md calls out:
//!
//! * dynamic-scheduling chunk size (the paper settled on 1000),
//! * BP rounding batch size (`BP(batch=r)`),
//! * both-sides vs one-side initialization of the parallel
//!   locally-dominant matcher (the paper found one-side "noticeably"
//!   faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netalign_core::bp::othermax::othermaxrow_into;
use netalign_core::prelude::*;
use netalign_data::standins::StandIn;
use netalign_matching::approx::{parallel_local_dominant, InitStrategy, ParallelLdOptions};
use netalign_matching::MatcherKind;
use std::hint::black_box;

fn bench_chunk_size(c: &mut Criterion) {
    let inst = StandIn::LcshWiki.generate(0.01, 7);
    let l = &inst.problem.l;
    let m = l.num_edges();
    let g: Vec<f64> = (0..m).map(|i| ((i * 13) % 97) as f64 * 0.02).collect();
    let mut group = c.benchmark_group("ablation-chunk");
    group.sample_size(20);
    for chunk in [1usize, 10, 100, 1000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            let mut out = vec![0.0; m];
            let mut stats = vec![(0.0, 0.0, 0usize); l.num_left()];
            b.iter(|| {
                othermaxrow_into(l, &g, &mut out, &mut stats, chunk);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let inst = StandIn::DmelaScere.generate(0.15, 7);
    let mut group = c.benchmark_group("ablation-batch");
    group.sample_size(10);
    for batch in [1usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let cfg = AlignConfig {
                iterations: 5,
                batch,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            };
            b.iter(|| black_box(belief_propagation(&inst.problem, &cfg)))
        });
    }
    group.finish();
}

fn bench_init_strategy(c: &mut Criterion) {
    let inst = StandIn::LcshWiki.generate(0.01, 7);
    let l = &inst.problem.l;
    let mut group = c.benchmark_group("ablation-ld-init");
    group.sample_size(20);
    for (name, init) in [
        ("both-sides", InitStrategy::BothSides),
        ("one-side", InitStrategy::LeftSide),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &init, |b, &init| {
            b.iter(|| {
                black_box(parallel_local_dominant(
                    l,
                    l.weights(),
                    ParallelLdOptions { init },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chunk_size,
    bench_batch_size,
    bench_init_strategy
);
criterion_main!(benches);
