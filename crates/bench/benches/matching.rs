//! Matcher comparison: exact SSP vs the ½-approximations on a
//! realistic rounding workload (the dmela-scere stand-in's `w`).
//!
//! Supports the Figure 4/6 interpretation: the matching step is the
//! dominant per-iteration cost, and the locally-dominant approximation
//! is the `O(|E_L|)` replacement for the `O(|E_L|·N log N)` exact
//! matcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netalign_data::standins::StandIn;
use netalign_data::synthetic::{power_law_alignment, PowerLawParams};
use netalign_matching::{
    max_weight_matching, MatcherCounters, MatcherEngine, MatcherKind, RoundingMatcher,
};
use std::hint::black_box;

fn bench_matchers(c: &mut Criterion) {
    let inst = StandIn::DmelaScere.generate(0.25, 7);
    let l = &inst.problem.l;
    let w = l.weights();
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for kind in [
        MatcherKind::Exact,
        MatcherKind::Greedy,
        MatcherKind::LocalDominant,
        MatcherKind::ParallelLocalDominant,
        MatcherKind::ParallelLocalDominantOneSide,
        MatcherKind::Suitor,
        MatcherKind::ParallelSuitor,
        MatcherKind::PathGrowing,
        MatcherKind::Distributed { ranks: 4 },
        MatcherKind::Auction { eps_rel: 1e-3 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| black_box(max_weight_matching(l, w, kind))),
        );
    }
    group.finish();
}

/// The preallocated matcher engine on a power-law instance: lock-free
/// Suitor vs queue-based parallel LD, cold vs warm-started, over a
/// weight sequence with the sparse late-iteration changes a converging
/// aligner produces. The legacy one-shot `ParallelLocalDominant`
/// (fresh allocations every call) is the baseline.
fn bench_engine_warm_vs_cold(c: &mut Criterion) {
    let inst = power_law_alignment(&PowerLawParams {
        n: 4000,
        expected_degree: 8.0,
        seed: 7,
        ..Default::default()
    });
    let l = inst.problem.l.clone();
    let m = l.num_edges();
    // A converged aligner's rounding inputs: mostly-frozen weights with
    // a few entries still drifting each iteration.
    let steps = 10usize;
    let mut seq: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut w = l.weights().to_vec();
    for s in 0..steps {
        for j in 0..8 {
            let e = (s * 7919 + j * 104729) % m;
            w[e] += 0.001 * (1.0 + (s + j) as f64 * 0.1);
        }
        seq.push(w.clone());
    }

    let mut group = c.benchmark_group("matcher-engine");
    group.sample_size(10);
    group.bench_function("legacy-ld-parallel", |b| {
        b.iter(|| {
            for w in &seq {
                black_box(max_weight_matching(
                    &l,
                    w,
                    MatcherKind::ParallelLocalDominant,
                ));
            }
        })
    });
    for kind in [RoundingMatcher::Ld, RoundingMatcher::Suitor] {
        for warm in [false, true] {
            let name = format!(
                "{}-{}",
                match kind {
                    RoundingMatcher::Ld => "engine-ld",
                    RoundingMatcher::Suitor => "engine-suitor",
                },
                if warm { "warm" } else { "cold" }
            );
            group.bench_function(name, |b| {
                let mut eng = MatcherEngine::new(&l, kind, warm);
                let counters = MatcherCounters::disabled();
                b.iter(|| {
                    for w in &seq {
                        black_box(eng.run(&l, w, counters));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_matching_scaling_with_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching-size");
    group.sample_size(10);
    for scale in [0.05, 0.1, 0.2] {
        let inst = StandIn::DmelaScere.generate(scale, 7);
        let l = inst.problem.l.clone();
        let edges = l.num_edges();
        group.bench_with_input(BenchmarkId::new("ld-parallel", edges), &l, |b, l| {
            b.iter(|| {
                black_box(max_weight_matching(
                    l,
                    l.weights(),
                    MatcherKind::ParallelLocalDominant,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("exact", edges), &l, |b, l| {
            b.iter(|| black_box(max_weight_matching(l, l.weights(), MatcherKind::Exact)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matchers,
    bench_engine_warm_vs_cold,
    bench_matching_scaling_with_size
);
criterion_main!(benches);
