//! Matcher comparison: exact SSP vs the ½-approximations on a
//! realistic rounding workload (the dmela-scere stand-in's `w`).
//!
//! Supports the Figure 4/6 interpretation: the matching step is the
//! dominant per-iteration cost, and the locally-dominant approximation
//! is the `O(|E_L|)` replacement for the `O(|E_L|·N log N)` exact
//! matcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netalign_data::standins::StandIn;
use netalign_matching::{max_weight_matching, MatcherKind};
use std::hint::black_box;

fn bench_matchers(c: &mut Criterion) {
    let inst = StandIn::DmelaScere.generate(0.25, 7);
    let l = &inst.problem.l;
    let w = l.weights();
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for kind in [
        MatcherKind::Exact,
        MatcherKind::Greedy,
        MatcherKind::LocalDominant,
        MatcherKind::ParallelLocalDominant,
        MatcherKind::ParallelLocalDominantOneSide,
        MatcherKind::Suitor,
        MatcherKind::ParallelSuitor,
        MatcherKind::PathGrowing,
        MatcherKind::Distributed { ranks: 4 },
        MatcherKind::Auction { eps_rel: 1e-3 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| black_box(max_weight_matching(l, w, kind))),
        );
    }
    group.finish();
}

fn bench_matching_scaling_with_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching-size");
    group.sample_size(10);
    for scale in [0.05, 0.1, 0.2] {
        let inst = StandIn::DmelaScere.generate(scale, 7);
        let l = inst.problem.l.clone();
        let edges = l.num_edges();
        group.bench_with_input(BenchmarkId::new("ld-parallel", edges), &l, |b, l| {
            b.iter(|| {
                black_box(max_weight_matching(
                    l,
                    l.weights(),
                    MatcherKind::ParallelLocalDominant,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("exact", edges), &l, |b, l| {
            b.iter(|| black_box(max_weight_matching(l, l.weights(), MatcherKind::Exact)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers, bench_matching_scaling_with_size);
criterion_main!(benches);
