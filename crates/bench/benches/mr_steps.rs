//! Microbenchmarks of MR's per-iteration pieces (the steps of
//! Figure 6): the per-row exact matchings and the full rounding
//! matching, which together take ~80% of MR's iteration at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use netalign_core::mr::rowmatch::solve_row_matchings;
use netalign_data::standins::StandIn;
use netalign_matching::{max_weight_matching, MatcherKind};
use std::hint::black_box;

fn bench_mr_kernels(c: &mut Criterion) {
    let inst = StandIn::LcshWiki.generate(0.01, 7);
    let p = &inst.problem;
    let nnz = p.s.nnz();
    // Row weights as MR sees them: β/2 + U − Uᵀ with small multipliers.
    let row_w: Vec<f64> = (0..nnz)
        .map(|i| 1.0 + ((i % 11) as f64 - 5.0) * 0.05)
        .collect();

    let mut group = c.benchmark_group("mr-steps");
    group.sample_size(10);

    group.bench_function("row-match (all rows)", |b| {
        b.iter(|| black_box(solve_row_matchings(p, &row_w)))
    });

    let (d, _) = solve_row_matchings(p, &row_w);
    let wbar: Vec<f64> =
        p.l.weights()
            .iter()
            .zip(&d)
            .map(|(&w, &di)| w + di)
            .collect();

    group.bench_function("match (exact on w̄)", |b| {
        b.iter(|| black_box(max_weight_matching(&p.l, &wbar, MatcherKind::Exact)))
    });

    group.bench_function("match (approx on w̄)", |b| {
        b.iter(|| {
            black_box(max_weight_matching(
                &p.l,
                &wbar,
                MatcherKind::ParallelLocalDominant,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mr_kernels);
criterion_main!(benches);
