//! Microbenchmarks of MR's per-iteration pieces (the steps of
//! Figure 6) swept over rayon pool sizes: the per-row exact matchings,
//! the full rounding matching, and full `matching_relaxation`
//! iterations (the end-to-end per-iteration wall-clock that
//! BENCH_2.json tracks across runtime changes).
//!
//! Environment knobs (for CI's bench-smoke job):
//! * `NETALIGN_BENCH_SCALE` — stand-in scale (default 0.01);
//! * `NETALIGN_BENCH_POOLS` — comma-separated pool sizes (default 1,4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netalign_bench::{bench_pools, bench_scale};
use netalign_core::mr::rowmatch::solve_row_matchings;
use netalign_core::prelude::*;
use netalign_data::standins::StandIn;
use netalign_matching::{max_weight_matching, MatcherKind};
use std::hint::black_box;

fn bench_mr_kernels(c: &mut Criterion) {
    let scale = bench_scale();
    let inst = StandIn::LcshWiki.generate(scale, 7);
    let p = &inst.problem;
    let nnz = p.s.nnz();
    // Row weights as MR sees them: β/2 + U − Uᵀ with small multipliers.
    let row_w: Vec<f64> = (0..nnz)
        .map(|i| 1.0 + ((i % 11) as f64 - 5.0) * 0.05)
        .collect();

    let mut group = c.benchmark_group("mr-steps");
    group.sample_size(10);

    let (d, _) = solve_row_matchings(p, &row_w);
    let wbar: Vec<f64> =
        p.l.weights()
            .iter()
            .zip(&d)
            .map(|(&w, &di)| w + di)
            .collect();

    for &threads in &bench_pools() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");

        group.bench_function(BenchmarkId::new("row-match (all rows)", threads), |b| {
            pool.install(|| b.iter(|| black_box(solve_row_matchings(p, &row_w))))
        });

        group.bench_function(BenchmarkId::new("match (exact on w̄)", threads), |b| {
            pool.install(|| {
                b.iter(|| black_box(max_weight_matching(&p.l, &wbar, MatcherKind::Exact)))
            })
        });

        group.bench_function(BenchmarkId::new("match (approx on w̄)", threads), |b| {
            pool.install(|| {
                b.iter(|| {
                    black_box(max_weight_matching(
                        &p.l,
                        &wbar,
                        MatcherKind::ParallelLocalDominant,
                    ))
                })
            })
        });

        // End-to-end: 10 MR iterations with the approximate matcher.
        group.bench_function(BenchmarkId::new("mr-10-iters (approx)", threads), |b| {
            let cfg = AlignConfig {
                iterations: 10,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            };
            pool.install(|| b.iter(|| black_box(matching_relaxation(p, &cfg))))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_mr_kernels);
criterion_main!(benches);
