//! Microbenchmarks of BP's per-iteration kernels (the steps of
//! Figure 7): othermax sweeps, the transpose gather + clamp behind
//! `compute-F`, row sums (`compute-d`), and the damping triad.

use criterion::{criterion_group, criterion_main, Criterion};
use netalign_core::bp::othermax::{column_positions, othermaxcol_into, othermaxrow_into};
use netalign_data::standins::StandIn;
use rayon::prelude::*;
use std::hint::black_box;

fn bench_bp_kernels(c: &mut Criterion) {
    let inst = StandIn::LcshWiki.generate(0.01, 7);
    let p = &inst.problem;
    let m = p.l.num_edges();
    let nnz = p.s.nnz();
    let g: Vec<f64> = (0..m).map(|i| ((i * 31) % 101) as f64 * 0.01).collect();
    let col_pos = column_positions(&p.l);
    let sk: Vec<f64> = (0..nnz)
        .map(|i| ((i * 17) % 47) as f64 * 0.1 - 2.0)
        .collect();

    let mut group = c.benchmark_group("bp-steps");
    group.sample_size(20);

    group.bench_function("othermaxrow", |b| {
        let mut out = vec![0.0; m];
        b.iter(|| {
            othermaxrow_into(&p.l, &g, &mut out, 1000);
            black_box(&out);
        })
    });

    group.bench_function("othermaxcol", |b| {
        let mut out = vec![0.0; m];
        b.iter(|| {
            othermaxcol_into(&p.l, &g, &col_pos, &mut out, 1000);
            black_box(&out);
        })
    });

    group.bench_function("compute-f (transpose gather + clamp)", |b| {
        let mut skt = vec![0.0; nnz];
        let mut fv = vec![0.0; nnz];
        b.iter(|| {
            p.s.transpose_vals_into(&sk, &mut skt);
            fv.par_iter_mut()
                .with_min_len(1000)
                .zip(skt.par_iter().with_min_len(1000))
                .for_each(|(f, &st)| *f = (2.0 + st).clamp(0.0, 2.0));
            black_box(&fv);
        })
    });

    group.bench_function("compute-d (row sums)", |b| {
        let rowptr = p.s.rowptr();
        let w = p.l.weights();
        let fv: Vec<f64> = (0..nnz).map(|i| (i % 7) as f64).collect();
        let mut d = vec![0.0; m];
        b.iter(|| {
            d.par_iter_mut()
                .enumerate()
                .with_min_len(1000)
                .for_each(|(e, de)| {
                    let mut acc = 0.0;
                    for idx in rowptr[e]..rowptr[e + 1] {
                        acc += fv[idx];
                    }
                    *de = w[e] + acc;
                });
            black_box(&d);
        })
    });

    group.bench_function("damping (3 vectors)", |b| {
        let mut y = g.clone();
        let mut y_prev = g.clone();
        let mut z = g.clone();
        let mut z_prev = g.clone();
        let mut s1 = sk.clone();
        let mut s_prev = sk.clone();
        b.iter(|| {
            for (cur, prev) in [(&mut y, &mut y_prev), (&mut z, &mut z_prev)] {
                cur.par_iter_mut()
                    .with_min_len(1000)
                    .zip(prev.par_iter_mut().with_min_len(1000))
                    .for_each(|(c, p)| {
                        *c = 0.9 * *c + 0.1 * *p;
                        *p = *c;
                    });
            }
            s1.par_iter_mut()
                .with_min_len(1000)
                .zip(s_prev.par_iter_mut().with_min_len(1000))
                .for_each(|(c, p)| {
                    *c = 0.9 * *c + 0.1 * *p;
                    *p = *c;
                });
            black_box((&y, &z, &s1));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_bp_kernels);
criterion_main!(benches);
