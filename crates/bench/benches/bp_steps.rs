//! Microbenchmarks of BP's per-iteration kernels (the steps of
//! Figure 7) swept over rayon pool sizes: othermax sweeps, the fused
//! transpose-read + clamp + row-sum pass behind `compute-F`/`compute-d`,
//! the damping triad, and full `belief_propagation` iterations with
//! deferred rounding (the end-to-end per-iteration wall-clock that
//! BENCH_2.json tracks across runtime changes).
//!
//! Environment knobs (for CI's bench-smoke job):
//! * `NETALIGN_BENCH_SCALE` — stand-in scale (default 0.01);
//! * `NETALIGN_BENCH_POOLS` — comma-separated pool sizes (default 1,4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netalign_bench::{bench_pools, bench_scale};
use netalign_core::bp::othermax::{column_positions, othermaxcol_into, othermaxrow_into};
use netalign_core::prelude::*;
use netalign_core::rowspans::RowSpans;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;
use rayon::prelude::*;
use std::hint::black_box;

fn bench_bp_kernels(c: &mut Criterion) {
    let scale = bench_scale();
    let inst = StandIn::LcshWiki.generate(scale, 7);
    let p = &inst.problem;
    let m = p.l.num_edges();
    let nnz = p.s.nnz();
    let g: Vec<f64> = (0..m).map(|i| ((i * 31) % 101) as f64 * 0.01).collect();
    let col_pos = column_positions(&p.l);
    let sk: Vec<f64> = (0..nnz)
        .map(|i| ((i * 17) % 47) as f64 * 0.1 - 2.0)
        .collect();

    let mut group = c.benchmark_group("bp-steps");
    group.sample_size(20);

    for &threads in &bench_pools() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");

        group.bench_function(BenchmarkId::new("othermaxrow", threads), |b| {
            let mut out = vec![0.0; m];
            let mut stats = vec![(0.0, 0.0, 0usize); p.l.num_left()];
            pool.install(|| {
                b.iter(|| {
                    othermaxrow_into(&p.l, &g, &mut out, &mut stats, 1000);
                    black_box(&out);
                })
            })
        });

        group.bench_function(BenchmarkId::new("othermaxcol", threads), |b| {
            let mut out = vec![0.0; m];
            let mut stats = vec![(0.0, 0.0, 0usize); p.l.num_right()];
            pool.install(|| {
                b.iter(|| {
                    othermaxcol_into(&p.l, &g, &col_pos, &mut out, &mut stats, 1000);
                    black_box(&out);
                })
            })
        });

        // The fused steps 1+2: F (transpose read through the value
        // permutation + clamp) and its row sums d in one sweep over
        // the precomputed span decomposition.
        group.bench_function(
            BenchmarkId::new("compute-f+d (fused row sweep)", threads),
            |b| {
                let rowptr = p.s.rowptr();
                let perm = p.s.transpose_perm().as_slice();
                let w = p.l.weights();
                let spans = RowSpans::from_rowptr(rowptr);
                let row_bounds = spans.row_bounds();
                let entry_bounds = spans.entry_bounds();
                let mut fv = vec![0.0; nnz];
                let mut d = vec![0.0; m];
                pool.install(|| {
                    b.iter(|| {
                        rayon::par_uneven_chunks_mut(&mut fv, entry_bounds)
                            .zip(rayon::par_uneven_chunks_mut(&mut d, row_bounds))
                            .enumerate()
                            .for_each(|(gi, (fv_chunk, d_chunk))| {
                                let rows = row_bounds[gi]..row_bounds[gi + 1];
                                let base = entry_bounds[gi];
                                for (de, e) in d_chunk.iter_mut().zip(rows) {
                                    let mut acc = 0.0;
                                    for idx in rowptr[e]..rowptr[e + 1] {
                                        let f = (2.0 + sk[perm[idx]]).clamp(0.0, 2.0);
                                        fv_chunk[idx - base] = f;
                                        acc += f;
                                    }
                                    *de = w[e] + acc;
                                }
                            });
                        black_box((&fv, &d));
                    })
                })
            },
        );

        group.bench_function(BenchmarkId::new("damping (3 vectors)", threads), |b| {
            let mut y = g.clone();
            let mut y_prev = g.clone();
            let mut z = g.clone();
            let mut z_prev = g.clone();
            let mut s1 = sk.clone();
            let mut s_prev = sk.clone();
            pool.install(|| {
                b.iter(|| {
                    for (cur, prev) in [(&mut y, &mut y_prev), (&mut z, &mut z_prev)] {
                        cur.par_iter_mut()
                            .with_min_len(1000)
                            .zip(prev.par_iter_mut().with_min_len(1000))
                            .for_each(|(c, p)| {
                                *c = 0.9 * *c + 0.1 * *p;
                                *p = *c;
                            });
                    }
                    s1.par_iter_mut()
                        .with_min_len(1000)
                        .zip(s_prev.par_iter_mut().with_min_len(1000))
                        .for_each(|(c, p)| {
                            *c = 0.9 * *c + 0.1 * *p;
                            *p = *c;
                        });
                    black_box((&y, &z, &s1));
                })
            })
        });

        // End-to-end: 20 BP iterations with rounding deferred to the
        // final flush — per-iteration runtime overhead is what the
        // persistent-pool work targets.
        group.bench_function(
            BenchmarkId::new("bp-20-iters (deferred rounding)", threads),
            |b| {
                let cfg = AlignConfig {
                    iterations: 20,
                    batch: 20,
                    matcher: MatcherKind::ParallelLocalDominant,
                    ..Default::default()
                };
                pool.install(|| b.iter(|| black_box(belief_propagation(p, &cfg))))
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_bp_kernels);
criterion_main!(benches);
