//! Report output and fault-tolerance plumbing shared by the experiment
//! binaries: graceful JSON-report writing (parent directories created,
//! typed errors instead of panics), `--checkpoint` / `--resume` flag
//! resolution into a [`RunHarness`], and the shared deadline flags
//! (`--deadline-ms`, `--soft-iter-ms`, `--watchdog-ms`,
//! `--on-deadline`) for anytime runs.

use crate::cli::Args;
use netalign_core::checkpoint::CheckpointError;
use netalign_core::config::TimeBudget;
use netalign_core::exitcode;
use netalign_core::harness::{AlignOutcome, DeadlinePolicy, HarnessError, RunHarness};
use netalign_core::trace::Json;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Why a report could not be written.
#[derive(Debug)]
pub enum ReportError {
    /// Creating a parent directory of the report path failed.
    CreateDir {
        /// The directory we tried to create.
        dir: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// Writing the report file itself failed.
    Write {
        /// The report path.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::CreateDir { dir, source } => {
                write!(
                    fm,
                    "cannot create report directory {}: {source}",
                    dir.display()
                )
            }
            ReportError::Write { path, source } => {
                write!(fm, "cannot write report {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ReportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReportError::CreateDir { source, .. } | ReportError::Write { source, .. } => {
                Some(source)
            }
        }
    }
}

/// Write a JSON report to `path`, creating missing parent directories.
pub fn write_json_report(path: impl AsRef<Path>, report: &Json) -> Result<(), ReportError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|source| ReportError::CreateDir {
                dir: dir.to_path_buf(),
                source,
            })?;
        }
    }
    std::fs::write(path, report.render_line()).map_err(|source| ReportError::Write {
        path: path.to_path_buf(),
        source,
    })
}

/// Binary-friendly wrapper: report the error on stderr and exit with
/// the I/O code of the workspace taxonomy instead of panicking with a
/// backtrace.
pub fn write_json_report_or_exit(path: impl AsRef<Path>, report: &Json) {
    let path = path.as_ref();
    if let Err(e) = write_json_report(path, report) {
        eprintln!("error: {e}");
        std::process::exit(exitcode::IO);
    }
    eprintln!("wrote JSON report to {}", path.display());
}

/// Resolve `--checkpoint DIR` / `--resume PATH` flag values (empty
/// string = absent) into a [`RunHarness`] for one named run of a sweep
/// binary. Each run snapshots into its own subdirectory `DIR/<sub>` so
/// that e.g. different thread counts of a sweep never collide.
///
/// With only `--checkpoint`, a rerun auto-resumes from its own
/// directory (newest valid snapshot; fresh start when none exists
/// yet), so killing and relaunching the same command continues the
/// run. An explicit `--resume` overrides the source (also
/// `<sub>`-suffixed) and must then hold a loadable snapshot directory
/// or file.
pub fn harness_for_run(checkpoint: &str, resume: &str, sub: &str) -> Option<RunHarness> {
    if checkpoint.is_empty() && resume.is_empty() {
        return None;
    }
    let mut h = RunHarness::new();
    if !checkpoint.is_empty() {
        let dir = Path::new(checkpoint).join(sub);
        if resume.is_empty() && dir.is_dir() {
            h = h.with_resume_from(&dir);
        }
        h = h.with_checkpoint_dir(dir);
    }
    if !resume.is_empty() {
        h = h.with_resume_from(Path::new(resume).join(sub));
    }
    Some(h)
}

/// Fold the shared deadline flags into `base` (the harness from
/// [`harness_for_run`], if any). `--deadline-ms N` bounds the run's
/// wall-clock, `--soft-iter-ms N` sets the per-iteration soft budget,
/// `--watchdog-ms N` arms the stall watchdog, and `--on-deadline
/// {best-so-far,checkpoint,error}` picks the expiry policy. Returns
/// `None` only when neither `base` nor any deadline flag is present, so
/// budget-less invocations keep the direct (harness-free) path.
pub fn deadline_harness(args: &Args, base: Option<RunHarness>) -> Option<RunHarness> {
    let deadline_ms = args.opt_u64("deadline-ms");
    let soft_iter_ms = args.opt_u64("soft-iter-ms");
    let watchdog_ms = args.opt_u64("watchdog-ms");
    let policy = match args.string("on-deadline", "best-so-far").as_str() {
        "best-so-far" => DeadlinePolicy::BestSoFar,
        "checkpoint" => DeadlinePolicy::Checkpoint,
        "error" => DeadlinePolicy::Error,
        other => {
            eprintln!("error: unknown --on-deadline '{other}' (best-so-far|checkpoint|error)");
            std::process::exit(exitcode::USAGE);
        }
    };
    if base.is_none() && deadline_ms.is_none() && soft_iter_ms.is_none() && watchdog_ms.is_none() {
        return None;
    }
    let mut h = base.unwrap_or_default().with_on_deadline(policy);
    if deadline_ms.is_some() || soft_iter_ms.is_some() {
        h = h.with_time_budget(TimeBudget {
            deadline: deadline_ms.map(Duration::from_millis),
            soft_iteration: soft_iter_ms.map(Duration::from_millis),
        });
    }
    if let Some(ms) = watchdog_ms {
        h = h.with_watchdog(Duration::from_millis(ms));
    }
    Some(h)
}

/// Unwrap a harnessed run with the workspace exit-code taxonomy:
/// deadline-without-result → 4, checkpoint I/O → 3, checkpoint
/// validation or other internal failures → 5.
pub fn outcome_or_exit(name: &str, r: Result<AlignOutcome, HarnessError>) -> AlignOutcome {
    match r {
        Ok(o) => o,
        Err(HarnessError::DeadlineExceeded { iterations_run }) => {
            eprintln!(
                "error: '{name}' hit its deadline after {iterations_run} iterations \
                 (--on-deadline error)"
            );
            std::process::exit(exitcode::DEADLINE);
        }
        Err(HarnessError::Delta(e)) => {
            eprintln!("error: delta re-alignment failed for '{name}': {e}");
            std::process::exit(exitcode::INTERNAL);
        }
        Err(HarnessError::Checkpoint(e)) => {
            eprintln!("error: checkpoint/resume failed for '{name}': {e}");
            std::process::exit(match e {
                CheckpointError::Io { .. } => exitcode::IO,
                _ => exitcode::INTERNAL,
            });
        }
    }
}

/// The completion fields every per-run JSON report object carries.
pub fn completion_json(o: &AlignOutcome) -> Vec<(&'static str, Json)> {
    vec![
        ("completion", Json::str(o.completion.label())),
        ("iterations_run", Json::U64(o.iterations_run as u64)),
        ("ladder_rung", Json::U64(o.ladder_rung as u64)),
        (
            "cancel_reason",
            match o.cancel_reason {
                Some(r) => Json::str(r.label()),
                None => Json::Null,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("netalign-report-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = scratch("nested");
        let path = dir.join("deep/out.json");
        write_json_report(&path, &Json::obj(vec![("ok", Json::Bool(true))])).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"ok\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_target_is_a_typed_error() {
        let dir = scratch("blocked");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        // A directory at the report path makes the final write fail.
        let path = dir.join("report.json");
        std::fs::create_dir_all(&path).expect("blocking dir");
        let err = write_json_report(&path, &Json::Null).expect_err("must fail");
        assert!(matches!(err, ReportError::Write { .. }));
        assert!(err.to_string().contains("cannot write report"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn harness_flags_resolve_to_subdirectories() {
        assert!(harness_for_run("", "", "t4").is_none());
        assert!(harness_for_run("ckpts", "", "t4").is_some());
        assert!(harness_for_run("", "ckpts", "t4").is_some());
        assert!(harness_for_run("ckpts", "elsewhere", "t4").is_some());
    }

    #[test]
    fn deadline_flags_promote_to_a_harness() {
        let none = Args::from_args(std::iter::empty::<String>());
        assert!(deadline_harness(&none, None).is_none());
        let with = Args::from_args(
            ["--deadline-ms", "500", "--watchdog-ms", "2000"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(deadline_harness(&with, None).is_some());
        // An existing checkpoint harness passes through untouched.
        assert!(deadline_harness(&none, harness_for_run("ckpts", "", "t1")).is_some());
    }

    #[test]
    fn completion_json_has_all_fields() {
        use netalign_core::result::AlignmentResult;
        let result = AlignmentResult {
            matching: netalign_matching::Matching::empty(0, 0),
            objective: 0.0,
            weight: 0.0,
            overlap: 0.0,
            best_iteration: 0,
            upper_bound: None,
            history: Vec::new(),
            trace: Default::default(),
        };
        let o = AlignOutcome::completed(result, 7);
        let fields = completion_json(&o);
        let json = Json::obj(fields).render();
        assert!(json.contains("\"completion\":\"completed\""));
        assert!(json.contains("\"iterations_run\":7"));
        assert!(json.contains("\"ladder_rung\":0"));
        assert!(json.contains("\"cancel_reason\":null"));
    }
}
