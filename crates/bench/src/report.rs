//! Report output and fault-tolerance plumbing shared by the experiment
//! binaries: graceful JSON-report writing (parent directories created,
//! typed errors instead of panics) and `--checkpoint` / `--resume`
//! flag resolution into a [`RunHarness`].

use netalign_core::harness::RunHarness;
use netalign_core::trace::Json;
use std::path::{Path, PathBuf};

/// Why a report could not be written.
#[derive(Debug)]
pub enum ReportError {
    /// Creating a parent directory of the report path failed.
    CreateDir {
        /// The directory we tried to create.
        dir: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// Writing the report file itself failed.
    Write {
        /// The report path.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::CreateDir { dir, source } => {
                write!(
                    fm,
                    "cannot create report directory {}: {source}",
                    dir.display()
                )
            }
            ReportError::Write { path, source } => {
                write!(fm, "cannot write report {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ReportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReportError::CreateDir { source, .. } | ReportError::Write { source, .. } => {
                Some(source)
            }
        }
    }
}

/// Write a JSON report to `path`, creating missing parent directories.
pub fn write_json_report(path: impl AsRef<Path>, report: &Json) -> Result<(), ReportError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|source| ReportError::CreateDir {
                dir: dir.to_path_buf(),
                source,
            })?;
        }
    }
    std::fs::write(path, report.render_line()).map_err(|source| ReportError::Write {
        path: path.to_path_buf(),
        source,
    })
}

/// Binary-friendly wrapper: report the error on stderr and exit(1)
/// instead of panicking with a backtrace.
pub fn write_json_report_or_exit(path: impl AsRef<Path>, report: &Json) {
    let path = path.as_ref();
    if let Err(e) = write_json_report(path, report) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote JSON report to {}", path.display());
}

/// Resolve `--checkpoint DIR` / `--resume PATH` flag values (empty
/// string = absent) into a [`RunHarness`] for one named run of a sweep
/// binary. Each run snapshots into its own subdirectory `DIR/<sub>` so
/// that e.g. different thread counts of a sweep never collide.
///
/// With only `--checkpoint`, a rerun auto-resumes from its own
/// directory (newest valid snapshot; fresh start when none exists
/// yet), so killing and relaunching the same command continues the
/// run. An explicit `--resume` overrides the source (also
/// `<sub>`-suffixed) and must then hold a loadable snapshot directory
/// or file.
pub fn harness_for_run(checkpoint: &str, resume: &str, sub: &str) -> Option<RunHarness> {
    if checkpoint.is_empty() && resume.is_empty() {
        return None;
    }
    let mut h = RunHarness::new();
    if !checkpoint.is_empty() {
        let dir = Path::new(checkpoint).join(sub);
        if resume.is_empty() && dir.is_dir() {
            h = h.with_resume_from(&dir);
        }
        h = h.with_checkpoint_dir(dir);
    }
    if !resume.is_empty() {
        h = h.with_resume_from(Path::new(resume).join(sub));
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("netalign-report-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = scratch("nested");
        let path = dir.join("deep/out.json");
        write_json_report(&path, &Json::obj(vec![("ok", Json::Bool(true))])).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"ok\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_target_is_a_typed_error() {
        let dir = scratch("blocked");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        // A directory at the report path makes the final write fail.
        let path = dir.join("report.json");
        std::fs::create_dir_all(&path).expect("blocking dir");
        let err = write_json_report(&path, &Json::Null).expect_err("must fail");
        assert!(matches!(err, ReportError::Write { .. }));
        assert!(err.to_string().contains("cannot write report"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn harness_flags_resolve_to_subdirectories() {
        assert!(harness_for_run("", "", "t4").is_none());
        assert!(harness_for_run("ckpts", "", "t4").is_some());
        assert!(harness_for_run("", "ckpts", "t4").is_some());
        assert!(harness_for_run("ckpts", "elsewhere", "t4").is_some());
    }
}
