//! Figure 2: solution quality on synthetic power-law problems as the
//! expected degree `d̄` of random candidates in `L` varies.
//!
//! Four curves: MR and BP, each with exact and with (parallel
//! locally-dominant) approximate matching. Top panel = fraction of the
//! identity alignment's objective achieved, bottom panel = fraction of
//! correct matches. Paper setup: `n = 400`, `α = 1`, `β = 2`,
//! 1000 iterations; defaults here are trimmed for wall-clock and
//! adjustable by flags.
//!
//! Flags: `--n`, `--iters`, `--seed`, `--dbar-max`, `--trials`,
//! `--family powerlaw|er` (base graph family; the paper uses powerlaw).

use netalign_bench::{table::f, Args, Table};
use netalign_core::prelude::*;
use netalign_data::metrics::{fraction_correct, reference_objective};
use netalign_data::synthetic::{
    erdos_renyi_alignment, power_law_alignment, PowerLawParams, SyntheticInstance,
};
use netalign_matching::MatcherKind;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 400);
    let iters = args.usize("iters", 150);
    let seed = args.u64("seed", 1);
    let dbar_max = args.usize("dbar-max", 20);
    let trials = args.usize("trials", 1);
    let family = args.string("family", "powerlaw");

    println!(
        "Figure 2 — quality vs expected degree d̄ (n = {n}, {iters} iters, {trials} trial(s), {family} base)\n"
    );
    let mut t = Table::new(&[
        "dbar",
        "method",
        "matcher",
        "frac-objective",
        "frac-correct",
        "objective",
        "identity-obj",
    ]);

    let methods: [(&str, MatcherKind); 4] = [
        ("MR", MatcherKind::Exact),
        ("MR", MatcherKind::ParallelLocalDominant),
        ("BP", MatcherKind::Exact),
        ("BP", MatcherKind::ParallelLocalDominant),
    ];

    let mut dbar = 2usize;
    while dbar <= dbar_max {
        for (method, matcher) in methods {
            let mut sum_frac_obj = 0.0;
            let mut sum_frac_corr = 0.0;
            let mut sum_obj = 0.0;
            let mut sum_ref = 0.0;
            for trial in 0..trials {
                let params = PowerLawParams {
                    n,
                    expected_degree: dbar as f64,
                    seed: seed + 1000 * trial as u64 + dbar as u64,
                    ..Default::default()
                };
                let inst: SyntheticInstance = match family.as_str() {
                    "powerlaw" => power_law_alignment(&params),
                    "er" => erdos_renyi_alignment(n, 4.0 / n as f64, &params),
                    other => panic!("unknown family '{other}'"),
                };
                let cfg = AlignConfig {
                    iterations: iters,
                    matcher,
                    ..Default::default()
                };
                let r = match method {
                    "MR" => matching_relaxation(&inst.problem, &cfg),
                    _ => belief_propagation(&inst.problem, &cfg),
                };
                let reference = reference_objective(&inst.problem, &inst.planted, 1.0, 2.0);
                sum_frac_obj += r.objective / reference.total.max(1e-12);
                sum_frac_corr += fraction_correct(&r.matching, &inst.planted);
                sum_obj += r.objective;
                sum_ref += reference.total;
            }
            let tn = trials as f64;
            t.row(&[
                dbar.to_string(),
                method.to_string(),
                matcher.name().to_string(),
                f(sum_frac_obj / tn, 4),
                f(sum_frac_corr / tn, 4),
                f(sum_obj / tn, 1),
                f(sum_ref / tn, 1),
            ]);
        }
        dbar += 2;
    }
    t.print();
    println!("\nexpected shape (paper): BP exact ≈ BP approx; MR exact > MR approx,");
    println!("with MR+approx losing many correct matches as d̄ grows.");
}
