//! Incremental re-alignment smoke: delta replay against a cold
//! re-solve on a Table II stand-in (homo-musm at published scale by
//! default — its 1% delta frontier stays sparse across the run).
//!
//! The evolving-graph workload: a recorded BP base run, then a k-edge
//! candidate reweight (k ≤ 1% of `|E_L|` by default — the
//! delta-proportional regime). The delta path patches the squares
//! matrix in place and replays only the iterations/rows the edit
//! actually perturbs; the cold path rebuilds the patched problem from
//! scratch (graph rebuilds + full S enumeration) and re-solves all T
//! iterations. Both must produce bit-identical results; the delta wall
//! must come in at or under `--max-ratio` (default 0.5) of the cold
//! wall. Recording the base is *not* timed — it is the state the
//! service already holds when an edit arrives.
//!
//! Walls are minima over `--reps` repetitions, each from a freshly
//! recorded base so no warmth leaks between reps. The JSON report
//! (CI's `delta-smoke` job parses it, and a committed run lives at
//! `results/BENCH_7.json`) carries the walls, the ratio, the parity
//! verdict, and the replay's work accounting.
//!
//! Flags: `--standin`, `--scale`, `--seed`, `--iterations`,
//! `--changes` (0 = auto `max(1, m/100)`), `--reps`, `--threads`,
//! `--max-ratio`, `--json PATH`.

use netalign_bench::{run_with_threads, table::f, write_json_report_or_exit, Args, Table};
use netalign_core::bp::belief_propagation;
use netalign_core::config::AlignConfig;
use netalign_core::delta::{DeltaBase, DeltaStats, ProblemDelta};
use netalign_core::problem::NetAlignProblem;
use netalign_core::result::AlignmentResult;
use netalign_core::trace::Json;
use netalign_data::standins::StandIn;
use netalign_matching::RoundingMatcher;
use std::time::Instant;

/// `git rev-parse HEAD`, or `Json::Null` outside a work tree.
fn git_rev() -> Json {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| Json::str(s.trim()))
        .unwrap_or(Json::Null)
}

fn assert_bit_identical(delta: &AlignmentResult, cold: &AlignmentResult) {
    assert_eq!(
        delta.matching, cold.matching,
        "delta replay produced a different matching than the cold re-solve"
    );
    assert_eq!(
        delta.objective.to_bits(),
        cold.objective.to_bits(),
        "delta objective {} != cold objective {}",
        delta.objective,
        cold.objective
    );
    assert_eq!(delta.weight.to_bits(), cold.weight.to_bits());
    assert_eq!(delta.overlap.to_bits(), cold.overlap.to_bits());
    assert_eq!(delta.best_iteration, cold.best_iteration);
}

fn main() {
    let args = Args::parse();
    let standin = match args.string("standin", "homo-musm").as_str() {
        "dmela-scere" => StandIn::DmelaScere,
        "homo-musm" => StandIn::HomoMusm,
        "lcsh-wiki" => StandIn::LcshWiki,
        "lcsh-rameau" => StandIn::LcshRameau,
        other => panic!("unknown --standin '{other}'"),
    };
    let scale = args.f64("scale", 1.0);
    let seed = args.u64("seed", 7);
    let iterations = args.usize("iterations", 12);
    let changes = args.usize("changes", 0);
    let reps = args.usize("reps", 3);
    let threads = args.usize("threads", 1);
    let max_ratio = args.f64("max-ratio", 0.5);
    let json_path = args.string("json", "results/BENCH_7.json");

    let inst = standin.generate(scale, seed);
    let (a, b, l) = (
        inst.problem.a.clone(),
        inst.problem.b.clone(),
        inst.problem.l.clone(),
    );
    let m = l.num_edges();
    let k = if changes == 0 {
        (m / 100).max(1)
    } else {
        changes.min(m)
    };
    eprintln!(
        "{} stand-in at scale {scale}: shape {:?}, {m} candidates, \
         delta reweights {k} ({:.2}% of |E_L|)",
        standin.spec().name,
        inst.problem.shape(),
        100.0 * k as f64 / m as f64
    );

    let config = AlignConfig {
        iterations,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        ..AlignConfig::default()
    };

    // The k-edge delta: deterministic distinct candidate picks, new
    // weights on the 1/16 grid so patched entries are exactly
    // representable (weight bits survive the canonical L rebuild).
    let mut delta = ProblemDelta::default();
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert((rng() % m as u64) as usize);
    }
    for e in picked {
        let (u, v) = l.endpoints(e);
        let w = (16 + rng() % 48) as f64 / 16.0;
        delta.l.reweight.push((u, v, w));
    }

    // Patched graphs a cold client would rebuild (L rebuilt through the
    // same canonicalising constructor the delta path uses internally).
    let patched_l = delta.l.apply(&l).expect("reweight delta is valid").graph;

    let mut cold_walls = Vec::with_capacity(reps);
    let mut delta_walls = Vec::with_capacity(reps);
    let mut last_stats = DeltaStats::default();
    run_with_threads(threads, || {
        for rep in 0..reps {
            // Delta path: base recorded off the clock (the service holds
            // it already), then patch + sparse replay on the clock.
            let base_problem = NetAlignProblem::new(a.clone(), b.clone(), l.clone());
            let (_, mut base) =
                DeltaBase::record(base_problem, config).expect("recording the base run failed");
            let t = Instant::now();
            let (delta_result, stats) = base.apply(&delta).expect("delta replay failed");
            let delta_wall = t.elapsed().as_secs_f64();

            // Cold path: rebuild the patched problem from scratch
            // (including full S enumeration) and solve all iterations.
            let t = Instant::now();
            let patched = NetAlignProblem::new(a.clone(), b.clone(), patched_l.clone());
            let cold_result = belief_propagation(&patched, &config);
            let cold_wall = t.elapsed().as_secs_f64();

            assert_bit_identical(&delta_result, &cold_result);
            assert!(
                stats.delta_reused_iterations > 0,
                "sparse replay reused no iterations"
            );
            eprintln!(
                "rep {rep}: cold {:.1} ms, delta {:.1} ms ({} of {} iterations sparse, \
                 {} of {} row slots recomputed)",
                cold_wall * 1e3,
                delta_wall * 1e3,
                stats.delta_reused_iterations,
                stats.iterations_total,
                stats.rows_recomputed,
                stats.row_slots_total,
            );
            cold_walls.push(cold_wall);
            delta_walls.push(delta_wall);
            last_stats = stats;
        }
    });

    let cold = cold_walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let delta_wall = delta_walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let ratio = delta_wall / cold;

    let mut table = Table::new(&["path", "wall ms", "x cold"]);
    table.row(&["cold re-solve".into(), f(cold * 1e3, 2), f(1.0, 3)]);
    table.row(&["delta replay".into(), f(delta_wall * 1e3, 2), f(ratio, 3)]);
    table.print();

    let stats_json = Json::obj(vec![
        (
            "reused_iterations",
            Json::U64(last_stats.delta_reused_iterations as u64),
        ),
        (
            "iterations_total",
            Json::U64(last_stats.iterations_total as u64),
        ),
        (
            "rows_recomputed",
            Json::U64(last_stats.rows_recomputed as u64),
        ),
        (
            "row_slots_total",
            Json::U64(last_stats.row_slots_total as u64),
        ),
        ("seed_rows", Json::U64(last_stats.seed_rows as u64)),
        ("stages_reused", Json::U64(last_stats.stages_reused as u64)),
        (
            "stages_rematched",
            Json::U64(last_stats.stages_rematched as u64),
        ),
        (
            "escaped_at",
            last_stats
                .escaped_at
                .map_or(Json::Null, |i| Json::U64(i as u64)),
        ),
        (
            "squares",
            Json::obj(vec![
                (
                    "rows_reenumerated",
                    Json::U64(last_stats.squares.rows_reenumerated as u64),
                ),
                (
                    "rows_reused",
                    Json::U64(last_stats.squares.rows_reused as u64),
                ),
                (
                    "entries_reused",
                    Json::U64(last_stats.squares.entries_reused as u64),
                ),
                ("nnz", Json::U64(last_stats.squares.nnz as u64)),
            ]),
        ),
    ]);
    let report = Json::obj(vec![
        ("bench", Json::str("delta_smoke")),
        ("git_rev", git_rev()),
        (
            "config",
            Json::obj(vec![
                ("scale", Json::F64(scale)),
                ("seed", Json::U64(seed)),
                ("iterations", Json::U64(iterations as u64)),
                ("threads", Json::U64(threads as u64)),
                ("reps", Json::U64(reps as u64)),
                ("candidates", Json::U64(m as u64)),
                ("delta_edges", Json::U64(k as u64)),
                ("max_ratio", Json::F64(max_ratio)),
            ]),
        ),
        ("cold_ms", Json::F64(cold * 1e3)),
        ("delta_ms", Json::F64(delta_wall * 1e3)),
        ("ratio", Json::F64(ratio)),
        ("bit_identical", Json::Bool(true)),
        ("delta", stats_json),
    ]);
    if !json_path.is_empty() {
        write_json_report_or_exit(&json_path, &report);
    }

    if ratio > max_ratio {
        eprintln!(
            "FAIL: delta replay took {ratio:.3}x the cold re-solve \
             (gate: <= {max_ratio})"
        );
        std::process::exit(1);
    }
    eprintln!("OK: delta replay at {ratio:.3}x cold (gate: <= {max_ratio})");
}
