//! Extended quality comparison: BP and MR against the literature
//! baselines (IsoRank, NSD, naive rounding) and across BP damping
//! variants, on the Figure-2 workload. Not a paper figure — it places
//! the paper's two methods in the wider landscape its introduction
//! surveys (refs [5], [11]) and exercises the [13] damping variants
//! the paper mentions.
//!
//! Flags: `--n`, `--iters`, `--seed`, `--dbar`.

use netalign_bench::{table::f, Args, Table};
use netalign_core::baselines::{isorank, naive_rounding, nsd, IsoRankConfig, NsdConfig};
use netalign_core::config::DampingKind;
use netalign_core::prelude::*;
use netalign_data::metrics::{fraction_correct, reference_objective};
use netalign_data::synthetic::{power_law_alignment, PowerLawParams};

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 400);
    let iters = args.usize("iters", 100);
    let seed = args.u64("seed", 2);
    let dbar = args.f64("dbar", 8.0);

    let inst = power_law_alignment(&PowerLawParams {
        n,
        expected_degree: dbar,
        seed,
        ..Default::default()
    });
    let p = &inst.problem;
    let reference = reference_objective(p, &inst.planted, 1.0, 2.0);
    println!(
        "Baselines on the Fig.2 workload (n = {n}, d̄ = {dbar}, identity objective {:.1})\n",
        reference.total
    );

    let mut t = Table::new(&["method", "objective", "frac-identity", "frac-correct"]);
    let base = AlignConfig {
        iterations: iters,
        ..Default::default()
    };

    let mut row = |name: &str, r: &netalign_core::AlignmentResult| {
        t.row(&[
            name.to_string(),
            f(r.objective, 1),
            f(r.objective / reference.total, 4),
            f(fraction_correct(&r.matching, &inst.planted), 4),
        ]);
    };

    row("naive (round w)", &naive_rounding(p, &base));
    row("isorank", &isorank(p, &IsoRankConfig::default(), &base));
    row("nsd", &nsd(p, &NsdConfig::default(), &base));
    row("MR", &matching_relaxation(p, &base));
    row("BP (power damping)", &belief_propagation(p, &base));
    row(
        "BP (constant damping)",
        &belief_propagation(
            p,
            &AlignConfig {
                damping: DampingKind::Constant,
                ..base
            },
        ),
    );
    row(
        "BP (no damping)",
        &belief_propagation(
            p,
            &AlignConfig {
                damping: DampingKind::None,
                ..base
            },
        ),
    );
    t.print();
    println!("\nexpected shape: BP dominates the diffusion baselines (isorank, nsd)");
    println!("and MR at equal iteration budgets; damping matters (no-damping BP");
    println!("oscillates and relies on best-iterate tracking).");
    println!("\ncaveat: this workload's similarity weights are uniform, and this");
    println!("library's deterministic tie-breaking happens to favour the planted");
    println!("diagonal — which is why the zero-work 'naive' row looks perfect here.");
    println!("Real similarity weights (see the stand-ins) remove that artifact.");
}
