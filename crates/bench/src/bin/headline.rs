//! The paper's headline result (§IX): replacing exact bipartite
//! matching by the parallel ½-approximation turns a ~10-minute serial
//! solve into ~36 seconds — a combination of the cheaper `O(|E_L|)`
//! matcher and multicore scaling — at negligible cost in solution
//! quality for BP.
//!
//! This harness runs BP on the lcsh-wiki stand-in three ways:
//!   1. 1 thread, exact matching        (the "before" configuration)
//!   2. 1 thread, approximate matching  (algorithmic gain alone)
//!   3. N threads, approximate matching (the paper's configuration)
//!
//! and reports the wall-clock ratio plus the objective gap.
//!
//! Flags: `--scale`, `--iters`, `--seed`, `--threads` (max pool size),
//! `--matcher {ld,suitor}` to route the approximate configurations'
//! rounding through the preallocated matcher engine, `--warm-start
//! true` to warm-start it (the exact baseline is unaffected), `--json
//! PATH` to also write the machine-readable report (one full
//! [`AlignmentResult::report_json`] per configuration; schema in
//! EXPERIMENTS.md), `--checkpoint DIR` to snapshot each configuration
//! into its own `DIR/<slug>` subdirectory (a rerun of the same command
//! auto-resumes), and `--resume PATH` to resume from an explicit
//! snapshot tree. `--mmap DIR` streams the squares matrix to
//! `DIR/s.nacs` and runs on the memory-mapped view (bit-identical);
//! `--max-resident-mb N` bounds the build and exits 6 when infeasible.

use netalign_bench::{
    available_threads, completion_json, deadline_harness, harness_for_run, outcome_or_exit,
    rounding_flags, run_with_threads, standin_problem_or_exit, table::f, write_json_report_or_exit,
    Args, Table,
};
use netalign_core::prelude::*;
use netalign_core::trace::Json;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.01);
    let iters = args.usize("iters", 10);
    let seed = args.u64("seed", 11);
    let max_threads = args.usize("threads", available_threads());
    let rf = rounding_flags(&args);
    let json_path = args.string("json", "");
    let checkpoint = args.string("checkpoint", "");
    let resume = args.string("resume", "");

    let problem = standin_problem_or_exit(&args, StandIn::LcshWiki, scale, seed);
    eprintln!(
        "lcsh-wiki stand-in at scale {scale}: shape {:?}",
        problem.shape()
    );

    let runs = [
        (
            "BP exact, 1 thread",
            "exact-t1",
            MatcherKind::Exact,
            None,
            false,
            1usize,
        ),
        (
            "BP approx, 1 thread",
            "approx-t1",
            rf.matcher,
            rf.rounding,
            rf.warm_start,
            1,
        ),
        (
            "BP approx, max threads",
            "approx-tmax",
            rf.matcher,
            rf.rounding,
            rf.warm_start,
            max_threads,
        ),
    ];

    println!("Headline — exact/serial vs approximate/parallel BP ({iters} iters)\n");
    let mut t = Table::new(&["configuration", "threads", "seconds", "objective"]);
    let mut results = Vec::new();
    let mut reports = Vec::new();
    for (name, slug, matcher, rounding, warm_start, nt) in runs {
        let cfg = AlignConfig {
            iterations: iters,
            batch: 20,
            matcher,
            rounding,
            warm_start,
            trace_matcher: true,
            ..Default::default()
        };
        let problem = &problem;
        let harness = deadline_harness(&args, harness_for_run(&checkpoint, &resume, slug));
        let (secs, r) = run_with_threads(nt, || {
            let start = Instant::now();
            let r = match &harness {
                None => Ok(AlignOutcome::completed(
                    belief_propagation(problem, &cfg),
                    cfg.iterations,
                )),
                Some(h) => h.run_bp(problem, &cfg),
            };
            (start.elapsed().as_secs_f64(), r)
        });
        let outcome = outcome_or_exit(name, r);
        let r = &outcome.result;
        eprintln!(
            "{name}: {secs:.2}s, objective {:.1} ({})",
            r.objective,
            outcome.completion.label()
        );
        t.row(&[
            name.to_string(),
            nt.to_string(),
            f(secs, 2),
            f(r.objective, 1),
        ]);
        let mut fields = vec![
            ("configuration", Json::str(name)),
            ("matcher", Json::str(matcher.name())),
            ("threads", Json::U64(nt as u64)),
            ("wall_seconds", Json::F64(secs)),
            ("report", r.report_json()),
        ];
        fields.extend(completion_json(&outcome));
        reports.push(Json::obj(fields));
        results.push((name, secs, r.objective));
    }
    t.print();

    let (_, t_exact, o_exact) = results[0];
    let (_, t_par, o_par) = results[2];
    println!(
        "\nend-to-end speedup (exact/1t -> approx/{max_threads}t): {:.1}x",
        t_exact / t_par
    );
    println!(
        "objective change: {:+.2}% (paper: negligible for BP)",
        100.0 * (o_par - o_exact) / o_exact.abs().max(1e-12)
    );
    println!("paper's numbers on the real lcsh-wiki with 40 threads: 10 min -> 36 s.");

    if !json_path.is_empty() {
        let report = Json::obj(vec![
            ("figure", Json::str("headline")),
            ("scale", Json::F64(scale)),
            ("iterations", Json::U64(iters as u64)),
            ("seed", Json::U64(seed)),
            ("speedup", Json::F64(t_exact / t_par)),
            ("runs", Json::Arr(reports)),
        ]);
        write_json_report_or_exit(&json_path, &report);
    }
}
