//! Figure 6: per-step strong scaling of Klau's MR method on the
//! lcsh-wiki stand-in (steps: row-match, daxpy, match, objective,
//! update-U), plus each step's share of the runtime at every thread
//! count — the paper reports row-match ≈ 40% and match ≈ 40% at
//! 40 threads, making the matching the scalability limiter.
//!
//! Flags: `--scale`, `--iters`, `--seed`, `--threads`,
//! `--matcher {ld,suitor}` to route the per-iteration rounding through
//! the preallocated matcher engine, `--warm-start true` to seed each
//! rounding from the previous iteration's mate state (bit-identical
//! results either way), `--json PATH` to also write the
//! machine-readable report (per-thread-count per-step seconds plus the
//! matcher counters; schema in EXPERIMENTS.md), `--checkpoint DIR` to
//! snapshot each run into `DIR/t{n}` (a rerun of the same command
//! auto-resumes), and `--resume PATH` to resume from an explicit
//! snapshot tree. `--mmap DIR` streams the squares matrix to
//! `DIR/s.nacs` and runs on the memory-mapped view (bit-identical);
//! `--max-resident-mb N` bounds the build and exits 6 when infeasible.

use netalign_bench::{
    completion_json, deadline_harness, harness_for_run, outcome_or_exit, rounding_flags,
    run_with_threads, standin_problem_or_exit, table::f, thread_sweep, write_json_report_or_exit,
    Args, Table,
};
use netalign_core::prelude::*;
use netalign_core::trace::{Json, Step};
use netalign_data::standins::StandIn;

const MR_STEPS: [Step; 5] = [
    Step::RowMatch,
    Step::Daxpy,
    Step::Match,
    Step::ObjectiveEval,
    Step::UpdateU,
];

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.01);
    let iters = args.usize("iters", 10);
    let seed = args.u64("seed", 11);
    let threads = args.usize_list("threads", thread_sweep());
    let rf = rounding_flags(&args);
    let json_path = args.string("json", "");
    let checkpoint = args.string("checkpoint", "");
    let resume = args.string("resume", "");

    let problem = standin_problem_or_exit(&args, StandIn::LcshWiki, scale, seed);
    eprintln!(
        "lcsh-wiki stand-in at scale {scale}: shape {:?}",
        problem.shape()
    );

    println!("Figure 6 — per-step strong scaling of MR ({iters} iters)\n");
    let mut t = Table::new(&["threads", "step", "seconds", "speedup", "share"]);
    let mut base: Option<Vec<f64>> = None;
    let mut runs = Vec::new();
    for &nt in &threads {
        let cfg = AlignConfig {
            iterations: iters,
            matcher: rf.matcher,
            rounding: rf.rounding,
            warm_start: rf.warm_start,
            trace_matcher: true,
            ..Default::default()
        };
        let problem = &problem;
        let harness = deadline_harness(
            &args,
            harness_for_run(&checkpoint, &resume, &format!("t{nt}")),
        );
        let outcome = outcome_or_exit(
            &format!("threads={nt}"),
            run_with_threads(nt, || match &harness {
                None => Ok(AlignOutcome::completed(
                    matching_relaxation(problem, &cfg),
                    cfg.iterations,
                )),
                Some(h) => h.run_mr(problem, &cfg),
            }),
        );
        let trace = outcome.result.trace.clone();
        let secs: Vec<f64> = MR_STEPS
            .iter()
            .map(|s| trace.get(*s).as_secs_f64())
            .collect();
        let total: f64 = secs.iter().sum();
        let base = base.get_or_insert_with(|| secs.clone());
        for (i, step) in MR_STEPS.iter().enumerate() {
            t.row(&[
                nt.to_string(),
                step.name().to_string(),
                f(secs[i], 3),
                f(base[i] / secs[i].max(1e-12), 2),
                f(secs[i] / total.max(1e-12), 3),
            ]);
        }
        eprintln!(
            "threads={nt}: total {total:.3}s ({})",
            outcome.completion.label()
        );
        let mut fields = vec![
            ("threads", Json::U64(nt as u64)),
            (
                "steps",
                Json::obj(
                    MR_STEPS
                        .iter()
                        .zip(&secs)
                        .map(|(s, &v)| (s.name(), Json::F64(v)))
                        .collect(),
                ),
            ),
            ("total_seconds", Json::F64(total)),
            ("matcher", trace.matcher.to_json()),
            ("algo", trace.algo.to_json()),
            ("peak_rss_kb", Json::U64(trace.peak_rss_kb)),
        ];
        fields.extend(completion_json(&outcome));
        runs.push(Json::obj(fields));
    }
    t.print();
    println!("\nexpected shape (paper): the match step stops scaling first and");
    println!("dominates the runtime share at high thread counts (≈40% alongside");
    println!("row-match ≈40% at 40 threads).");

    if !json_path.is_empty() {
        let report = Json::obj(vec![
            ("figure", Json::str("fig6")),
            ("scale", Json::F64(scale)),
            ("iterations", Json::U64(iters as u64)),
            ("seed", Json::U64(seed)),
            ("runs", Json::Arr(runs)),
        ]);
        write_json_report_or_exit(&json_path, &report);
    }
}
