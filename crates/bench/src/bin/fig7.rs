//! Figure 7: per-step strong scaling of BP(batch=20) on the lcsh-wiki
//! stand-in (steps: compute-F, compute-d, othermax, update-S, damping,
//! matching). The paper reports othermax ≈ 15%, matching ≈ 58% and
//! damping ≈ 12% at 40 threads, with damping the limiting step.
//!
//! Flags: `--scale`, `--iters`, `--seed`, `--threads`, `--batch`.

use netalign_bench::{run_with_threads, table::f, thread_sweep, Args, Table};
use netalign_core::prelude::*;
use netalign_core::timing::Step;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;

const BP_STEPS: [Step; 6] = [
    Step::ComputeF,
    Step::ComputeD,
    Step::OtherMax,
    Step::UpdateS,
    Step::Damping,
    Step::Match,
];

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.01);
    let iters = args.usize("iters", 10);
    let seed = args.u64("seed", 11);
    let batch = args.usize("batch", 20);
    let threads = args.usize_list("threads", thread_sweep());

    let inst = StandIn::LcshWiki.generate(scale, seed);
    eprintln!(
        "lcsh-wiki stand-in at scale {scale}: shape {:?}",
        inst.problem.shape()
    );

    println!("Figure 7 — per-step strong scaling of BP(batch={batch}) ({iters} iters)\n");
    let mut t = Table::new(&["threads", "step", "seconds", "speedup", "share"]);
    let mut base: Option<Vec<f64>> = None;
    for &nt in &threads {
        let cfg = AlignConfig {
            iterations: iters,
            batch,
            matcher: MatcherKind::ParallelLocalDominant,
            ..Default::default()
        };
        let problem = &inst.problem;
        let timers = run_with_threads(nt, || belief_propagation(problem, &cfg).timers);
        let secs: Vec<f64> = BP_STEPS.iter().map(|s| timers.get(*s).as_secs_f64()).collect();
        let total: f64 = secs.iter().sum();
        let base = base.get_or_insert_with(|| secs.clone());
        for (i, step) in BP_STEPS.iter().enumerate() {
            t.row(&[
                nt.to_string(),
                step.name().to_string(),
                f(secs[i], 3),
                f(base[i] / secs[i].max(1e-12), 2),
                f(secs[i] / total.max(1e-12), 3),
            ]);
        }
        eprintln!("threads={nt}: total {total:.3}s");
    }
    t.print();
    println!("\nexpected shape (paper): matching takes the majority of the iteration");
    println!("(50–75%); the memory-bandwidth-bound damping step scales worst.");
}
