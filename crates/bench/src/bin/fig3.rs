//! Figure 3: matching weight vs overlap scatter across a parameter
//! sweep, exact vs approximate rounding.
//!
//! The paper varies the objective (α, β), damping and other inputs,
//! then scatters `(wᵀx, xᵀSx/2)` per method on dmela-scere (top) and
//! lcsh-wiki (bottom). We print one row per (problem, method, matcher,
//! α, β, γ) combination: a textual form of the same scatter.
//!
//! Flags: `--bio-scale`, `--onto-scale`, `--iters`, `--seed`.

use netalign_bench::{table::f, Args, Table};
use netalign_core::prelude::*;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;

fn main() {
    let args = Args::parse();
    let bio_scale = args.f64("bio-scale", 0.25);
    let onto_scale = args.f64("onto-scale", 0.004);
    let iters = args.usize("iters", 30);
    let seed = args.u64("seed", 5);

    let alphas = [0.0, 0.5, 1.0, 2.0];
    let betas = [1.0, 2.0];
    let gammas = [0.99, 0.9];

    println!("Figure 3 — weight vs overlap across parameter sweeps ({iters} iters)\n");
    let mut t = Table::new(&[
        "problem",
        "method",
        "matcher",
        "alpha",
        "beta",
        "gamma",
        "weight",
        "overlap",
        "objective",
    ]);

    for (si, scale) in [
        (StandIn::DmelaScere, bio_scale),
        (StandIn::LcshWiki, onto_scale),
    ] {
        let inst = si.generate(scale, seed);
        eprintln!(
            "{}: scale {scale}, shape {:?}",
            si.spec().name,
            inst.problem.shape()
        );
        for matcher in [MatcherKind::Exact, MatcherKind::ParallelLocalDominant] {
            for method in ["MR", "BP"] {
                for &alpha in &alphas {
                    for &beta in &betas {
                        for &gamma in &gammas {
                            if alpha == 0.0 && beta == 0.0 {
                                continue;
                            }
                            let cfg = AlignConfig {
                                alpha,
                                beta,
                                gamma,
                                iterations: iters,
                                matcher,
                                ..Default::default()
                            };
                            let r = match method {
                                "MR" => matching_relaxation(&inst.problem, &cfg),
                                _ => belief_propagation(&inst.problem, &cfg),
                            };
                            t.row(&[
                                si.spec().name.to_string(),
                                method.to_string(),
                                matcher.name().to_string(),
                                f(alpha, 2),
                                f(beta, 2),
                                f(gamma, 2),
                                f(r.weight, 1),
                                f(r.overlap, 1),
                                f(r.objective, 1),
                            ]);
                        }
                    }
                }
            }
        }
    }
    t.print();
    println!("\nexpected shape (paper): BP scatter nearly identical between exact and");
    println!("approximate; MR with approximate matching shifts to visibly worse points.");
}
