//! Matcher-engine smoke: the preallocated [`MatcherEngine`] against the
//! legacy one-shot parallel local-dominant matcher on the bench-smoke
//! instance (lcsh-wiki stand-in), over a weight sequence with sparse
//! per-step changes — the workload a converging aligner hands the
//! rounding step, and the one warm-starting is designed for.
//!
//! Three configurations run over the same sequence:
//!   1. `legacy-ld-cold`  — `max_weight_matching(ParallelLocalDominant)`
//!      from scratch each step (the pre-engine baseline).
//!   2. `engine-cold`     — the engine with warm-starting disabled
//!      (preallocation only).
//!   3. `engine-warm`     — the engine seeding each step from the
//!      previous mate state, reprocessing only the changed suffix.
//!
//! All three produce bit-identical matchings (asserted per step); the
//! JSON report carries per-configuration wall seconds and the warm
//! engine's counters (`warm_hits`, `reseeded_vertices`), which CI
//! parses for the `warm_hits > 0` sanity check.
//!
//! Flags: `--scale`, `--seed`, `--steps` (sequence length), `--changes`
//! (perturbed edges per step), `--pattern {scatter,tail,frozen}`
//! (where in the edge order the per-step changes land — see below),
//! `--reps` (timing repetitions; minimum is reported), `--threads`
//! (pool size), `--matcher {ld,suitor}` (engine kind), `--json PATH`.
//!
//! Patterns:
//!   - `scatter` — changed edges at arbitrary ranks. The stability
//!     prefix `r*` is small, so the warm engine reprocesses most of the
//!     order; expect parity with cold (the warm diff is cheap but so is
//!     the work it saves).
//!   - `tail` (default) — changes confined to the lightest edges, the
//!     shape of a damped aligner's late iterations where only
//!     small-magnitude entries still drift. `r*` sits near the end of
//!     the order and the warm engine skips almost all matching work.
//!   - `frozen` — the weights stop changing after the first step (a
//!     bit-converged aligner); every later step is a pure warm hit.

use netalign_bench::{run_with_threads, table::f, write_json_report_or_exit, Args, Table};
use netalign_core::trace::Json;
use netalign_data::standins::StandIn;
use netalign_matching::{
    max_weight_matching, MatcherCounters, MatcherEngine, MatcherKind, RoundingMatcher,
};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.02);
    let seed = args.u64("seed", 7);
    let steps = args.usize("steps", 20);
    let changes = args.usize("changes", 16);
    let reps = args.usize("reps", 3);
    let threads = args.usize("threads", 4);
    let kind = match args.string("matcher", "ld").as_str() {
        "ld" => RoundingMatcher::Ld,
        "suitor" => RoundingMatcher::Suitor,
        other => panic!("--matcher must be 'ld' or 'suitor', got '{other}'"),
    };
    let pattern = args.string("pattern", "tail");
    let json_path = args.string("json", "");

    let inst = StandIn::LcshWiki.generate(scale, seed);
    let l = inst.problem.l.clone();
    let m = l.num_edges();
    eprintln!(
        "lcsh-wiki stand-in at scale {scale}: shape {:?}, {m} edges",
        inst.problem.shape()
    );

    // The rounding inputs of a converging aligner: mostly-frozen weights
    // with a handful of entries still drifting each step.
    let mut seq: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut w = l.weights().to_vec();
    // Edge ids of the `changes` lightest edges, for the tail pattern.
    let tail: Vec<usize> = {
        let mut ids: Vec<usize> = (0..m).collect();
        ids.sort_unstable_by(|&a, &b| w[a].total_cmp(&w[b]));
        ids.truncate(changes);
        ids
    };
    for s in 0..steps {
        for j in 0..changes {
            let e = match pattern.as_str() {
                "scatter" => (s * 7919 + j * 104729) % m,
                "tail" => tail[j],
                "frozen" => {
                    if s > 0 {
                        break;
                    }
                    (s * 7919 + j * 104729) % m
                }
                other => panic!("--pattern must be scatter, tail or frozen, got '{other}'"),
            };
            // Small relative drift keeps tail edges in the light end of
            // the order, so the stability prefix stays long.
            w[e] *= 1.0 + 1e-6 * (1.0 + (s + j) as f64 * 0.1);
        }
        seq.push(w.clone());
    }

    // Reference matchings from the legacy matcher, for the bit-identity
    // assertion below.
    let reference: Vec<Vec<_>> = seq
        .iter()
        .map(|w| {
            max_weight_matching(&l, w, MatcherKind::ParallelLocalDominant)
                .left_mates()
                .to_vec()
        })
        .collect();

    println!(
        "Matcher-engine smoke — {steps}-step sequence, {changes} changed edges/step \
         ({pattern}), pool size {threads}, {reps} reps (min reported)\n"
    );
    let mut t = Table::new(&["configuration", "seconds", "vs legacy"]);
    let mut runs = Vec::new();
    let mut legacy_secs = 0.0;
    for which in ["legacy-ld-cold", "engine-cold", "engine-warm"] {
        let warm = which == "engine-warm";
        let counters = MatcherCounters::new(true);
        let mut engine = MatcherEngine::new(&l, kind, warm);
        let mut best = f64::INFINITY;
        run_with_threads(threads, || {
            for _ in 0..reps {
                engine.invalidate();
                let t0 = Instant::now();
                for w in &seq {
                    if which == "legacy-ld-cold" {
                        std::hint::black_box(max_weight_matching(
                            &l,
                            w,
                            MatcherKind::ParallelLocalDominant,
                        ));
                    } else {
                        std::hint::black_box(engine.run(&l, w, &counters));
                    }
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            // Correctness pass, untimed: every configuration must agree
            // with the legacy matcher bit-for-bit on every step.
            engine.invalidate();
            for (w, expect) in seq.iter().zip(&reference) {
                let mates = if which == "legacy-ld-cold" {
                    max_weight_matching(&l, w, MatcherKind::ParallelLocalDominant)
                        .left_mates()
                        .to_vec()
                } else {
                    engine.run(&l, w, &counters).left_mates().to_vec()
                };
                assert_eq!(&mates, expect, "{which} diverged from the legacy matcher");
            }
        });
        if which == "legacy-ld-cold" {
            legacy_secs = best;
        }
        let snap = counters.snapshot();
        eprintln!(
            "{which}: {best:.4}s (warm_hits {}, reseeded {})",
            snap.warm_hits, snap.reseeded_vertices
        );
        t.row(&[
            which.to_string(),
            f(best, 4),
            f(legacy_secs / best.max(1e-12), 2),
        ]);
        runs.push(Json::obj(vec![
            ("name", Json::str(which)),
            ("seconds", Json::F64(best)),
            ("matcher", snap.to_json()),
        ]));
        if warm {
            assert!(
                snap.warm_hits > 0,
                "warm engine recorded no warm hits on a sparse-change sequence"
            );
        }
    }
    t.print();
    println!("\nall three configurations produce bit-identical matchings; the warm");
    println!("engine additionally skips the unchanged prefix of the edge order.");

    if !json_path.is_empty() {
        let report = Json::obj(vec![
            ("bench", Json::str("matcher-smoke")),
            ("dataset", Json::str("lcsh-wiki")),
            ("scale", Json::F64(scale)),
            ("seed", Json::U64(seed)),
            ("steps", Json::U64(steps as u64)),
            ("changes_per_step", Json::U64(changes as u64)),
            ("pattern", Json::str(pattern.as_str())),
            ("edges", Json::U64(m as u64)),
            ("threads", Json::U64(threads as u64)),
            ("reps", Json::U64(reps as u64)),
            ("runs", Json::Arr(runs)),
        ]);
        write_json_report_or_exit(&json_path, &report);
    }
}
