//! Figure 4: strong scaling on the lcsh-wiki stand-in for four
//! methods: Klau's MR and BP with rounding batch sizes 1, 10, 20.
//!
//! The paper runs 400 iterations with α=1, β=2, γ=0.99, mstep=10 on an
//! 8-socket Xeon E7-8870 and sweeps 1..80 OpenMP threads under several
//! NUMA layouts; we sweep rayon pool sizes on this machine's cores and
//! report speedup relative to the 1-thread run (the paper's
//! bound-memory baseline). All methods use the parallel approximate
//! matcher for rounding.
//!
//! Flags: `--scale`, `--iters`, `--seed`, `--threads 1,2,4,...`.

use netalign_bench::{paper_model_speedup, run_with_threads, table::f, thread_sweep, Args, Table};
use netalign_core::prelude::*;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.01);
    let iters = args.usize("iters", 10);
    let seed = args.u64("seed", 11);
    let threads = args.usize_list("threads", thread_sweep());

    let inst = StandIn::LcshWiki.generate(scale, seed);
    eprintln!(
        "lcsh-wiki stand-in at scale {scale}: shape {:?}",
        inst.problem.shape()
    );

    let methods: Vec<(String, bool, usize)> = vec![
        ("MR".into(), true, 1),
        ("BP(batch=1)".into(), false, 1),
        ("BP(batch=10)".into(), false, 10),
        ("BP(batch=20)".into(), false, 20),
    ];

    println!(
        "Figure 4 — strong scaling, lcsh-wiki stand-in ({} candidates, {iters} iters)\n",
        inst.problem.num_candidates()
    );
    let mut t = Table::new(&[
        "method",
        "threads",
        "seconds",
        "speedup",
        "paper-model",
        "objective",
    ]);
    for (name, is_mr, batch) in methods {
        let mut t1 = None;
        for &nt in &threads {
            let cfg = AlignConfig {
                iterations: iters,
                batch,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            };
            let problem = &inst.problem;
            let (secs, obj) = run_with_threads(nt, || {
                let start = Instant::now();
                let r = if is_mr {
                    matching_relaxation(problem, &cfg)
                } else {
                    belief_propagation(problem, &cfg)
                };
                (start.elapsed().as_secs_f64(), r.objective)
            });
            let base = *t1.get_or_insert(secs);
            t.row(&[
                name.clone(),
                nt.to_string(),
                f(secs, 3),
                f(base / secs, 2),
                f(paper_model_speedup(nt), 2),
                f(obj, 1),
            ]);
            eprintln!(
                "{name} threads={nt}: {secs:.3}s (speedup {:.2})",
                base / secs
            );
        }
    }
    t.print();
    println!("\nexpected shape (paper): near-linear speedup at low thread counts,");
    println!("flattening around the socket boundary; objective identical across");
    println!("thread counts (deterministic parallel matcher).");
}
