//! Figure 5: strong scaling on the larger lcsh-rameau stand-in for
//! Klau's MR method and BP(batch=20).
//!
//! Flags: `--scale`, `--iters`, `--seed`, `--threads`.

use netalign_bench::{paper_model_speedup, run_with_threads, table::f, thread_sweep, Args, Table};
use netalign_core::prelude::*;
use netalign_data::standins::StandIn;
use netalign_matching::MatcherKind;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.004);
    let iters = args.usize("iters", 8);
    let seed = args.u64("seed", 13);
    let threads = args.usize_list("threads", thread_sweep());

    let inst = StandIn::LcshRameau.generate(scale, seed);
    eprintln!(
        "lcsh-rameau stand-in at scale {scale}: shape {:?}",
        inst.problem.shape()
    );

    println!(
        "Figure 5 — strong scaling, lcsh-rameau stand-in ({} candidates, {iters} iters)\n",
        inst.problem.num_candidates()
    );
    let mut t = Table::new(&[
        "method",
        "threads",
        "seconds",
        "speedup",
        "paper-model",
        "objective",
    ]);
    for (name, is_mr, batch) in [("MR", true, 1), ("BP(batch=20)", false, 20)] {
        let mut t1 = None;
        for &nt in &threads {
            let cfg = AlignConfig {
                iterations: iters,
                batch,
                matcher: MatcherKind::ParallelLocalDominant,
                ..Default::default()
            };
            let problem = &inst.problem;
            let (secs, obj) = run_with_threads(nt, || {
                let start = Instant::now();
                let r = if is_mr {
                    matching_relaxation(problem, &cfg)
                } else {
                    belief_propagation(problem, &cfg)
                };
                (start.elapsed().as_secs_f64(), r.objective)
            });
            let base = *t1.get_or_insert(secs);
            t.row(&[
                name.to_string(),
                nt.to_string(),
                f(secs, 3),
                f(base / secs, 2),
                f(paper_model_speedup(nt), 2),
                f(obj, 1),
            ]);
            eprintln!(
                "{name} threads={nt}: {secs:.3}s (speedup {:.2})",
                base / secs
            );
        }
    }
    t.print();
    println!("\nexpected shape (paper): same scaling behaviour as lcsh-wiki; the");
    println!("batch-20 BP gave the best speedup on the larger problem.");
}
