//! Table II: dataset shape statistics.
//!
//! Generates the four stand-in instances and prints their
//! `(|V_A|, |V_B|, |E_L|, nnz(S))` next to the published values.
//!
//! Flags: `--bio-scale` (default 1.0), `--onto-scale` (default 0.02),
//! `--seed`.

use netalign_bench::{table::f, Args, Table};
use netalign_data::standins::StandIn;

fn main() {
    let args = Args::parse();
    let bio_scale = args.f64("bio-scale", 1.0);
    let onto_scale = args.f64("onto-scale", 0.02);
    let seed = args.u64("seed", 42);

    println!("Table II — dataset statistics (stand-ins vs published)");
    println!("bio scale {bio_scale}, ontology scale {onto_scale}\n");
    let mut t = Table::new(&[
        "problem",
        "scale",
        "|V_A|",
        "|V_B|",
        "|E_L|",
        "nnz(S)",
        "paper |V_A|",
        "paper |V_B|",
        "paper |E_L|",
        "paper nnz(S)",
    ]);
    for si in StandIn::ALL {
        let spec = si.spec();
        let scale = match si {
            StandIn::DmelaScere | StandIn::HomoMusm => bio_scale,
            _ => onto_scale,
        };
        let start = std::time::Instant::now();
        let inst = si.generate(scale, seed);
        let (va, vb, el, nnz) = inst.problem.shape();
        eprintln!(
            "generated {} at scale {} in {:.2}s",
            spec.name,
            scale,
            start.elapsed().as_secs_f64()
        );
        t.row(&[
            spec.name.to_string(),
            f(scale, 3),
            va.to_string(),
            vb.to_string(),
            el.to_string(),
            nnz.to_string(),
            spec.va.to_string(),
            spec.vb.to_string(),
            spec.el.to_string(),
            spec.nnz_s_published.to_string(),
        ]);
    }
    t.print();
    println!("\nnote: stand-in sizes scale linearly; published nnz(S) is a");
    println!("target shape, not enforced (see DESIGN.md substitutions).");
}
