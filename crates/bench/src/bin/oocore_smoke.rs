//! Out-of-core alignment smoke: streaming squares build + mapped BP
//! sweeps under a resident-memory budget, gated on bit-identity with
//! the in-core engine.
//!
//! The workload is an lcsh-style synthetic (`LcshLikeConfig::scaled`)
//! whose confusion candidates drive `nnz(S) ≫ |E_L|` — the shape that
//! makes an in-core squares matrix the memory bottleneck. The run:
//!
//! 1. generate the instance, stream `S` to `DIR/s.nacs` (spill-bounded
//!    build), reopen it memory-mapped;
//! 2. solve with the out-of-core BP sweeps at each `--pools` thread
//!    count (default `1,4`), requiring every pool to agree bit-for-bit;
//! 3. sample the process peak RSS (`VmHWM`) **before** anything
//!    in-core is built — the high-water mark is monotone, so this is
//!    the out-of-core path's own peak;
//! 4. optionally (`--compare-in-core true`, the default) build the
//!    in-core problem and verify the reference solve is bit-identical
//!    to the out-of-core results.
//!
//! Exit codes follow the workspace taxonomy: 6 when the out-of-core
//! peak RSS exceeds `--budget-mb` (or the budget is infeasible up
//! front), 5 when any bit-identity check fails. The JSON report (CI's
//! `oocore-smoke` job parses it; a committed run lives at
//! `results/BENCH_9.json`) carries the verdicts, the peak-RSS numbers,
//! and the sweep plan actually used.
//!
//! Flags: `--scale`, `--seed`, `--iters`, `--budget-mb` (0 = no
//! budget), `--pools 1,4`, `--dir PATH` (scratch; default under the
//! system temp dir, removed afterwards), `--compare-in-core`,
//! `--json PATH`.

use netalign_bench::{run_with_threads, table::f, write_json_report_or_exit, Args, Table};
use netalign_core::bp::belief_propagation;
use netalign_core::config::AlignConfig;
use netalign_core::exitcode;
use netalign_core::oocore::{belief_propagation_ooc, plan_for, OocError, OocOptions};
use netalign_core::problem::NetAlignProblem;
use netalign_core::result::AlignmentResult;
use netalign_core::squares::SquaresMatrix;
use netalign_core::trace::{peak_rss_kb, Json};
use netalign_graph::generators::{lcsh_like, LcshLikeConfig};
use netalign_graph::Graph;
use std::time::Instant;

/// `git rev-parse HEAD`, or `Json::Null` outside a work tree.
fn git_rev() -> Json {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| Json::str(s.trim()))
        .unwrap_or(Json::Null)
}

fn bit_identical(a: &AlignmentResult, b: &AlignmentResult) -> bool {
    a.objective.to_bits() == b.objective.to_bits()
        && a.matching == b.matching
        && a.best_iteration == b.best_iteration
}

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.02);
    let seed = args.u64("seed", 9);
    let iters = args.usize("iters", 8);
    let budget_mb = args.u64("budget-mb", 0);
    let pools = args.usize_list("pools", vec![1, 4]);
    let compare_in_core = args.bool("compare-in-core", true);
    let json_path = args.string("json", "");
    let dir = match args.string("dir", "").as_str() {
        "" => std::env::temp_dir().join(format!("netalign-oocore-smoke-{}", std::process::id())),
        d => std::path::PathBuf::from(d),
    };
    std::fs::create_dir_all(&dir).expect("cannot create scratch dir");

    let gen_cfg = LcshLikeConfig::scaled(scale);
    let t0 = Instant::now();
    let inst = lcsh_like(&gen_cfg, seed);
    let (a, b, l) = (inst.a, inst.b, inst.l);
    let gen_secs = t0.elapsed().as_secs_f64();
    let (na, nb, m) = (l.num_left(), l.num_right(), l.num_edges());
    eprintln!(
        "lcsh-like at scale {scale}: |V_A| {na}, |V_B| {nb}, |E_A| {}, |E_B| {}, \
         |E_L| {m} ({gen_secs:.1}s to generate)",
        a.num_edges(),
        b.num_edges(),
    );

    let mut opts = OocOptions::new(&dir);
    if budget_mb > 0 {
        opts = opts.with_budget_mb(budget_mb);
    }
    let plan = match plan_for(m, na, nb, &opts) {
        Ok(p) => p,
        Err(OocError::BudgetTooSmall {
            budget_bytes,
            baseline_bytes,
        }) => {
            eprintln!(
                "FAIL: --budget-mb {budget_mb} is below the out-of-core baseline \
                 ({} MiB needed)",
                baseline_bytes.div_ceil(1 << 20)
            );
            let _ = budget_bytes;
            std::process::exit(exitcode::BUDGET);
        }
        Err(e) => panic!("planning failed: {e}"),
    };
    eprintln!(
        "plan: superblock {} entries, spill buffer {} MiB, baseline {} MiB",
        plan.superblock_entries,
        plan.spill_buffer_bytes >> 20,
        plan.baseline_bytes >> 20,
    );

    // Streaming squares build: spill-bounded enumeration into the NACS
    // container, reopened memory-mapped.
    let t0 = Instant::now();
    let s =
        SquaresMatrix::build_streaming(&a, &b, &l, &dir.join("s.nacs"), plan.spill_buffer_bytes)
            .expect("streaming squares build failed");
    let build_secs = t0.elapsed().as_secs_f64();
    let nnz = s.nnz();
    let nacs_bytes = std::fs::metadata(dir.join("s.nacs"))
        .map(|md| md.len())
        .unwrap_or(0);
    eprintln!(
        "streamed S: nnz {nnz}, {} MiB on disk, {build_secs:.1}s",
        nacs_bytes >> 20
    );
    let mapped = NetAlignProblem::from_parts(a, b, l, s);

    let align_cfg = AlignConfig {
        iterations: iters,
        record_history: true,
        ..AlignConfig::default()
    };

    // Out-of-core solves, one per pool. Peak RSS must be sampled while
    // the in-core squares matrix has never existed in this process.
    let mut ooc_results: Vec<(usize, AlignmentResult, f64)> = Vec::new();
    for &threads in &pools {
        let t0 = Instant::now();
        let r = run_with_threads(threads, || {
            belief_propagation_ooc(&mapped, &align_cfg, &opts)
        })
        .unwrap_or_else(|e| match e {
            OocError::BudgetTooSmall { .. } => {
                eprintln!("FAIL: budget refused at solve time");
                std::process::exit(exitcode::BUDGET);
            }
            other => panic!("out-of-core solve failed: {other}"),
        });
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "ooc pool {threads}: objective {:.4}, matched {}, {secs:.1}s",
            r.objective,
            r.matching.cardinality()
        );
        ooc_results.push((threads, r, secs));
    }
    let ooc_peak_kb = peak_rss_kb();

    let (_, reference, _) = &ooc_results[0];
    let mut pools_identical = true;
    for (threads, r, _) in &ooc_results[1..] {
        if !bit_identical(r, reference) {
            eprintln!(
                "FAIL: pool {threads} diverges from pool {}",
                ooc_results[0].0
            );
            pools_identical = false;
        }
    }

    // In-core reference (builds the full S in memory — after the RSS
    // sample above, its footprint no longer pollutes the gate).
    let mut in_core_identical = true;
    let mut in_core_peak_kb = 0u64;
    let mut in_core_secs = 0.0;
    if compare_in_core {
        let t0 = Instant::now();
        let p = NetAlignProblem::new(
            Graph::clone(&mapped.a),
            Graph::clone(&mapped.b),
            mapped.l.clone(),
        );
        let r = run_with_threads(pools[0], || belief_propagation(&p, &align_cfg));
        in_core_secs = t0.elapsed().as_secs_f64();
        in_core_peak_kb = peak_rss_kb();
        in_core_identical = bit_identical(&r, reference);
        eprintln!(
            "in-core pool {}: objective {:.4}, {in_core_secs:.1}s, process peak now {} MiB",
            pools[0],
            r.objective,
            in_core_peak_kb >> 10
        );
        if !in_core_identical {
            eprintln!("FAIL: in-core reference diverges from the out-of-core solve");
        }
    }
    let bit_ok = pools_identical && in_core_identical;

    let budget_kb = budget_mb * 1024;
    let over_budget = budget_mb > 0 && ooc_peak_kb > budget_kb;

    let mut table = Table::new(&["path", "peak rss MiB", "wall s"]);
    table.row(&[
        "out-of-core".into(),
        f((ooc_peak_kb >> 10) as f64, 0),
        f(ooc_results.iter().map(|r| r.2).sum::<f64>(), 1),
    ]);
    if compare_in_core {
        table.row(&[
            "in-core (process cumulative)".into(),
            f((in_core_peak_kb >> 10) as f64, 0),
            f(in_core_secs, 1),
        ]);
    }
    table.print();

    let report = Json::obj(vec![
        ("bench", Json::str("oocore_smoke")),
        ("git_rev", git_rev()),
        (
            "config",
            Json::obj(vec![
                ("scale", Json::F64(scale)),
                ("seed", Json::U64(seed)),
                ("iterations", Json::U64(iters as u64)),
                ("budget_mb", Json::U64(budget_mb)),
                (
                    "pools",
                    Json::Arr(pools.iter().map(|&t| Json::U64(t as u64)).collect()),
                ),
                (
                    "superblock_entries",
                    Json::U64(plan.superblock_entries as u64),
                ),
                (
                    "spill_buffer_bytes",
                    Json::U64(plan.spill_buffer_bytes as u64),
                ),
            ]),
        ),
        (
            "instance",
            Json::obj(vec![
                ("va", Json::U64(na as u64)),
                ("vb", Json::U64(nb as u64)),
                ("el", Json::U64(m as u64)),
                ("nnz_s", Json::U64(nnz as u64)),
                ("nacs_bytes", Json::U64(nacs_bytes)),
            ]),
        ),
        ("bit_identical", Json::Bool(bit_ok)),
        ("peak_rss_kb", Json::U64(ooc_peak_kb)),
        ("budget_kb", Json::U64(budget_kb)),
        ("in_core_peak_rss_kb", Json::U64(in_core_peak_kb)),
        ("objective", Json::F64(reference.objective)),
        (
            "matched",
            Json::U64(reference.matching.cardinality() as u64),
        ),
        ("build_seconds", Json::F64(build_secs)),
        (
            "solve_seconds",
            Json::Arr(ooc_results.iter().map(|r| Json::F64(r.2)).collect()),
        ),
    ]);
    if !json_path.is_empty() {
        write_json_report_or_exit(&json_path, &report);
    }
    let _ = std::fs::remove_dir_all(&dir);

    if over_budget {
        eprintln!(
            "FAIL: out-of-core peak RSS {} kB exceeds the {budget_kb} kB budget",
            ooc_peak_kb
        );
        std::process::exit(exitcode::BUDGET);
    }
    if !bit_ok {
        std::process::exit(exitcode::INTERNAL);
    }
    eprintln!(
        "OK: bit-identical at pools {pools:?}, peak RSS {} MiB{}",
        ooc_peak_kb >> 10,
        if budget_mb > 0 {
            format!(" (budget {budget_mb} MiB)")
        } else {
            String::new()
        }
    );
}
