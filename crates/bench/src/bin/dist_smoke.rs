//! Distributed-execution smoke: the multi-process BP engine against
//! the in-process engine on one seeded power-law instance, clean and
//! under injected chaos.
//!
//! Scenarios (`--faults`, comma-separated):
//!
//! * `none`         — no injected fault (pure transport overhead);
//! * `worker-kill`  — worker 0 aborts inside its 3rd Solve superstep
//!   (`NETALIGN_FAULT_KILL=dist-solve@3` semantics), forcing a respawn
//!   and a checkpoint resync;
//! * `message-drop` — every 5th coordinator request frame is dropped
//!   on first transmission, forcing retransmissions;
//! * `torn-frame`   — every 6th request frame is cut mid-byte and the
//!   connection dropped, forcing reconnect + retransmission.
//!
//! Every scenario × worker-count cell must reproduce the in-process
//! result **bit-for-bit** and show its recovery machinery actually
//! firing (restarts/retransmissions > 0); any miss exits nonzero. The
//! JSON report (CI's `dist-chaos-matrix` job gates on it; a committed
//! run lives at `results/BENCH_10.json`) carries per-cell walls,
//! recovery counters, and verdicts.
//!
//! Flags: `--n`, `--seed`, `--iterations`, `--workers "1,2,4"`,
//! `--faults "none,worker-kill,message-drop,torn-frame"`,
//! `--json PATH`.

use netalign_bench::{table::f, write_json_report_or_exit, Args, Table};
use netalign_core::bp::belief_propagation;
use netalign_core::config::AlignConfig;
use netalign_core::dist::{align_distributed, parse_net_fault, DistConfig};
use netalign_core::result::AlignmentResult;
use netalign_core::trace::Json;
use netalign_data::synthetic::{power_law_alignment, PowerLawParams};
use netalign_matching::MatcherKind;
use std::time::Instant;

/// `git rev-parse HEAD`, or `Json::Null` outside a work tree.
fn git_rev() -> Json {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| Json::str(s.trim()))
        .unwrap_or(Json::Null)
}

/// One chaos scenario: how to arm the fault and which recovery
/// counters prove it actually fired.
struct Scenario {
    name: &'static str,
    arm: fn(&mut DistConfig),
    needs_restart: bool,
    needs_retransmit: bool,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "none",
        arm: |_| {},
        needs_restart: false,
        needs_retransmit: false,
    },
    Scenario {
        name: "worker-kill",
        arm: |dc| dc.worker_kill = Some("dist-solve@3".to_string()),
        needs_restart: true,
        needs_retransmit: false,
    },
    Scenario {
        name: "message-drop",
        arm: |dc| dc.net_fault = parse_net_fault("drop@5"),
        needs_restart: false,
        needs_retransmit: true,
    },
    Scenario {
        name: "torn-frame",
        arm: |dc| dc.net_fault = parse_net_fault("torn@6"),
        needs_restart: false,
        needs_retransmit: true,
    },
];

fn bit_identical(dist: &AlignmentResult, shared: &AlignmentResult) -> bool {
    dist.objective.to_bits() == shared.objective.to_bits()
        && dist.matching == shared.matching
        && dist.best_iteration == shared.best_iteration
}

fn main() {
    // This binary doubles as its own worker executable: coordinator
    // runs respawn it with the worker env set.
    netalign_core::dist::maybe_run_worker();

    let args = Args::parse();
    let n = args.usize("n", 200);
    let seed = args.u64("seed", 7);
    let iterations = args.usize("iterations", 8);
    let workers: Vec<usize> = args
        .string("workers", "1,2,4")
        .split(',')
        .map(|w| w.trim().parse().expect("--workers: bad count"))
        .collect();
    let faults = args.string("faults", "none,worker-kill,message-drop,torn-frame");
    let json_path = args.string("json", "results/BENCH_10.json");

    let scenarios: Vec<&Scenario> = faults
        .split(',')
        .map(|name| {
            SCENARIOS
                .iter()
                .find(|s| s.name == name.trim())
                .unwrap_or_else(|| panic!("unknown --faults entry '{name}'"))
        })
        .collect();

    let p = power_law_alignment(&PowerLawParams {
        n,
        expected_degree: 5.0,
        seed,
        ..Default::default()
    })
    .problem;
    let config = AlignConfig {
        iterations,
        matcher: MatcherKind::ParallelLocalDominant,
        ..AlignConfig::default()
    };
    eprintln!("power-law n={n} seed={seed}: shape {:?}", p.shape());

    let t = Instant::now();
    let shared = belief_propagation(&p, &config);
    let shared_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "in-process baseline: objective {:.4} in {shared_ms:.1} ms",
        shared.objective
    );

    let mut table = Table::new(&[
        "fault",
        "workers",
        "wall ms",
        "restarts",
        "retrans",
        "identical",
    ]);
    let mut runs = Vec::new();
    let mut failed = false;
    for sc in &scenarios {
        for &w in &workers {
            let mut dc = DistConfig::new(w);
            // Chaos hits a fixed fraction of transmissions, so the
            // retransmission delay dominates the wall; tighten it (the
            // semantics are delay-independent) to keep CI cells short.
            dc.timeouts.resend_after = std::time::Duration::from_millis(40);
            dc.timeouts.resend_cap = std::time::Duration::from_millis(300);
            dc.timeouts.reconnect_window = std::time::Duration::from_millis(400);
            (sc.arm)(&mut dc);
            let t = Instant::now();
            let report = match align_distributed(&p, &config, &dc) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("FAIL: {} x{w}: {e}", sc.name);
                    failed = true;
                    continue;
                }
            };
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let identical = bit_identical(&report.result, &shared);
            let fired = (!sc.needs_restart || report.worker_restarts > 0)
                && (!sc.needs_retransmit || report.retransmissions > 0);
            if !identical {
                eprintln!(
                    "FAIL: {} x{w}: objective {} != {}",
                    sc.name, report.result.objective, shared.objective
                );
                failed = true;
            }
            if !fired {
                eprintln!(
                    "FAIL: {} x{w}: injected fault left no recovery trace",
                    sc.name
                );
                failed = true;
            }
            table.row(&[
                sc.name.into(),
                w.to_string(),
                f(wall_ms, 1),
                report.worker_restarts.to_string(),
                report.retransmissions.to_string(),
                identical.to_string(),
            ]);
            runs.push(Json::obj(vec![
                ("fault", Json::str(sc.name)),
                ("workers", Json::U64(w as u64)),
                ("wall_ms", Json::F64(wall_ms)),
                ("worker_restarts", Json::U64(report.worker_restarts)),
                ("retransmissions", Json::U64(report.retransmissions)),
                ("repartitions", Json::U64(report.repartitions)),
                ("recoveries", Json::U64(report.recoveries)),
                ("objective", Json::F64(report.result.objective)),
                ("bit_identical", Json::Bool(identical)),
                ("fault_fired", Json::Bool(fired)),
            ]));
        }
    }
    table.print();

    let report = Json::obj(vec![
        ("bench", Json::str("dist_smoke")),
        ("git_rev", git_rev()),
        (
            "config",
            Json::obj(vec![
                ("n", Json::U64(n as u64)),
                ("seed", Json::U64(seed)),
                ("iterations", Json::U64(iterations as u64)),
                ("candidates", Json::U64(p.l.num_edges() as u64)),
            ]),
        ),
        ("in_process_ms", Json::F64(shared_ms)),
        ("in_process_objective", Json::F64(shared.objective)),
        ("runs", Json::Arr(runs)),
        ("all_identical", Json::Bool(!failed)),
    ]);
    if !json_path.is_empty() {
        write_json_report_or_exit(&json_path, &report);
    }

    if failed {
        eprintln!("FAIL: at least one cell diverged or its fault left no trace");
        std::process::exit(1);
    }
    eprintln!(
        "OK: {} cells bit-identical to the in-process engine",
        scenarios.len() * workers.len()
    );
}
