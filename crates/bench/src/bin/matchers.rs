//! Matcher comparison table (ablation companion to §V): every matching
//! algorithm in the workspace on one rounding workload — weight
//! relative to optimal, cardinality, wall-clock.
//!
//! Flags: `--dataset dmela-scere|homo-musm|lcsh-wiki|lcsh-rameau`,
//! `--scale`, `--seed`, `--ranks` (for the distributed matcher).

use netalign_bench::{table::f, Args, Table};
use netalign_data::standins::StandIn;
use netalign_matching::cardinality::hopcroft_karp;
use netalign_matching::{max_weight_matching, MatcherKind};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale = args.f64("scale", 0.2);
    let seed = args.u64("seed", 7);
    let ranks = args.usize("ranks", 4);
    let dataset = args.string("dataset", "dmela-scere");

    let si = match dataset.as_str() {
        "dmela-scere" => StandIn::DmelaScere,
        "homo-musm" => StandIn::HomoMusm,
        "lcsh-wiki" => StandIn::LcshWiki,
        "lcsh-rameau" => StandIn::LcshRameau,
        other => panic!("unknown dataset '{other}'"),
    };
    let inst = si.generate(scale, seed);
    let l = &inst.problem.l;
    eprintln!(
        "{dataset} at scale {scale}: shape {:?}",
        inst.problem.shape()
    );

    // Reference: exact weight and maximum cardinality.
    let t0 = Instant::now();
    let exact = max_weight_matching(l, l.weights(), MatcherKind::Exact);
    let exact_time = t0.elapsed().as_secs_f64();
    let opt_weight = exact.weight_in(l);
    let max_card = hopcroft_karp(l).cardinality();

    println!(
        "Matcher comparison on {dataset} ({} edges; optimal weight {:.1}, max cardinality {})\n",
        l.num_edges(),
        opt_weight,
        max_card
    );
    let mut t = Table::new(&[
        "matcher",
        "weight",
        "% of optimal",
        "cardinality",
        "seconds",
    ]);
    t.row(&[
        "exact".into(),
        f(opt_weight, 1),
        "100.00".into(),
        exact.cardinality().to_string(),
        f(exact_time, 4),
    ]);
    for kind in [
        MatcherKind::Greedy,
        MatcherKind::LocalDominant,
        MatcherKind::ParallelLocalDominant,
        MatcherKind::ParallelLocalDominantOneSide,
        MatcherKind::Suitor,
        MatcherKind::ParallelSuitor,
        MatcherKind::PathGrowing,
        MatcherKind::Distributed { ranks },
        MatcherKind::Auction { eps_rel: 1e-4 },
    ] {
        let t0 = Instant::now();
        let m = max_weight_matching(l, l.weights(), kind);
        let secs = t0.elapsed().as_secs_f64();
        let w = m.weight_in(l);
        assert!(m.is_valid(l), "{} invalid", kind.name());
        if kind.is_approximate() {
            assert!(
                w * 2.0 >= opt_weight - 1e-9,
                "{} broke the ½ bound",
                kind.name()
            );
        }
        t.row(&[
            kind.name().to_string(),
            f(w, 1),
            f(100.0 * w / opt_weight, 2),
            m.cardinality().to_string(),
            f(secs, 4),
        ]);
    }
    t.print();
    println!("\nAll locally-dominant-family rows (greedy, ld-*, suitor*) report the");
    println!("same weight: the matching is unique under the total edge order.");
}
