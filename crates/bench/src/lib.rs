//! Experiment harness utilities shared by the figure/table binaries
//! and the criterion benchmarks.

pub mod cli;
pub mod model;
pub mod ooc;
pub mod pool;
pub mod report;
pub mod table;

pub use cli::{rounding_flags, Args, RoundingFlags};
pub use model::{amdahl_speedup, paper_model_speedup};
pub use ooc::standin_problem_or_exit;
pub use pool::{available_threads, bench_pools, bench_scale, run_with_threads, thread_sweep};
pub use report::{
    completion_json, deadline_harness, harness_for_run, outcome_or_exit, write_json_report_or_exit,
    ReportError,
};
pub use table::Table;
