//! Analytic strong-scaling model for hardware this container lacks.
//!
//! The reproduction environment may expose a single core (as the
//! container used to produce EXPERIMENTS.md does), so measured thread
//! sweeps cannot show real speedup. As a documented substitute, the
//! figure harnesses also print an Amdahl projection
//!
//! ```text
//!     speedup(t) = 1 / (s + (1 − s) / t)
//! ```
//!
//! with the serial fraction `s` calibrated so that `speedup(40) = 15` —
//! the paper's measured result for both MR and BP on lcsh-wiki
//! (§VIII.B). This reproduces the *shape* of Figures 4–5 (near-linear
//! rise, flattening around 40 threads); it deliberately does not model
//! NUMA placement effects, which need the paper's 8-socket machine.

/// Serial fraction calibrated to the paper's 15-fold speedup at 40
/// threads: `s = (40/15 − 1) / 39`.
pub const PAPER_SERIAL_FRACTION: f64 = (40.0 / 15.0 - 1.0) / 39.0;

/// Amdahl speedup at `threads` for serial fraction `s`.
pub fn amdahl_speedup(s: f64, threads: usize) -> f64 {
    assert!((0.0..=1.0).contains(&s), "serial fraction must be in [0,1]");
    assert!(threads >= 1);
    1.0 / (s + (1.0 - s) / threads as f64)
}

/// The paper-calibrated projection.
pub fn paper_model_speedup(threads: usize) -> f64 {
    amdahl_speedup(PAPER_SERIAL_FRACTION, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_the_paper_point() {
        assert!((paper_model_speedup(40) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn single_thread_is_unity() {
        assert_eq!(paper_model_speedup(1), 1.0);
        assert_eq!(amdahl_speedup(0.5, 1), 1.0);
    }

    #[test]
    fn speedup_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for t in 1..=80 {
            let s = paper_model_speedup(t);
            assert!(s > prev);
            assert!(s < 1.0 / PAPER_SERIAL_FRACTION);
            prev = s;
        }
        // beyond 40 threads the curve flattens: the paper saw no gains
        // past ~40-80 threads
        assert!(paper_model_speedup(80) / paper_model_speedup(40) < 1.25);
    }

    #[test]
    fn zero_serial_fraction_is_linear() {
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
    }
}
