//! Minimal `--key value` argument parsing for the experiment binaries
//! (no external CLI crate needed).

use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    ///
    /// # Panics
    /// Panics on a flag without a value or a stray positional argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got '{a}'"))
                .to_string();
            let val = it
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            flags.insert(key, val);
        }
        Self { flags }
    }

    /// Get a float flag with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number"))
            })
            .unwrap_or(default)
    }

    /// Get an integer flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// Get a u64 flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// Get a comma-separated list of integers with default.
    pub fn usize_list(&self, key: &str, default: Vec<usize>) -> Vec<usize> {
        self.flags
            .get(key)
            .map(|v| {
                v.split(',')
                    .map(|x| {
                        x.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{key}: bad entry '{x}'"))
                    })
                    .collect()
            })
            .unwrap_or(default)
    }

    /// Get a string flag with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_typed_flags() {
        let a = args(&["--scale", "0.5", "--iters", "10", "--threads", "1,2,4"]);
        assert_eq!(a.f64("scale", 1.0), 0.5);
        assert_eq!(a.usize("iters", 3), 10);
        assert_eq!(a.usize_list("threads", vec![]), vec![1, 2, 4]);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args(&[]);
        assert_eq!(a.f64("scale", 0.25), 0.25);
        assert_eq!(a.string("matcher", "exact"), "exact");
        assert_eq!(a.u64("seed", 7), 7);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        let _ = args(&["--scale"]);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn positional_rejected() {
        let _ = args(&["positional"]);
    }
}
