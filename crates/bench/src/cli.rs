//! Minimal `--key value` argument parsing for the experiment binaries
//! (no external CLI crate needed).

use netalign_matching::{MatcherKind, RoundingMatcher};
use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    ///
    /// # Panics
    /// Panics on a flag without a value or a stray positional argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got '{a}'"))
                .to_string();
            let val = it
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            flags.insert(key, val);
        }
        Self { flags }
    }

    /// Get a float flag with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number"))
            })
            .unwrap_or(default)
    }

    /// Get an integer flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// Get an optional u64 flag (`None` when absent).
    pub fn opt_u64(&self, key: &str) -> Option<u64> {
        self.flags.get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{key} must be an integer"))
        })
    }

    /// Get a u64 flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// Get a comma-separated list of integers with default.
    pub fn usize_list(&self, key: &str, default: Vec<usize>) -> Vec<usize> {
        self.flags
            .get(key)
            .map(|v| {
                v.split(',')
                    .map(|x| {
                        x.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{key}: bad entry '{x}'"))
                    })
                    .collect()
            })
            .unwrap_or(default)
    }

    /// Get a string flag with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Get a boolean flag with default (`--flag true|false`).
    pub fn bool(&self, key: &str, default: bool) -> bool {
        self.flags
            .get(key)
            .map(|v| match v.as_str() {
                "true" | "1" | "yes" => true,
                "false" | "0" | "no" => false,
                other => panic!("--{key} must be true or false, got '{other}'"),
            })
            .unwrap_or(default)
    }
}

/// The matcher configuration the figure binaries share: which matcher
/// rounds the iterates, whether the preallocated engine backs it, and
/// whether successive calls warm-start from the previous mate state.
#[derive(Clone, Copy, Debug)]
pub struct RoundingFlags {
    /// Legacy one-shot matcher kind (also used by the final rounding).
    pub matcher: MatcherKind,
    /// Engine selection for [`netalign_core::AlignConfig::rounding`].
    pub rounding: Option<RoundingMatcher>,
    /// Warm-start the engine between rounding calls.
    pub warm_start: bool,
}

/// Parse the `--matcher {ld,suitor}` / `--warm-start true` flags shared
/// by `fig6`, `fig7` and `headline`. Without `--matcher` the legacy
/// cold queue-based parallel LD path is kept — unless `--warm-start
/// true` alone is given, which defaults the engine to `ld` (warm starts
/// need the engine's persistent state).
pub fn rounding_flags(args: &Args) -> RoundingFlags {
    let warm_start = args.bool("warm-start", false);
    let name = args.string("matcher", "");
    let (matcher, rounding) = match name.as_str() {
        "" => (
            MatcherKind::ParallelLocalDominant,
            warm_start.then_some(RoundingMatcher::Ld),
        ),
        "ld" => (
            MatcherKind::ParallelLocalDominant,
            Some(RoundingMatcher::Ld),
        ),
        "suitor" => (MatcherKind::ParallelSuitor, Some(RoundingMatcher::Suitor)),
        other => panic!("--matcher must be 'ld' or 'suitor', got '{other}'"),
    };
    RoundingFlags {
        matcher,
        rounding,
        warm_start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_typed_flags() {
        let a = args(&["--scale", "0.5", "--iters", "10", "--threads", "1,2,4"]);
        assert_eq!(a.f64("scale", 1.0), 0.5);
        assert_eq!(a.usize("iters", 3), 10);
        assert_eq!(a.usize_list("threads", vec![]), vec![1, 2, 4]);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args(&[]);
        assert_eq!(a.f64("scale", 0.25), 0.25);
        assert_eq!(a.string("matcher", "exact"), "exact");
        assert_eq!(a.u64("seed", 7), 7);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        let _ = args(&["--scale"]);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn positional_rejected() {
        let _ = args(&["positional"]);
    }

    #[test]
    fn bool_flags_parse() {
        let a = args(&["--warm-start", "true", "--other", "no"]);
        assert!(a.bool("warm-start", false));
        assert!(!a.bool("other", true));
        assert!(a.bool("missing", true));
    }

    #[test]
    #[should_panic(expected = "must be true or false")]
    fn bad_bool_panics() {
        let a = args(&["--warm-start", "maybe"]);
        let _ = a.bool("warm-start", false);
    }

    #[test]
    fn rounding_flags_default_is_legacy_cold() {
        let rf = rounding_flags(&args(&[]));
        assert_eq!(rf.matcher, MatcherKind::ParallelLocalDominant);
        assert_eq!(rf.rounding, None);
        assert!(!rf.warm_start);
    }

    #[test]
    fn rounding_flags_select_engines() {
        let rf = rounding_flags(&args(&["--matcher", "suitor", "--warm-start", "true"]));
        assert_eq!(rf.matcher, MatcherKind::ParallelSuitor);
        assert_eq!(rf.rounding, Some(RoundingMatcher::Suitor));
        assert!(rf.warm_start);

        // --warm-start alone defaults the engine to ld.
        let rf = rounding_flags(&args(&["--warm-start", "true"]));
        assert_eq!(rf.matcher, MatcherKind::ParallelLocalDominant);
        assert_eq!(rf.rounding, Some(RoundingMatcher::Ld));
        assert!(rf.warm_start);
    }
}
