//! Thread-pool control for the strong-scaling experiments.
//!
//! The paper sweeps OpenMP thread counts on an 80-hardware-thread
//! machine; we sweep dedicated rayon pools. Each measurement runs
//! inside `ThreadPool::install`, so every `par_iter` in the aligners
//! and the parallel matcher uses exactly `t` worker threads.

/// Number of hardware threads rayon would use by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` on a dedicated rayon pool with `threads` workers.
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Stand-in scale for the criterion benches: `NETALIGN_BENCH_SCALE`,
/// default 0.01 (CI's bench-smoke job shrinks it further).
pub fn bench_scale() -> f64 {
    std::env::var("NETALIGN_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// Pool sizes the criterion benches sweep: `NETALIGN_BENCH_POOLS` as a
/// comma-separated list, default `1,4`.
pub fn bench_pools() -> Vec<usize> {
    std::env::var("NETALIGN_BENCH_POOLS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

/// The default strong-scaling sweep: powers of two up to the hardware
/// thread count, always including 1 and the maximum.
pub fn thread_sweep() -> Vec<usize> {
    let max = available_threads();
    let mut v = vec![1usize];
    let mut t = 2;
    while t < max {
        v.push(t);
        t *= 2;
    }
    if max > 1 {
        v.push(max);
    }
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_really_limits_threads() {
        let seen = run_with_threads(2, || {
            (0..1000usize)
                .into_par_iter()
                .map(|_| rayon::current_num_threads())
                .max()
                .unwrap()
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn sweep_is_sorted_and_bounded() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), available_threads());
    }

    #[test]
    fn results_are_identical_across_pool_sizes() {
        // determinism guard: a parallel sum ordered reduction
        let sum1 = run_with_threads(1, || (0..100u64).into_par_iter().sum::<u64>());
        let sum4 = run_with_threads(4, || (0..100u64).into_par_iter().sum::<u64>());
        assert_eq!(sum1, sum4);
    }
}
