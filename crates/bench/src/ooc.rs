//! Shared `--mmap` / `--max-resident-mb` handling for the experiment
//! binaries.
//!
//! With `--mmap DIR`, a figure binary streams the squares matrix to
//! `DIR/s.nacs` (spill-bounded build) and reopens it memory-mapped
//! instead of materializing it in core; the engines run unchanged on
//! the mapped view and stay bit-identical. `--max-resident-mb N`
//! additionally derives the build's spill buffer from a resident
//! budget and refuses infeasible budgets up front with exit code 6
//! (the workspace's memory-budget code). I/O failures exit 3.

use crate::cli::Args;
use netalign_core::exitcode;
use netalign_core::oocore::{plan_for, OocError, OocOptions};
use netalign_core::problem::NetAlignProblem;
use netalign_core::squares::SquaresMatrix;
use netalign_data::standins::StandIn;
use std::path::PathBuf;

/// Build the stand-in problem under the shared out-of-core flags:
/// in-core without `--mmap`, streamed + memory-mapped with it.
pub fn standin_problem_or_exit(
    args: &Args,
    standin: StandIn,
    scale: f64,
    seed: u64,
) -> NetAlignProblem {
    let dir = args.string("mmap", "");
    let budget_mb = args.opt_u64("max-resident-mb");
    if dir.is_empty() {
        if budget_mb.is_some() {
            eprintln!("--max-resident-mb requires --mmap DIR");
            std::process::exit(exitcode::USAGE);
        }
        return standin.generate(scale, seed).problem;
    }
    let graphs = standin.generate_graphs(scale, seed);
    let dir = PathBuf::from(dir);
    let mut opts = OocOptions::new(&dir);
    if let Some(mb) = budget_mb {
        opts = opts.with_budget_mb(mb);
    }
    let plan = match plan_for(
        graphs.l.num_edges(),
        graphs.l.num_left(),
        graphs.l.num_right(),
        &opts,
    ) {
        Ok(p) => p,
        Err(OocError::BudgetTooSmall { baseline_bytes, .. }) => {
            eprintln!(
                "--max-resident-mb {} is below the out-of-core baseline ({} MiB needed)",
                budget_mb.unwrap_or(0),
                baseline_bytes.div_ceil(1 << 20)
            );
            std::process::exit(exitcode::BUDGET);
        }
        Err(e) => {
            eprintln!("out-of-core planning failed: {e}");
            std::process::exit(exitcode::INTERNAL);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create --mmap dir {}: {e}", dir.display());
        std::process::exit(exitcode::IO);
    }
    eprintln!(
        "--mmap: streaming S to {} (spill buffer {} MiB)",
        dir.join("s.nacs").display(),
        plan.spill_buffer_bytes >> 20
    );
    let s = match SquaresMatrix::build_streaming(
        &graphs.a,
        &graphs.b,
        &graphs.l,
        &dir.join("s.nacs"),
        plan.spill_buffer_bytes,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "streaming squares build failed under {}: {e}",
                dir.display()
            );
            std::process::exit(exitcode::IO);
        }
    };
    NetAlignProblem::from_parts(graphs.a, graphs.b, graphs.l, s)
}
