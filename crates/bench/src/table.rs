//! Plain-text aligned table printing for experiment output.

/// A simple column-aligned table accumulated row by row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{:.*}", prec, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 3), "2.000");
    }
}
