//! Cooperative cancellation for deadline-aware runs.
//!
//! A [`CancelToken`] is a cheaply clonable handle to shared run state:
//! a cancellation flag, an optional wall-clock deadline, and a
//! *heartbeat* counter bumped at every unit of forward progress (one
//! chunk claim inside a parallel region, one aligner iteration). The
//! token never preempts anything — cancellation is observed at
//! cooperative checkpoints:
//!
//! * the vendored runtime probes the **current** token once per chunk
//!   claim (via [`chunk_probe`], installed as a plain `fn` pointer by
//!   `netalign-core`), so a parallel region stops within one chunk of
//!   work and unwinds with the runtime's distinguished cancellation
//!   payload, leaving the persistent pool reusable;
//! * the run harness probes at iteration boundaries, where stopping is
//!   deterministic and the engine state is consistent.
//!
//! The [`Watchdog`] watches the heartbeat from a helper thread and
//! cancels the token when no progress is observed for a stall window —
//! converting a livelocked or wedged region into a clean `Cancelled`
//! outcome instead of a hang. Being heartbeat-based it is cooperative
//! too: a loop that never reaches a probe point cannot be recovered,
//! only reported.
//!
//! Tokens are installed in a **scoped registry**: [`register`] assigns
//! a fresh scope id, the harness tells the runtime that id is current
//! on its thread (`rayon::set_cancel_scope`), and the runtime carries
//! it into every parallel region published under it — helper workers
//! adopt the publisher's scope for the duration of a region. The
//! chunk-claim probe ([`chunk_probe`]) receives that scope and looks up
//! *its own run's* token, so concurrent harness runs in one process
//! never observe each other's deadlines or cancellations. (The fault
//! plan in [`crate::faults`] remains process-global; tests that inject
//! faults still serialize through [`crate::faults::test_lock`].)

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Why a token was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit request (API caller, signal handler, test).
    Manual,
    /// The wall-clock deadline passed.
    Deadline,
    /// The watchdog saw no heartbeat for a full stall window.
    Watchdog,
}

impl CancelReason {
    fn as_u8(self) -> u8 {
        match self {
            CancelReason::Manual => 1,
            CancelReason::Deadline => 2,
            CancelReason::Watchdog => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(CancelReason::Manual),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Watchdog),
            _ => None,
        }
    }

    /// Stable lower-case label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::Manual => "manual",
            CancelReason::Deadline => "deadline",
            CancelReason::Watchdog => "watchdog",
        }
    }
}

struct Inner {
    cancelled: AtomicBool,
    /// 0 = not cancelled; otherwise `CancelReason::as_u8`. First
    /// cancellation wins so the recorded reason is the one that
    /// actually stopped the run.
    reason: AtomicU8,
    deadline: Option<Instant>,
    heartbeat: AtomicU64,
}

/// Shared cancellation state for one run. Clones observe (and cancel)
/// the same run.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("reason", &self.reason())
            .field("deadline", &self.inner.deadline)
            .field("heartbeat", &self.heartbeat())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// Token with no deadline; stops only on explicit [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Token that expires `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::build(Some(Instant::now() + budget))
    }

    /// Token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    fn build(deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(0),
                deadline,
                heartbeat: AtomicU64::new(0),
            }),
        }
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` = unbounded, zero =
    /// expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Cancel the run. The first reason to arrive is the one reported.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self.inner.reason.compare_exchange(
            0,
            reason.as_u8(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has [`cancel`] been called? Does **not** check the clock — use
    /// [`should_stop`] at cooperative checkpoints.
    ///
    /// [`cancel`]: CancelToken::cancel
    /// [`should_stop`]: CancelToken::should_stop
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Why the token was cancelled, once it is.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_u8(self.inner.reason.load(Ordering::Acquire))
    }

    /// Cooperative checkpoint: true when the run must stop. Checks the
    /// flag first (one atomic load), then the deadline; an expired
    /// deadline latches the flag so every later observer agrees.
    pub fn should_stop(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.cancel(CancelReason::Deadline);
                return true;
            }
        }
        false
    }

    /// Record one unit of forward progress (chunk claim, iteration).
    pub fn tick(&self) {
        self.inner.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Current heartbeat count.
    pub fn heartbeat(&self) -> u64 {
        self.inner.heartbeat.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// The scoped token registry (runtime hook target).
// ---------------------------------------------------------------------

/// Fast gate mirroring "any token registered"; the disarmed probe cost
/// is one relaxed load, same discipline as `faults::ARMED`.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
/// Registered `(scope, token)` pairs. A linear scan: the registry holds
/// one entry per *concurrently cancellable run*, which is a handful at
/// most, and the read lock is uncontended outside register/deregister.
static SCOPES: RwLock<Vec<(u64, CancelToken)>> = RwLock::new(Vec::new());
/// Scope ids are never reused within a process; 0 means "no scope".
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

/// Register `token` under a fresh scope id. The caller is responsible
/// for making that id current on its thread for the duration of the
/// run (`rayon::set_cancel_scope`) and for [`deregister`]ing it before
/// assembling the final best-so-far result (final assembly must not be
/// cancelled mid-flight by the very deadline it is answering).
pub fn register(token: CancelToken) -> u64 {
    let scope = NEXT_SCOPE.fetch_add(1, Ordering::Relaxed);
    SCOPES
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .push((scope, token));
    ACTIVE.fetch_add(1, Ordering::Release);
    scope
}

/// Remove the token registered under `scope`. Idempotent.
pub fn deregister(scope: u64) {
    let mut guard = SCOPES.write().unwrap_or_else(|e| e.into_inner());
    if let Some(pos) = guard.iter().position(|(s, _)| *s == scope) {
        guard.swap_remove(pos);
        ACTIVE.fetch_sub(1, Ordering::Release);
    }
}

/// The token registered under `scope`, if any.
pub fn lookup(scope: u64) -> Option<CancelToken> {
    if scope == 0 || ACTIVE.load(Ordering::Acquire) == 0 {
        return None;
    }
    SCOPES
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find(|(s, _)| *s == scope)
        .map(|(_, t)| t.clone())
}

/// Chunk-claim probe for the vendored runtime, installed by
/// `netalign-core` as a plain `fn` pointer (the trace crate stays
/// dependency-free). Receives the claiming thread's cancel scope from
/// the runtime, bumps that run's heartbeat — every chunk claim is
/// forward progress the watchdog should see — and returns whether the
/// region must cancel.
pub fn chunk_probe(scope: u64) -> bool {
    if scope == 0 || ACTIVE.load(Ordering::Acquire) == 0 {
        return false;
    }
    let guard = SCOPES.read().unwrap_or_else(|e| e.into_inner());
    match guard.iter().find(|(s, _)| *s == scope) {
        Some((_, token)) => {
            token.tick();
            token.should_stop()
        }
        None => false,
    }
}

// ---------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------

struct WatchdogShared {
    stop: Mutex<bool>,
    cond: Condvar,
}

/// Helper thread that cancels a token when its heartbeat stalls.
///
/// The thread samples the heartbeat at a fraction of the stall window;
/// if a full window passes with no change it calls
/// `token.cancel(CancelReason::Watchdog)` and exits. Dropping the
/// watchdog stops the thread promptly (condvar, not sleep).
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Watch `token`, cancelling it after `stall` with no heartbeat.
    pub fn spawn(token: CancelToken, stall: Duration) -> Self {
        let shared = Arc::new(WatchdogShared {
            stop: Mutex::new(false),
            cond: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let poll = (stall / 4).max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("netalign-watchdog".into())
            .spawn(move || {
                let mut last_beat = token.heartbeat();
                let mut last_change = Instant::now();
                let mut stopped = thread_shared.stop.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped || token.is_cancelled() {
                        return;
                    }
                    let (guard, _timeout) = thread_shared
                        .cond
                        .wait_timeout(stopped, poll)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped || token.is_cancelled() {
                        return;
                    }
                    let beat = token.heartbeat();
                    if beat != last_beat {
                        last_beat = beat;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= stall {
                        token.cancel(CancelReason::Watchdog);
                        return;
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.cond.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_latches_flag_and_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.should_stop());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Manual);
        assert!(t.is_cancelled());
        assert!(t.should_stop());
        assert_eq!(t.reason(), Some(CancelReason::Manual));
        // First reason wins.
        t.cancel(CancelReason::Deadline);
        assert_eq!(t.reason(), Some(CancelReason::Manual));
    }

    #[test]
    fn expired_budget_latches_deadline_reason() {
        let t = CancelToken::with_budget(Duration::ZERO);
        assert!(t.should_stop());
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.tick();
        c.tick();
        assert_eq!(t.heartbeat(), 2);
        t.cancel(CancelReason::Manual);
        assert!(c.is_cancelled());
    }

    #[test]
    fn scoped_probe_ticks_and_reports_its_own_run_only() {
        assert!(!chunk_probe(0), "scope 0 is never cancellable");
        let t = CancelToken::new();
        let scope = register(t.clone());
        assert!(!chunk_probe(scope));
        assert_eq!(t.heartbeat(), 1, "probe must tick the heartbeat");
        assert!(
            !chunk_probe(scope + 1_000_000),
            "an unregistered scope must not observe this token"
        );
        assert_eq!(t.heartbeat(), 1);
        t.cancel(CancelReason::Manual);
        assert!(chunk_probe(scope));
        deregister(scope);
        assert!(!chunk_probe(scope));
        assert!(lookup(scope).is_none());
    }

    #[test]
    fn concurrent_scopes_are_independent() {
        let t1 = CancelToken::new();
        let t2 = CancelToken::new();
        let s1 = register(t1.clone());
        let s2 = register(t2.clone());
        t1.cancel(CancelReason::Deadline);
        assert!(chunk_probe(s1), "cancelled run must stop");
        assert!(!chunk_probe(s2), "sibling run must keep going");
        assert_eq!(t2.reason(), None);
        deregister(s1);
        deregister(s2);
        // Deregistering twice is harmless.
        deregister(s1);
    }

    #[test]
    fn watchdog_cancels_a_stalled_token() {
        let t = CancelToken::new();
        let _dog = Watchdog::spawn(t.clone(), Duration::from_millis(20));
        // No heartbeat: the watchdog must fire.
        let start = Instant::now();
        while !t.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(t.is_cancelled(), "watchdog never fired");
        assert_eq!(t.reason(), Some(CancelReason::Watchdog));
    }

    #[test]
    fn watchdog_spares_a_beating_token() {
        let t = CancelToken::new();
        {
            let _dog = Watchdog::spawn(t.clone(), Duration::from_millis(40));
            for _ in 0..20 {
                t.tick();
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(!t.is_cancelled(), "watchdog fired despite heartbeats");
        }
        // Dropping the watchdog stops it; the token stays clean.
        assert!(!t.is_cancelled());
    }
}
