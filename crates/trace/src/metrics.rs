//! Service-side metrics primitives: lock-free counters and a
//! log-bucketed latency histogram, both exportable as [`Json`] for a
//! `/metrics`-style endpoint.
//!
//! The histogram is fixed-size and allocation-free after construction:
//! bucket `i` counts observations in `[2^i, 2^{i+1})` microseconds
//! (bucket 0 absorbs sub-microsecond samples), which covers sub-µs to
//! ~12 days in 40 buckets with ≤ 2× relative quantile error — plenty
//! for tail-latency gating while staying cheap enough to record on
//! every request from many threads concurrently.

use crate::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (`2^39` µs ≈ 6.4 days).
pub const LATENCY_BUCKETS: usize = 40;

/// A concurrent log₂-bucketed latency histogram.
///
/// `record` is wait-free (one fetch-add per counter); `quantile` and
/// [`to_json`](Self::to_json) read a relaxed snapshot, which is exact
/// once recording has quiesced and approximate (never panicking) while
/// it has not.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < 2 {
            0
        } else {
            ((63 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Upper bound (µs) of bucket `i` — the value quantiles report.
    fn bucket_upper(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Quantile estimate in microseconds: the upper bound of the first
    /// bucket whose cumulative count reaches `q·n` (≤ 2× the true
    /// value), clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max_micros.load(Ordering::Relaxed));
            }
        }
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero (not atomic across buckets; callers
    /// quiesce recording first).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
        self.max_micros.store(0, Ordering::Relaxed);
    }

    /// Export: count, mean/max, p50/p95/p99, and the non-empty buckets
    /// as `[log2_upper_micros, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| Json::Arr(vec![Json::U64((i + 1) as u64), Json::U64(c)]))
            })
            .collect();
        Json::obj(vec![
            ("count", Json::U64(self.count())),
            ("mean_us", Json::U64(self.mean_micros())),
            ("max_us", Json::U64(self.max_micros.load(Ordering::Relaxed))),
            ("p50_us", Json::U64(self.quantile_micros(0.50))),
            ("p95_us", Json::U64(self.quantile_micros(0.95))),
            ("p99_us", Json::U64(self.quantile_micros(0.99))),
            ("log2_buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_micros(0.50);
        assert!((50..=128).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!((1000..=1024).contains(&p99), "p99 = {p99}");
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record(Duration::from_micros((t * 1000 + i) as u64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
