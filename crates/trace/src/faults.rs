//! Deterministic fault injection for the resilience test suite.
//!
//! A [`FaultPlan`] names *where* a fault fires — a step name plus a
//! 1-based iteration, an Nth chunk claim, an Nth checkpoint write —
//! never *when* in wall-clock terms, so every injected failure is
//! reproducible bit-for-bit. Plans come from two sources:
//!
//! * **Tests** call [`install`] / [`clear`] directly (and serialize
//!   themselves through [`test_lock`]: the plan is process-global and
//!   `cargo test` runs a binary's tests on parallel threads).
//! * **Processes** (CI's fault matrix, manual runs) set the
//!   `NETALIGN_FAULT_*` environment variables, parsed once on first
//!   query:
//!   - `NETALIGN_FAULT_NAN=<step>@<iter>` — poison the named step's
//!     output with a NaN at that iteration,
//!   - `NETALIGN_FAULT_PANIC=<step>@<iter>` — panic at the top of the
//!     named step at that iteration (a deterministic "kill"),
//!   - `NETALIGN_FAULT_CHUNK_PANIC=<n>` — panic inside the worker that
//!     makes the `n`-th chunk claim after arming,
//!   - `NETALIGN_FAULT_CKPT=truncate@<n>` or `corrupt@<n>` — damage the
//!     `n`-th checkpoint write,
//!   - `NETALIGN_FAULT_DEADLINE=<iter>` — treat the end of aligner
//!     iteration `iter` as an expired time budget (a deterministic
//!     deadline: the harness stops there exactly as it would on a
//!     wall-clock expiry, without any real clock in the loop),
//!   - `NETALIGN_FAULT_KILL=<point>[@<n>]` — hard-abort the process
//!     (no unwinding, no destructors — a deterministic `SIGKILL`
//!     stand-in) the `n`-th time the named serving fault point is
//!     reached (default: the first). `netalignd` probes `solve`,
//!     `journal-append`, `spill-rename`, and `reply`; distributed
//!     workers probe `dist-solve`, `dist-send`, and `dist-recv`; the
//!     chaos suites use this to crash a process at exact protocol
//!     moments,
//!   - `NETALIGN_FAULT_NET=<drop|dup|delay|torn>[@<n>]` — damage every
//!     `n`-th frame the armed process sends on a distributed-transport
//!     endpoint (default: every frame): `drop` discards it, `dup`
//!     sends it twice, `delay` stalls it, `torn` writes only a prefix
//!     and severs the connection. Counted process-wide, so a given
//!     run always tears the same frames.
//!
//! The module only *decides*; the subsystems under test do the
//! injecting: the aligner engines query [`nan_due`] / [`panic_point`],
//! the vendored runtime calls [`chunk_claim_tick`] through a hook, and
//! the checkpoint writer queries [`checkpoint_damage`]. Everything is
//! gated on one relaxed atomic ([`active`]), so a disarmed process pays
//! a single predictable branch per probe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};

/// A named step/iteration pair: "fire in step `step` at 1-based
/// aligner iteration `iteration`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepTrigger {
    /// Injection-point name (e.g. `"bp.damping"`, `"mr.daxpy"`); the
    /// engines document which names they probe.
    pub step: String,
    /// 1-based iteration at which the fault fires.
    pub iteration: u64,
}

impl StepTrigger {
    /// `step@iteration` trigger.
    pub fn new(step: impl Into<String>, iteration: u64) -> Self {
        StepTrigger {
            step: step.into(),
            iteration,
        }
    }
}

/// What to do to a checkpoint file on its way to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointDamage {
    /// Drop the second half of the serialized bytes.
    Truncate,
    /// Flip bits in the middle of the payload (checksum must catch it).
    Corrupt,
}

/// Damage the `nth_write`-th checkpoint written after arming (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointFault {
    /// The kind of damage.
    pub damage: CheckpointDamage,
    /// 1-based index of the checkpoint write to damage.
    pub nth_write: u64,
}

/// Hard-abort the process the `nth`-th time the named fault point is
/// reached (1-based, counted from plan installation). Unlike
/// [`FaultPlan::panic`] this does not unwind: [`kill_due`] callers
/// `std::process::abort()`, the closest deterministic stand-in for a
/// `SIGKILL`/OOM kill that still fires at an exact protocol moment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Fault-point name (e.g. `"solve"`, `"journal-append"`,
    /// `"spill-rename"`, `"reply"`); the daemon documents which names
    /// it probes.
    pub point: String,
    /// 1-based hit count at which the kill fires.
    pub nth: u64,
}

/// What to do to a transport frame on its way out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Discard the frame (the reliability layer must retransmit).
    Drop,
    /// Send the frame twice (the receiver must deduplicate).
    Dup,
    /// Stall the frame long enough to trip the sender's answer
    /// timeout (the retransmission path must tolerate the late copy).
    Delay,
    /// Write only a prefix of the frame and sever the connection (the
    /// peer sees a typed torn-frame error and must reconnect).
    Torn,
}

/// Damage every `every`-th frame sent on a fault-armed transport
/// endpoint (1 = every frame). Counted process-wide from plan
/// installation, so a run's fault pattern is reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFault {
    /// The kind of damage.
    pub kind: NetFaultKind,
    /// Apply to every `every`-th frame (1-based counter, ≥ 1).
    pub every: u64,
}

/// A complete fault-injection plan. Every field is independent; `None`
/// disables that fault class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Poison the named step's output with a NaN once.
    pub nan: Option<StepTrigger>,
    /// Panic at the top of the named step once (deterministic kill).
    pub panic: Option<StepTrigger>,
    /// Panic inside the worker making the Nth chunk claim (1-based,
    /// counted process-wide from the moment the plan is installed).
    pub chunk_panic: Option<u64>,
    /// Damage the Nth checkpoint write.
    pub checkpoint: Option<CheckpointFault>,
    /// Treat the end of this 1-based aligner iteration as an expired
    /// time budget (deterministic deadline, no wall clock involved).
    pub deadline: Option<u64>,
    /// Hard-abort the process at the Nth hit of a named fault point.
    pub kill: Option<KillSpec>,
    /// Damage every Nth outgoing transport frame.
    pub net: Option<NetFault>,
}

impl FaultPlan {
    /// True when no fault class is armed.
    pub fn is_empty(&self) -> bool {
        self.nan.is_none()
            && self.panic.is_none()
            && self.chunk_panic.is_none()
            && self.checkpoint.is_none()
            && self.deadline.is_none()
            && self.kill.is_none()
            && self.net.is_none()
    }
}

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

/// Fast gate: true iff a non-empty plan is installed. Probes check this
/// with one relaxed load before touching the lock.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
/// Chunk claims observed since the plan was installed.
static CHUNK_CLAIMS: AtomicU64 = AtomicU64::new(0);
/// Checkpoint writes observed since the plan was installed.
static CKPT_WRITES: AtomicU64 = AtomicU64::new(0);
/// Kill-point hits observed since the plan was installed.
static KILL_HITS: AtomicU64 = AtomicU64::new(0);
/// Transport frames sent since the plan was installed.
static NET_SENDS: AtomicU64 = AtomicU64::new(0);
static ENV_LOADED: OnceLock<()> = OnceLock::new();
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests that install fault plans: the plan is process-wide
/// global state and `cargo test` runs one binary's tests on parallel
/// threads. Recovers the guard if a previous holder panicked (panicking
/// while holding the lock is routine for fault tests).
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install a plan (resets trigger counters, arms the fast gate).
pub fn install(plan: FaultPlan) {
    let armed = !plan.is_empty();
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    CHUNK_CLAIMS.store(0, Ordering::Relaxed);
    CKPT_WRITES.store(0, Ordering::Relaxed);
    KILL_HITS.store(0, Ordering::Relaxed);
    NET_SENDS.store(0, Ordering::Relaxed);
    ARMED.store(armed, Ordering::Release);
}

/// Remove any installed plan and disarm every probe.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
    CHUNK_CLAIMS.store(0, Ordering::Relaxed);
    CKPT_WRITES.store(0, Ordering::Relaxed);
    KILL_HITS.store(0, Ordering::Relaxed);
    NET_SENDS.store(0, Ordering::Relaxed);
}

/// Parse the `NETALIGN_FAULT_*` environment variables once and install
/// the resulting plan if any variable is set. Called implicitly by the
/// probes; safe (and cheap) to call repeatedly. A plan already
/// installed via [`install`] is never overwritten.
pub fn load_env() {
    ENV_LOADED.get_or_init(|| {
        let plan = plan_from_env();
        if !plan.is_empty() && PLAN.read().unwrap_or_else(|e| e.into_inner()).is_none() {
            install(plan);
        }
    });
}

fn plan_from_env() -> FaultPlan {
    plan_from_lookup(&|key| std::env::var(key).ok())
}

/// Parse a plan from explicit `(variable, value)` pairs — the same
/// grammar as the `NETALIGN_FAULT_*` environment variables, exposed so
/// tests can exercise the parser without mutating the process
/// environment (which is read only once).
pub fn plan_from_env_pairs(pairs: &[(&str, &str)]) -> FaultPlan {
    plan_from_lookup(&|key| {
        pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| (*v).to_string())
    })
}

fn plan_from_lookup(get: &dyn Fn(&str) -> Option<String>) -> FaultPlan {
    FaultPlan {
        nan: get("NETALIGN_FAULT_NAN").and_then(|v| parse_step_trigger(&v)),
        panic: get("NETALIGN_FAULT_PANIC").and_then(|v| parse_step_trigger(&v)),
        chunk_panic: get("NETALIGN_FAULT_CHUNK_PANIC").and_then(|v| v.trim().parse().ok()),
        checkpoint: get("NETALIGN_FAULT_CKPT").and_then(|v| parse_checkpoint_fault(&v)),
        deadline: get("NETALIGN_FAULT_DEADLINE").and_then(|v| v.trim().parse().ok()),
        kill: get("NETALIGN_FAULT_KILL").and_then(|v| parse_kill_spec(&v)),
        net: get("NETALIGN_FAULT_NET").and_then(|v| parse_net_fault(&v)),
    }
}

/// Parse the `NETALIGN_FAULT_NET` grammar (`drop|dup|delay|torn[@n]`).
/// Public so transport layers can interpret the variable themselves
/// without installing a process-global plan.
pub fn parse_net_fault(text: &str) -> Option<NetFault> {
    let (kind, every) = match text.split_once('@') {
        Some((kind, n)) => (kind, n.trim().parse().ok()?),
        None => (text, 1),
    };
    let kind = match kind.trim() {
        "drop" => NetFaultKind::Drop,
        "dup" => NetFaultKind::Dup,
        "delay" => NetFaultKind::Delay,
        "torn" => NetFaultKind::Torn,
        _ => return None,
    };
    if every == 0 {
        return None;
    }
    Some(NetFault { kind, every })
}

fn parse_kill_spec(text: &str) -> Option<KillSpec> {
    let (point, nth) = match text.split_once('@') {
        Some((point, nth)) => (point, nth.trim().parse().ok()?),
        None => (text, 1),
    };
    let point = point.trim();
    if point.is_empty() || nth == 0 {
        return None;
    }
    Some(KillSpec {
        point: point.to_string(),
        nth,
    })
}

fn parse_step_trigger(text: &str) -> Option<StepTrigger> {
    let (step, iter) = text.split_once('@')?;
    let iteration = iter.trim().parse().ok()?;
    if step.is_empty() {
        return None;
    }
    Some(StepTrigger::new(step.trim(), iteration))
}

fn parse_checkpoint_fault(text: &str) -> Option<CheckpointFault> {
    let (kind, nth) = text.split_once('@')?;
    let damage = match kind.trim() {
        "truncate" => CheckpointDamage::Truncate,
        "corrupt" => CheckpointDamage::Corrupt,
        _ => return None,
    };
    let nth_write = nth.trim().parse().ok()?;
    Some(CheckpointFault { damage, nth_write })
}

/// True when a non-empty plan is armed (also triggers the one-time env
/// parse, so call sites need no separate init).
#[inline]
pub fn active() -> bool {
    load_env();
    ARMED.load(Ordering::Acquire)
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> T) -> Option<T> {
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(f)
}

// ---------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------

/// Should the caller poison the named step's output at this iteration?
#[inline]
pub fn nan_due(step: &str, iteration: u64) -> bool {
    if !active() {
        return false;
    }
    with_plan(|p| {
        p.nan
            .as_ref()
            .is_some_and(|t| t.step == step && t.iteration == iteration)
    })
    .unwrap_or(false)
}

/// Panic (the deterministic "kill") if the plan targets this
/// step/iteration. Called at the top of the engines' `step()`.
#[inline]
pub fn panic_point(step: &str, iteration: u64) {
    if !active() {
        return;
    }
    let due = with_plan(|p| {
        p.panic
            .as_ref()
            .is_some_and(|t| t.step == step && t.iteration == iteration)
    })
    .unwrap_or(false);
    if due {
        panic!("injected fault: kill in {step} at iteration {iteration}");
    }
}

/// Chunk-claim hook for the vendored runtime: counts claims and panics
/// on the Nth one. Installed into the pool (as a plain `fn` pointer) by
/// `netalign-core`; the disarmed cost is one relaxed load.
pub fn chunk_claim_tick() {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let target = with_plan(|p| p.chunk_panic).flatten();
    if let Some(n) = target {
        let claim = CHUNK_CLAIMS.fetch_add(1, Ordering::Relaxed) + 1;
        if claim == n {
            panic!("injected fault: worker panic on chunk claim {n}");
        }
    }
}

/// Counts a checkpoint write; returns the damage to apply to this one,
/// if the plan targets it.
pub fn checkpoint_damage() -> Option<CheckpointDamage> {
    if !active() {
        return None;
    }
    let fault = with_plan(|p| p.checkpoint).flatten()?;
    let write = CKPT_WRITES.fetch_add(1, Ordering::Relaxed) + 1;
    (write == fault.nth_write).then_some(fault.damage)
}

/// The injected deadline iteration, if the plan carries one. The
/// harness compares it against the just-finished 1-based iteration and
/// stops exactly as if the wall-clock budget had expired there.
#[inline]
pub fn deadline_iteration() -> Option<u64> {
    if !active() {
        return None;
    }
    with_plan(|p| p.deadline).flatten()
}

/// Should the caller hard-abort at this named fault point? Counts a
/// hit whenever the armed plan's kill targets `point`, and returns
/// `true` exactly on the Nth hit. Callers are expected to
/// `std::process::abort()` when this returns `true` — the probe only
/// *decides*, keeping the decision testable without dying.
#[inline]
pub fn kill_due(point: &str) -> bool {
    if !active() {
        return false;
    }
    let nth = with_plan(|p| {
        p.kill
            .as_ref()
            .and_then(|k| (k.point == point).then_some(k.nth))
    })
    .flatten();
    match nth {
        Some(n) => KILL_HITS.fetch_add(1, Ordering::Relaxed) + 1 == n,
        None => false,
    }
}

/// Counts one outgoing transport frame; returns the damage to apply
/// to it, if the armed plan's net fault targets this send (every
/// `every`-th frame since installation).
#[inline]
pub fn net_fault_tick() -> Option<NetFaultKind> {
    if !active() {
        return None;
    }
    let fault = with_plan(|p| p.net).flatten()?;
    let sent = NET_SENDS.fetch_add(1, Ordering::Relaxed) + 1;
    sent.is_multiple_of(fault.every).then_some(fault.kind)
}

/// Apply [`CheckpointDamage`] to a serialized checkpoint buffer.
pub fn damage_bytes(bytes: &mut Vec<u8>, damage: CheckpointDamage) {
    match damage {
        CheckpointDamage::Truncate => {
            let keep = bytes.len() / 2;
            bytes.truncate(keep);
        }
        CheckpointDamage::Corrupt => {
            let mid = bytes.len() / 2;
            for b in bytes.iter_mut().skip(mid).take(8) {
                *b ^= 0xA5;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_env_grammar() {
        assert_eq!(
            parse_step_trigger("bp.damping@7"),
            Some(StepTrigger::new("bp.damping", 7))
        );
        assert_eq!(parse_step_trigger("@7"), None);
        assert_eq!(parse_step_trigger("bp.damping"), None);
        assert_eq!(parse_step_trigger("bp.damping@x"), None);
        assert_eq!(
            parse_checkpoint_fault("truncate@2"),
            Some(CheckpointFault {
                damage: CheckpointDamage::Truncate,
                nth_write: 2
            })
        );
        assert_eq!(
            parse_checkpoint_fault("corrupt@1"),
            Some(CheckpointFault {
                damage: CheckpointDamage::Corrupt,
                nth_write: 1
            })
        );
        assert_eq!(parse_checkpoint_fault("shred@1"), None);
    }

    #[test]
    fn parses_deadline_from_env_pairs() {
        let plan = plan_from_env_pairs(&[("NETALIGN_FAULT_DEADLINE", "5")]);
        assert_eq!(plan.deadline, Some(5));
        assert!(!plan.is_empty());
        let bad = plan_from_env_pairs(&[("NETALIGN_FAULT_DEADLINE", "soon")]);
        assert_eq!(bad.deadline, None);
        assert!(bad.is_empty());
    }

    #[test]
    fn deadline_probe_reports_installed_iteration() {
        let _guard = test_lock();
        assert_eq!(deadline_iteration(), None);
        install(FaultPlan {
            deadline: Some(7),
            ..Default::default()
        });
        assert_eq!(deadline_iteration(), Some(7));
        clear();
        assert_eq!(deadline_iteration(), None);
    }

    #[test]
    fn install_clear_round_trip() {
        let _guard = test_lock();
        assert!(!active());
        install(FaultPlan {
            nan: Some(StepTrigger::new("bp.damping", 3)),
            ..Default::default()
        });
        assert!(active());
        assert!(nan_due("bp.damping", 3));
        assert!(!nan_due("bp.damping", 4));
        assert!(!nan_due("mr.daxpy", 3));
        clear();
        assert!(!active());
        assert!(!nan_due("bp.damping", 3));
    }

    #[test]
    fn empty_plan_does_not_arm() {
        let _guard = test_lock();
        install(FaultPlan::default());
        assert!(!active());
        clear();
    }

    #[test]
    fn panic_point_fires_only_at_target() {
        let _guard = test_lock();
        install(FaultPlan {
            panic: Some(StepTrigger::new("mr.step", 2)),
            ..Default::default()
        });
        panic_point("mr.step", 1); // not yet
        panic_point("bp.step", 2); // wrong step
        let err = std::panic::catch_unwind(|| panic_point("mr.step", 2));
        clear();
        let payload = err.expect_err("must panic at the trigger");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "got: {msg}");
    }

    #[test]
    fn chunk_claims_count_until_target() {
        let _guard = test_lock();
        install(FaultPlan {
            chunk_panic: Some(3),
            ..Default::default()
        });
        chunk_claim_tick();
        chunk_claim_tick();
        let err = std::panic::catch_unwind(chunk_claim_tick);
        clear();
        assert!(err.is_err(), "third claim must panic");
    }

    #[test]
    fn checkpoint_damage_targets_nth_write() {
        let _guard = test_lock();
        install(FaultPlan {
            checkpoint: Some(CheckpointFault {
                damage: CheckpointDamage::Corrupt,
                nth_write: 2,
            }),
            ..Default::default()
        });
        assert_eq!(checkpoint_damage(), None);
        assert_eq!(checkpoint_damage(), Some(CheckpointDamage::Corrupt));
        assert_eq!(checkpoint_damage(), None);
        clear();
    }

    #[test]
    fn parses_kill_spec() {
        assert_eq!(
            parse_kill_spec("journal-append"),
            Some(KillSpec {
                point: "journal-append".to_string(),
                nth: 1
            })
        );
        assert_eq!(
            parse_kill_spec("solve@3"),
            Some(KillSpec {
                point: "solve".to_string(),
                nth: 3
            })
        );
        assert_eq!(parse_kill_spec(""), None);
        assert_eq!(parse_kill_spec("@2"), None);
        assert_eq!(parse_kill_spec("solve@0"), None);
        assert_eq!(parse_kill_spec("solve@x"), None);
        let plan = plan_from_env_pairs(&[("NETALIGN_FAULT_KILL", "spill-rename@2")]);
        assert_eq!(
            plan.kill,
            Some(KillSpec {
                point: "spill-rename".to_string(),
                nth: 2
            })
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn kill_due_counts_hits_on_named_point() {
        let _guard = test_lock();
        install(FaultPlan {
            kill: Some(KillSpec {
                point: "reply".to_string(),
                nth: 2,
            }),
            ..Default::default()
        });
        assert!(!kill_due("solve")); // wrong point: no hit counted
        assert!(!kill_due("reply")); // hit 1 of 2
        assert!(!kill_due("solve"));
        assert!(kill_due("reply")); // hit 2: fire
        assert!(!kill_due("reply")); // fires exactly once
        clear();
        assert!(!kill_due("reply"));
    }

    #[test]
    fn parses_net_fault_grammar() {
        assert_eq!(
            parse_net_fault("drop@3"),
            Some(NetFault {
                kind: NetFaultKind::Drop,
                every: 3
            })
        );
        assert_eq!(
            parse_net_fault("torn"),
            Some(NetFault {
                kind: NetFaultKind::Torn,
                every: 1
            })
        );
        assert_eq!(
            parse_net_fault("delay@10"),
            Some(NetFault {
                kind: NetFaultKind::Delay,
                every: 10
            })
        );
        assert_eq!(parse_net_fault("shred@2"), None);
        assert_eq!(parse_net_fault("drop@0"), None);
        assert_eq!(parse_net_fault("drop@x"), None);
        let plan = plan_from_env_pairs(&[("NETALIGN_FAULT_NET", "dup@4")]);
        assert_eq!(
            plan.net,
            Some(NetFault {
                kind: NetFaultKind::Dup,
                every: 4
            })
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn net_fault_tick_fires_on_every_nth_send() {
        let _guard = test_lock();
        install(FaultPlan {
            net: Some(NetFault {
                kind: NetFaultKind::Drop,
                every: 3,
            }),
            ..Default::default()
        });
        assert_eq!(net_fault_tick(), None);
        assert_eq!(net_fault_tick(), None);
        assert_eq!(net_fault_tick(), Some(NetFaultKind::Drop));
        assert_eq!(net_fault_tick(), None);
        assert_eq!(net_fault_tick(), None);
        assert_eq!(net_fault_tick(), Some(NetFaultKind::Drop));
        clear();
        assert_eq!(net_fault_tick(), None);
    }

    #[test]
    fn damage_bytes_truncates_and_corrupts() {
        let original: Vec<u8> = (0..64).collect();
        let mut t = original.clone();
        damage_bytes(&mut t, CheckpointDamage::Truncate);
        assert_eq!(t.len(), 32);
        let mut c = original.clone();
        damage_bytes(&mut c, CheckpointDamage::Corrupt);
        assert_eq!(c.len(), 64);
        assert_ne!(c, original);
    }
}
