//! Process-global counters for distributed execution (`netalign_core::dist`).
//!
//! The coordinator bumps these as it supervises worker processes; any
//! embedder — `netalignmc align --dist-workers`, `netalignd`'s
//! `metrics`/`health` ops, the chaos harness — reads one consistent
//! snapshot without plumbing a handle through every layer. Counters
//! are monotone over the process lifetime (like [`crate::metrics`]'s
//! primitives); per-run accounting belongs to the run's own report.

use crate::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters describing every distributed run this process
/// has coordinated.
#[derive(Debug, Default)]
pub struct DistStats {
    /// Distributed solves started.
    pub solves: AtomicU64,
    /// Worker processes respawned after a crash or a failed heartbeat.
    pub worker_restarts: AtomicU64,
    /// Reliable-RPC frames retransmitted after a timeout or a torn
    /// connection.
    pub retransmissions: AtomicU64,
    /// Times a dead worker's rows were re-partitioned onto survivors
    /// (respawn budget exhausted).
    pub repartitions: AtomicU64,
    /// Recovery rounds executed (respawn or repartition followed by a
    /// checkpoint-based resync of every worker).
    pub recoveries: AtomicU64,
}

/// One relaxed snapshot of [`DistStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistSnapshot {
    pub solves: u64,
    pub worker_restarts: u64,
    pub retransmissions: u64,
    pub repartitions: u64,
    pub recoveries: u64,
}

impl DistStats {
    /// Relaxed snapshot (exact once coordination has quiesced).
    pub fn snapshot(&self) -> DistSnapshot {
        DistSnapshot {
            solves: self.solves.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            repartitions: self.repartitions.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter (tests only; production counters are
    /// monotone).
    pub fn reset(&self) {
        self.solves.store(0, Ordering::Relaxed);
        self.worker_restarts.store(0, Ordering::Relaxed);
        self.retransmissions.store(0, Ordering::Relaxed);
        self.repartitions.store(0, Ordering::Relaxed);
        self.recoveries.store(0, Ordering::Relaxed);
    }
}

impl DistSnapshot {
    /// Export for a metrics/health endpoint.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("solves", Json::U64(self.solves)),
            ("worker_restarts", Json::U64(self.worker_restarts)),
            ("retransmissions", Json::U64(self.retransmissions)),
            ("repartitions", Json::U64(self.repartitions)),
            ("recoveries", Json::U64(self.recoveries)),
        ])
    }
}

/// The process-global instance.
pub fn global() -> &'static DistStats {
    static STATS: DistStats = DistStats {
        solves: AtomicU64::new(0),
        worker_restarts: AtomicU64::new(0),
        retransmissions: AtomicU64::new(0),
        repartitions: AtomicU64::new(0),
        recoveries: AtomicU64::new(0),
    };
    &STATS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_and_reset() {
        let stats = DistStats::default();
        stats.solves.fetch_add(2, Ordering::Relaxed);
        stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.solves, 2);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.retransmissions, 0);
        stats.reset();
        assert_eq!(stats.snapshot(), DistSnapshot::default());
    }

    #[test]
    fn json_export_names_every_counter() {
        let stats = DistStats::default();
        stats.repartitions.fetch_add(3, Ordering::Relaxed);
        let json = stats.snapshot().to_json();
        assert_eq!(json.get("repartitions").and_then(Json::as_u64), Some(3));
        for key in [
            "solves",
            "worker_restarts",
            "retransmissions",
            "repartitions",
            "recoveries",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
    }
}
