//! Observability substrate for the netalign workspace.
//!
//! Four pieces, all dependency-free:
//!
//! * [`StepTrace`] — hierarchical per-iteration, per-step wall-clock
//!   spans. Replaces the old flat `StepTimers`: every `add` feeds both
//!   the step's running total and the current iteration's row, and
//!   [`StepTrace::end_iteration`] closes a row, so a run keeps the full
//!   iteration × step breakdown the paper's Figures 6–7 are built from.
//! * [`MatcherCounters`] — lock-free event counters for the parallel
//!   locally-dominant matcher (phase-2 rounds, FindMate re-executions,
//!   compare-exchange failures, queue high-water mark). All updates are
//!   relaxed atomics behind a branch on `enabled`, so the disabled path
//!   costs one predictable branch; [`MatcherCounters::disabled`] is a
//!   shared zero-cost sink for untraced call sites.
//! * [`AlgoCounters`] + [`Json`] — aligner-level counters (messages
//!   updated, rounding batch sizes, best-iterate improvements, numeric
//!   recoveries) and a minimal JSON document tree for machine-readable
//!   run reports.
//! * [`faults`] — deterministic fault injection (NaN poisoning, worker
//!   panics, checkpoint damage) driven by test plans or the
//!   `NETALIGN_FAULT_*` environment variables; used by the tier-2
//!   resilience suite to prove every recovery path end-to-end.
//!
//! Counter updates are only issued at schedule-independent points (see
//! the matcher's round structure), so for a fixed input, configuration,
//! and thread count the snapshots are bit-for-bit reproducible — the
//! determinism tests assert on them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub mod cancel;
pub mod dist;
pub mod faults;
pub mod metrics;

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// A minimal JSON document tree; [`Json::render`] produces the text.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (exact).
    U64(u64),
    /// Signed integer (exact).
    I64(i64),
    /// Float; non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Duration as fractional seconds.
    pub fn secs(d: Duration) -> Json {
        Json::F64(d.as_secs_f64())
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (exact `U64`, a
    /// non-negative `I64`, or an integral non-negative `F64` — JSON has
    /// one number type, so consumers must not care which variant the
    /// producer chose).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with a trailing newline (for files).
    pub fn render_line(&self) -> String {
        let mut out = self.render();
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    let text = format!("{v}");
                    out.push_str(&text);
                    // `{}` on an integral f64 prints no decimal point;
                    // keep the value typed as a float for consumers.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Hierarchical step timing
// ---------------------------------------------------------------------

/// Per-iteration, per-step wall-clock spans over a fixed step set.
///
/// Step identity is an index into the `names` slice the trace was
/// built with (the aligners use their `Step` enum's index). `add`
/// accumulates into the running totals *and* the open iteration row;
/// `end_iteration` closes the row. Timing outside any iteration (e.g. a
/// final exact rounding pass) still lands in the totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepTrace {
    names: &'static [&'static str],
    totals: Vec<Duration>,
    current: Vec<Duration>,
    current_dirty: bool,
    /// Closed iteration rows, flattened with stride `names.len()`; a
    /// flat array keeps `end_iteration` allocation-free once
    /// [`StepTrace::reserve_iterations`] has sized it.
    iterations: Vec<Duration>,
    record_iterations: bool,
}

impl StepTrace {
    /// Empty trace over the given step names, keeping per-iteration
    /// rows.
    pub fn new(names: &'static [&'static str]) -> Self {
        Self::with_options(names, true)
    }

    /// Empty trace; `record_iterations = false` keeps only totals
    /// (constant memory for long runs).
    pub fn with_options(names: &'static [&'static str], record_iterations: bool) -> Self {
        StepTrace {
            names,
            totals: vec![Duration::ZERO; names.len()],
            current: vec![Duration::ZERO; names.len()],
            current_dirty: false,
            iterations: Vec::new(),
            record_iterations,
        }
    }

    /// The step names this trace is indexed by.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Add a measured span to `step`.
    pub fn add(&mut self, step: usize, d: Duration) {
        self.totals[step] += d;
        if self.record_iterations {
            self.current[step] += d;
            self.current_dirty = true;
        }
    }

    /// Pre-size the iteration-row storage for `n` iterations, making
    /// the next `n` [`StepTrace::end_iteration`] calls allocation-free
    /// (the aligners' steady-state loops rely on this).
    pub fn reserve_iterations(&mut self, n: usize) {
        if self.record_iterations {
            self.iterations.reserve(n * self.names.len());
        }
    }

    /// Close the current iteration row.
    pub fn end_iteration(&mut self) {
        if self.record_iterations {
            self.iterations.extend_from_slice(&self.current);
            self.current.fill(Duration::ZERO);
            self.current_dirty = false;
        }
    }

    /// Total time attributed to `step`.
    pub fn get(&self, step: usize) -> Duration {
        self.totals[step]
    }

    /// Sum over all steps.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Number of closed iteration rows.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len() / self.names.len()
    }

    /// Per-step durations of closed iteration `k`.
    pub fn iteration(&self, k: usize) -> &[Duration] {
        let stride = self.names.len();
        &self.iterations[k * stride..(k + 1) * stride]
    }

    /// Fold another trace over the same step set into this one:
    /// totals add element-wise, iteration rows append.
    ///
    /// # Panics
    /// Panics if the step sets differ.
    pub fn merge(&mut self, other: &StepTrace) {
        assert_eq!(
            self.names, other.names,
            "cannot merge traces over different steps"
        );
        for (t, o) in self.totals.iter_mut().zip(&other.totals) {
            *t += *o;
        }
        if self.record_iterations {
            self.iterations.extend_from_slice(&other.iterations);
        }
    }

    /// Human-readable per-step totals, widest first.
    pub fn report(&self) -> String {
        let total = self.total();
        let mut rows: Vec<(usize, Duration)> = self.totals.iter().copied().enumerate().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        let mut out = String::new();
        for (idx, d) in rows {
            if d.is_zero() {
                continue;
            }
            let pct = if total.is_zero() {
                0.0
            } else {
                100.0 * d.as_secs_f64() / total.as_secs_f64()
            };
            out.push_str(&format!(
                "{:>12}  {:>10.3} ms  {:>5.1}%\n",
                self.names[idx],
                d.as_secs_f64() * 1e3,
                pct
            ));
        }
        out.push_str(&format!(
            "{:>12}  {:>10.3} ms\n",
            "total",
            total.as_secs_f64() * 1e3
        ));
        out
    }

    /// JSON form: step names, totals (seconds), per-iteration rows.
    pub fn to_json(&self) -> Json {
        let stride = self.names.len();
        let mut pending: Vec<&[Duration]> = self.iterations.chunks(stride).collect();
        if self.current_dirty {
            pending.push(&self.current);
        }
        Json::obj(vec![
            (
                "steps",
                Json::Arr(self.names.iter().map(|n| Json::str(*n)).collect()),
            ),
            (
                "totals_s",
                Json::Arr(self.totals.iter().map(|d| Json::secs(*d)).collect()),
            ),
            ("total_s", Json::secs(self.total())),
            (
                "iterations_s",
                Json::Arr(
                    pending
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|d| Json::secs(*d)).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Matcher counters
// ---------------------------------------------------------------------

/// Lock-free event counters for the parallel matcher family.
///
/// Worker threads update through `&self` with relaxed atomics; every
/// update branches on `enabled` first, so a disabled instance (or the
/// [`MatcherCounters::disabled`] sink) adds one well-predicted branch
/// and no memory traffic to the hot paths.
#[derive(Debug)]
pub struct MatcherCounters {
    enabled: bool,
    rounds: AtomicU64,
    find_mate_initial: AtomicU64,
    find_mate_reruns: AtomicU64,
    match_attempts: AtomicU64,
    matched_pairs: AtomicU64,
    cas_failures: AtomicU64,
    queue_peak: AtomicU64,
    proposals: AtomicU64,
    displacements: AtomicU64,
    warm_hits: AtomicU64,
    reseeded_vertices: AtomicU64,
}

static DISABLED_COUNTERS: MatcherCounters = MatcherCounters::new(false);

impl MatcherCounters {
    /// Fresh zeroed counters.
    pub const fn new(enabled: bool) -> Self {
        MatcherCounters {
            enabled,
            rounds: AtomicU64::new(0),
            find_mate_initial: AtomicU64::new(0),
            find_mate_reruns: AtomicU64::new(0),
            match_attempts: AtomicU64::new(0),
            matched_pairs: AtomicU64::new(0),
            cas_failures: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            proposals: AtomicU64::new(0),
            displacements: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            reseeded_vertices: AtomicU64::new(0),
        }
    }

    /// Shared sink for untraced call sites; never records anything.
    pub fn disabled() -> &'static MatcherCounters {
        &DISABLED_COUNTERS
    }

    /// Whether updates are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// One phase-2 round executed.
    #[inline]
    pub fn incr_rounds(&self) {
        if self.enabled {
            self.rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `n` initial (phase-1) FindMate executions.
    #[inline]
    pub fn add_find_mate_initial(&self, n: u64) {
        if self.enabled {
            self.find_mate_initial.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` FindMate re-executions (phase-2 recomputations).
    #[inline]
    pub fn add_find_mate_reruns(&self, n: u64) {
        if self.enabled {
            self.find_mate_reruns.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` MatchVertex attempts (locally-dominant pair checks).
    #[inline]
    pub fn add_match_attempts(&self, n: u64) {
        if self.enabled {
            self.match_attempts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` pairs claimed into the matching.
    #[inline]
    pub fn add_matched_pairs(&self, n: u64) {
        if self.enabled {
            self.matched_pairs.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` lost compare-exchange races.
    #[inline]
    pub fn add_cas_failures(&self, n: u64) {
        if self.enabled {
            self.cas_failures.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Fold a queue occupancy observation into the high-water mark.
    #[inline]
    pub fn record_queue_len(&self, len: u64) {
        if self.enabled {
            self.queue_peak.fetch_max(len, Ordering::Relaxed);
        }
    }

    /// `n` Suitor proposals issued (slot updates attempted).
    #[inline]
    pub fn add_proposals(&self, n: u64) {
        if self.enabled {
            self.proposals.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` suitors displaced by a better proposal.
    #[inline]
    pub fn add_displacements(&self, n: u64) {
        if self.enabled {
            self.displacements.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` vertices whose previous matcher state was reused verbatim by
    /// a warm start.
    #[inline]
    pub fn add_warm_hits(&self, n: u64) {
        if self.enabled {
            self.warm_hits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// `n` vertices invalidated by a warm start and re-processed.
    #[inline]
    pub fn add_reseeded_vertices(&self, n: u64) {
        if self.enabled {
            self.reseeded_vertices.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current values as a plain struct.
    pub fn snapshot(&self) -> MatcherCounterSnapshot {
        MatcherCounterSnapshot {
            rounds: self.rounds.load(Ordering::Relaxed),
            find_mate_initial: self.find_mate_initial.load(Ordering::Relaxed),
            find_mate_reruns: self.find_mate_reruns.load(Ordering::Relaxed),
            match_attempts: self.match_attempts.load(Ordering::Relaxed),
            matched_pairs: self.matched_pairs.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            proposals: self.proposals.load(Ordering::Relaxed),
            displacements: self.displacements.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            reseeded_vertices: self.reseeded_vertices.load(Ordering::Relaxed),
        }
    }

    /// Seed the counters from a snapshot (no-op when disabled). Used
    /// by checkpoint resume so that the counters reported at the end of
    /// a resumed run equal the uninterrupted run's totals.
    pub fn preload(&self, snap: &MatcherCounterSnapshot) {
        if self.enabled {
            self.rounds.fetch_add(snap.rounds, Ordering::Relaxed);
            self.find_mate_initial
                .fetch_add(snap.find_mate_initial, Ordering::Relaxed);
            self.find_mate_reruns
                .fetch_add(snap.find_mate_reruns, Ordering::Relaxed);
            self.match_attempts
                .fetch_add(snap.match_attempts, Ordering::Relaxed);
            self.matched_pairs
                .fetch_add(snap.matched_pairs, Ordering::Relaxed);
            self.cas_failures
                .fetch_add(snap.cas_failures, Ordering::Relaxed);
            self.queue_peak
                .fetch_max(snap.queue_peak, Ordering::Relaxed);
            self.proposals.fetch_add(snap.proposals, Ordering::Relaxed);
            self.displacements
                .fetch_add(snap.displacements, Ordering::Relaxed);
            self.warm_hits.fetch_add(snap.warm_hits, Ordering::Relaxed);
            self.reseeded_vertices
                .fetch_add(snap.reseeded_vertices, Ordering::Relaxed);
        }
    }

    /// Zero every counter (the enabled flag is unchanged).
    pub fn reset(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.find_mate_initial.store(0, Ordering::Relaxed);
        self.find_mate_reruns.store(0, Ordering::Relaxed);
        self.match_attempts.store(0, Ordering::Relaxed);
        self.matched_pairs.store(0, Ordering::Relaxed);
        self.cas_failures.store(0, Ordering::Relaxed);
        self.queue_peak.store(0, Ordering::Relaxed);
        self.proposals.store(0, Ordering::Relaxed);
        self.displacements.store(0, Ordering::Relaxed);
        self.warm_hits.store(0, Ordering::Relaxed);
        self.reseeded_vertices.store(0, Ordering::Relaxed);
    }
}

/// Plain-value snapshot of [`MatcherCounters`]; comparable and
/// serializable, used by determinism tests and run reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatcherCounterSnapshot {
    /// Phase-2 rounds executed (queue generations).
    pub rounds: u64,
    /// Initial FindMate executions (phase 1).
    pub find_mate_initial: u64,
    /// FindMate re-executions (phase 2).
    pub find_mate_reruns: u64,
    /// MatchVertex attempts.
    pub match_attempts: u64,
    /// Pairs claimed into the matching.
    pub matched_pairs: u64,
    /// Lost compare-exchange races.
    pub cas_failures: u64,
    /// Queue occupancy high-water mark.
    pub queue_peak: u64,
    /// Suitor proposals issued (slot updates attempted).
    pub proposals: u64,
    /// Suitors displaced by a better proposal.
    pub displacements: u64,
    /// Vertices whose previous matcher state a warm start reused.
    pub warm_hits: u64,
    /// Vertices invalidated and re-processed by a warm start.
    pub reseeded_vertices: u64,
}

impl MatcherCounterSnapshot {
    /// True when nothing was recorded.
    pub fn is_zero(&self) -> bool {
        *self == MatcherCounterSnapshot::default()
    }

    /// Accumulate another snapshot (e.g. across aligner iterations).
    pub fn accumulate(&mut self, other: &MatcherCounterSnapshot) {
        self.rounds += other.rounds;
        self.find_mate_initial += other.find_mate_initial;
        self.find_mate_reruns += other.find_mate_reruns;
        self.match_attempts += other.match_attempts;
        self.matched_pairs += other.matched_pairs;
        self.cas_failures += other.cas_failures;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
        self.proposals += other.proposals;
        self.displacements += other.displacements;
        self.warm_hits += other.warm_hits;
        self.reseeded_vertices += other.reseeded_vertices;
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rounds", Json::U64(self.rounds)),
            ("find_mate_initial", Json::U64(self.find_mate_initial)),
            ("find_mate_reruns", Json::U64(self.find_mate_reruns)),
            ("match_attempts", Json::U64(self.match_attempts)),
            ("matched_pairs", Json::U64(self.matched_pairs)),
            ("cas_failures", Json::U64(self.cas_failures)),
            ("queue_peak", Json::U64(self.queue_peak)),
            ("proposals", Json::U64(self.proposals)),
            ("displacements", Json::U64(self.displacements)),
            ("warm_hits", Json::U64(self.warm_hits)),
            ("reseeded_vertices", Json::U64(self.reseeded_vertices)),
        ])
    }
}

// ---------------------------------------------------------------------
// Aligner counters
// ---------------------------------------------------------------------

/// Aligner-level counters (BP / MR). Updated single-threaded between
/// parallel kernels, so plain integers suffice.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlgoCounters {
    /// Message/heuristic entries written across all iterations.
    pub messages_updated: u64,
    /// Rounding passes executed (batched or not).
    pub rounding_invocations: u64,
    /// Heuristic vectors rounded per batched pass, in order.
    pub rounding_batch_sizes: Vec<u64>,
    /// Times the best iterate improved.
    pub best_improvements: u64,
    /// Times the numerical guard rolled the iterate back to the last
    /// finite state and tightened the damping/step size.
    pub numeric_recoveries: u64,
}

impl AlgoCounters {
    /// Total heuristic vectors rounded.
    pub fn vectors_rounded(&self) -> u64 {
        self.rounding_batch_sizes.iter().sum()
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("messages_updated", Json::U64(self.messages_updated)),
            ("rounding_invocations", Json::U64(self.rounding_invocations)),
            (
                "rounding_batch_sizes",
                Json::Arr(
                    self.rounding_batch_sizes
                        .iter()
                        .map(|&s| Json::U64(s))
                        .collect(),
                ),
            ),
            ("vectors_rounded", Json::U64(self.vectors_rounded())),
            ("best_improvements", Json::U64(self.best_improvements)),
            ("numeric_recoveries", Json::U64(self.numeric_recoveries)),
        ])
    }
}

// ---------------------------------------------------------------------
// Process memory
// ---------------------------------------------------------------------

/// Lifetime peak resident-set size of this process in kilobytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux; returns 0 on other
/// platforms or if the file cannot be parsed. The value is monotone over
/// the process lifetime, so callers comparing phases must sample in the
/// order they care about.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            if let Some(line) = status.lines().find(|l| l.starts_with("VmHWM:")) {
                if let Some(v) = line.split_whitespace().nth(1) {
                    return v.parse().unwrap_or(0);
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEPS: &[&str] = &["alpha", "beta"];

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_kb() > 0);
    }

    #[test]
    fn step_trace_accumulates_and_records_iterations() {
        let mut t = StepTrace::new(STEPS);
        t.add(0, Duration::from_millis(5));
        t.add(1, Duration::from_millis(3));
        t.end_iteration();
        t.add(0, Duration::from_millis(2));
        t.end_iteration();
        assert_eq!(t.get(0), Duration::from_millis(7));
        assert_eq!(t.get(1), Duration::from_millis(3));
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(t.num_iterations(), 2);
        assert_eq!(
            t.iteration(0),
            &[Duration::from_millis(5), Duration::from_millis(3)]
        );
        assert_eq!(t.iteration(1), &[Duration::from_millis(2), Duration::ZERO]);
    }

    #[test]
    fn step_trace_without_iterations_keeps_totals_only() {
        let mut t = StepTrace::with_options(STEPS, false);
        t.add(0, Duration::from_millis(1));
        t.end_iteration();
        t.add(0, Duration::from_millis(1));
        assert_eq!(t.num_iterations(), 0);
        assert_eq!(t.get(0), Duration::from_millis(2));
    }

    #[test]
    fn step_trace_merge_adds_totals() {
        let mut a = StepTrace::new(STEPS);
        let mut b = StepTrace::new(STEPS);
        a.add(0, Duration::from_millis(1));
        b.add(0, Duration::from_millis(2));
        b.end_iteration();
        a.merge(&b);
        assert_eq!(a.get(0), Duration::from_millis(3));
        assert_eq!(a.num_iterations(), 1);
    }

    #[test]
    fn disabled_counters_record_nothing() {
        let c = MatcherCounters::disabled();
        c.incr_rounds();
        c.add_find_mate_reruns(5);
        c.add_cas_failures(2);
        c.record_queue_len(100);
        assert!(c.snapshot().is_zero());
        assert!(!c.is_enabled());
    }

    #[test]
    fn enabled_counters_record_and_reset() {
        let c = MatcherCounters::new(true);
        c.incr_rounds();
        c.incr_rounds();
        c.add_find_mate_initial(7);
        c.add_match_attempts(4);
        c.add_matched_pairs(3);
        c.add_cas_failures(1);
        c.record_queue_len(10);
        c.record_queue_len(4);
        let s = c.snapshot();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.find_mate_initial, 7);
        assert_eq!(s.match_attempts, 4);
        assert_eq!(s.matched_pairs, 3);
        assert_eq!(s.cas_failures, 1);
        assert_eq!(s.queue_peak, 10);
        c.reset();
        assert!(c.snapshot().is_zero());
        assert!(c.is_enabled());
    }

    #[test]
    fn snapshot_accumulate_sums_and_maxes() {
        let mut a = MatcherCounterSnapshot {
            rounds: 1,
            queue_peak: 5,
            ..Default::default()
        };
        let b = MatcherCounterSnapshot {
            rounds: 2,
            queue_peak: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.queue_peak, 5);
    }

    #[test]
    fn json_renders_expected_text() {
        let j = Json::obj(vec![
            ("a", Json::U64(3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::str("x\"y")),
            ("d", Json::F64(1.5)),
            ("e", Json::F64(2.0)),
        ]);
        assert_eq!(
            j.render(),
            r#"{"a":3,"b":[true,null],"c":"x\"y","d":1.5,"e":2.0}"#
        );
    }

    #[test]
    fn json_non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn algo_counters_sum_batches() {
        let c = AlgoCounters {
            rounding_batch_sizes: vec![4, 4, 2],
            rounding_invocations: 3,
            ..Default::default()
        };
        assert_eq!(c.vectors_rounded(), 10);
        assert!(c.to_json().render().contains("\"vectors_rounded\":10"));
    }
}
