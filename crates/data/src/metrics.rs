//! Recovery metrics against a planted correspondence, as used by the
//! paper's Figure 2 (fraction of the reference objective, fraction of
//! correct matches).

use netalign_core::objective::{evaluate_matching, ObjectiveValue};
use netalign_core::NetAlignProblem;
use netalign_matching::Matching;

/// Fraction of planted pairs that a matching recovers
/// (`|{a : m(a) = planted(a)}| / |{a : planted(a) exists}|`).
pub fn fraction_correct(m: &Matching, planted: &[Option<u32>]) -> f64 {
    let total = planted.iter().filter(|p| p.is_some()).count();
    if total == 0 {
        return 0.0;
    }
    let correct = planted
        .iter()
        .enumerate()
        .filter(|&(a, &p)| p.is_some() && m.mate_of_left(a as u32) == p)
        .count();
    correct as f64 / total as f64
}

/// Objective value of the planted correspondence itself (the paper's
/// "identity alignment" reference). Planted pairs missing from `L` are
/// skipped — they cannot be part of any matching.
pub fn reference_objective(
    p: &NetAlignProblem,
    planted: &[Option<u32>],
    alpha: f64,
    beta: f64,
) -> ObjectiveValue {
    let mut m = Matching::empty(p.l.num_left(), p.l.num_right());
    let mut used_right = vec![false; p.l.num_right()];
    for (a, &pb) in planted.iter().enumerate() {
        if let Some(b) = pb {
            if p.l.has_edge(a as u32, b) && !used_right[b as usize] {
                m.add_pair(a as u32, b);
                used_right[b as usize] = true;
            }
        }
    }
    evaluate_matching(p, &m, alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netalign_graph::{BipartiteGraph, Graph};

    fn problem() -> NetAlignProblem {
        let a = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let l = BipartiteGraph::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 1, 1.0)],
        );
        NetAlignProblem::new(a, b, l)
    }

    #[test]
    fn fraction_correct_counts_planted_hits() {
        let planted = vec![Some(0), Some(1), Some(2)];
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 0);
        m.add_pair(1, 1);
        assert_eq!(fraction_correct(&m, &planted), 2.0 / 3.0);
        m.add_pair(2, 2);
        assert_eq!(fraction_correct(&m, &planted), 1.0);
    }

    #[test]
    fn wrong_matches_do_not_count() {
        let planted = vec![Some(0), Some(1), Some(2)];
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 1); // wrong
        assert_eq!(fraction_correct(&m, &planted), 0.0);
    }

    #[test]
    fn unplanted_vertices_are_ignored() {
        let planted = vec![Some(0), None, None];
        let mut m = Matching::empty(3, 3);
        m.add_pair(0, 0);
        m.add_pair(1, 2); // irrelevant
        assert_eq!(fraction_correct(&m, &planted), 1.0);
    }

    #[test]
    fn reference_objective_of_identity() {
        let p = problem();
        let planted = vec![Some(0), Some(1), Some(2)];
        let v = reference_objective(&p, &planted, 1.0, 2.0);
        assert_eq!(v.weight, 3.0);
        assert_eq!(v.overlap, 2.0);
        assert_eq!(v.total, 7.0);
    }

    #[test]
    fn reference_objective_skips_missing_l_edges() {
        let p = problem();
        // planted pair (1, 0) is not an edge of L
        let planted = vec![Some(0), Some(0), Some(2)];
        let v = reference_objective(&p, &planted, 1.0, 1.0);
        // only (0,0) and (2,2) realized, no overlap between them
        assert_eq!(v.weight, 2.0);
        assert_eq!(v.overlap, 0.0);
    }
}
