//! Seeded synthetic problem instances for the SC'12 reproduction.
//!
//! Two families:
//!
//! * [`synthetic`] — the paper's §VI.A power-law quality benchmark: a
//!   400-node power-law base graph, perturbed copies `A` and `B`, and a
//!   candidate graph `L` built from the identity correspondence plus
//!   random noise with expected degree `d̄`. Used by Figure 2.
//! * [`standins`] — seeded stand-ins for the four real datasets of
//!   Table II (`dmela-scere`, `homo-musm`, `lcsh-wiki`, `lcsh-rameau`),
//!   which are not redistributable. Each stand-in plants a hidden
//!   correspondence between two correlated power-law graphs and builds
//!   a similarity-style `L`, matching the published shape statistics
//!   (sizes scale linearly with a `scale` parameter so the large
//!   ontology instances stay runnable in CI).
//!
//! Both expose the planted ground truth so experiments can report
//! recovery metrics (fraction of correct matches, fraction of the
//! reference objective) exactly like the paper does.

pub mod metrics;
pub mod standins;
pub mod synthetic;

pub use metrics::{fraction_correct, reference_objective};
pub use standins::{StandIn, StandInGraphs, StandInSpec};
pub use synthetic::{erdos_renyi_alignment, power_law_alignment, PowerLawParams};
