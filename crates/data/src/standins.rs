//! Seeded stand-ins for the four real datasets of the paper's Table II.
//!
//! The originals (protein interaction networks from Singh et al. and
//! Klau; Library-of-Congress/Wikipedia/Rameau ontologies) are not
//! redistributable, so each stand-in builds a problem with the same
//! *shape*: two power-law graphs correlated through a hidden planted
//! correspondence, and a similarity-style candidate graph `L` whose
//! degree distribution is fairly regular while the non-zero
//! distribution of `S` is highly skewed — the two structural properties
//! the paper calls out (§VI).
//!
//! Construction, given target sizes `(|V_A|, |V_B|, |E_A|, |E_B|,
//! |E_L|)`:
//!
//! 1. `A` = power-law graph with ≈`|E_A|` edges;
//! 2. plant a random injective map `σ` from `min(|V_A|, |V_B|)`
//!    vertices of `A` into `V_B`;
//! 3. `B` = image of `A`'s edges under `σ`, each kept with probability
//!    `edge_retention`, plus random edges up to ≈`|E_B|`;
//! 4. `L` = planted pairs `(i, σ(i))` (each kept with probability
//!    `l_coverage`, weight `1 + U(0,1)`) plus uniform noise pairs up to
//!    ≈`|E_L|` (weight `U(0,1)`).
//!
//! All sizes scale linearly with the `scale` argument so the ontology
//! instances (multi-million-edge `L`) stay runnable on small machines;
//! pass `scale = 1.0` for the published sizes.

use crate::synthetic::SyntheticInstance;
use netalign_core::NetAlignProblem;
use netalign_graph::bipartite::BipartiteGraphBuilder;
use netalign_graph::generators::power_law_degree_sequence;
use netalign_graph::undirected::GraphBuilder;
use netalign_graph::{BipartiteGraph, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which Table II dataset a spec mimics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandIn {
    /// Fly–yeast protein interaction alignment (Singh et al.).
    DmelaScere,
    /// Human–mouse protein interaction alignment (Klau).
    HomoMusm,
    /// Library of Congress subject headings vs Wikipedia categories.
    LcshWiki,
    /// Library of Congress subject headings vs Rameau.
    LcshRameau,
}

/// Size targets and generator knobs of one stand-in.
#[derive(Clone, Copy, Debug)]
pub struct StandInSpec {
    /// Dataset name as printed in tables.
    pub name: &'static str,
    /// Target `|V_A|` at scale 1.
    pub va: usize,
    /// Target `|V_B|` at scale 1.
    pub vb: usize,
    /// Target `|E_A|` at scale 1.
    pub ea: usize,
    /// Target `|E_B|` at scale 1.
    pub eb: usize,
    /// Target `|E_L|` at scale 1.
    pub el: usize,
    /// Published `nnz(S)` at scale 1 (reported, not directly enforced).
    pub nnz_s_published: usize,
    /// Power-law exponent for `A`'s degrees.
    pub exponent: f64,
    /// Probability a projected edge of `A` survives into `B`.
    pub edge_retention: f64,
    /// Probability a planted pair appears in `L`.
    pub l_coverage: f64,
}

impl StandIn {
    /// The published Table II statistics and tuned generator knobs.
    pub fn spec(&self) -> StandInSpec {
        match self {
            // |E_A|/|E_B| for the PPI networks follow the published
            // sizes of the underlying data (≈26k fly, ≈32k yeast
            // interactions; ≈37k human, ≈21k mouse); the ontology edge
            // counts approximate the LCSH/Wikipedia/Rameau hierarchies.
            StandIn::DmelaScere => StandInSpec {
                name: "dmela-scere",
                va: 9459,
                vb: 5696,
                ea: 25636,
                eb: 31261,
                el: 34582,
                nnz_s_published: 6860,
                exponent: 2.2,
                edge_retention: 0.5,
                l_coverage: 0.55,
            },
            StandIn::HomoMusm => StandInSpec {
                name: "homo-musm",
                va: 3247,
                vb: 9695,
                ea: 12159,
                eb: 27848,
                el: 15810,
                nnz_s_published: 12180,
                exponent: 2.1,
                edge_retention: 0.6,
                l_coverage: 0.75,
            },
            StandIn::LcshWiki => StandInSpec {
                name: "lcsh-wiki",
                va: 297266,
                vb: 205948,
                ea: 425322,
                eb: 610271,
                el: 4971629,
                nnz_s_published: 1785310,
                exponent: 2.0,
                edge_retention: 0.6,
                l_coverage: 0.8,
            },
            StandIn::LcshRameau => StandInSpec {
                name: "lcsh-rameau",
                va: 154974,
                vb: 342684,
                ea: 342101,
                eb: 721217,
                el: 20883500,
                nnz_s_published: 4929272,
                exponent: 2.0,
                edge_retention: 0.6,
                l_coverage: 0.8,
            },
        }
    }

    /// All four stand-ins, in Table II order.
    pub const ALL: [StandIn; 4] = [
        StandIn::DmelaScere,
        StandIn::HomoMusm,
        StandIn::LcshWiki,
        StandIn::LcshRameau,
    ];

    /// Generate the instance at the given scale (`1.0` = published
    /// size) and seed.
    pub fn generate(&self, scale: f64, seed: u64) -> SyntheticInstance {
        generate_standin(&self.spec(), scale, seed)
    }

    /// Generate only the raw graphs (and planted map) at the given
    /// scale and seed, without building the squares matrix. This is
    /// the entry point for out-of-core runs, which stream `S` to disk
    /// instead of materializing it in memory; the graphs are
    /// bit-identical to the ones inside [`StandIn::generate`] for the
    /// same arguments.
    pub fn generate_graphs(&self, scale: f64, seed: u64) -> StandInGraphs {
        generate_graphs(&self.spec(), scale, seed)
    }
}

/// The raw graphs of a stand-in instance, before any squares matrix is
/// built — what the streaming/out-of-core paths consume.
pub struct StandInGraphs {
    /// First input graph.
    pub a: Graph,
    /// Second input graph.
    pub b: Graph,
    /// Candidate bipartite graph between them.
    pub l: BipartiteGraph,
    /// Hidden planted correspondence (recovery ground truth).
    pub planted: Vec<Option<VertexId>>,
}

fn scaled(x: usize, scale: f64) -> usize {
    ((x as f64 * scale).round() as usize).max(4)
}

/// Build a power-law graph with approximately `m_target` edges by
/// scaling a sampled degree sequence.
fn power_law_with_edges(n: usize, m_target: usize, exponent: f64, seed: u64) -> Graph {
    let max_deg = (n / 8).clamp(8, 2000);
    let base = power_law_degree_sequence(n, exponent, max_deg, seed);
    let base_sum: usize = base.iter().sum();
    let want = 2 * m_target;
    let factor = want as f64 / base_sum as f64;
    let mut degs: Vec<usize> = base
        .iter()
        .map(|&d| ((d as f64 * factor).round() as usize).clamp(1, n - 1))
        .collect();
    if degs.iter().sum::<usize>() % 2 == 1 {
        degs[0] += 1;
    }
    netalign_graph::generators::graph_from_degree_sequence(&degs, seed.wrapping_add(0xA5A5))
}

fn generate_standin(spec: &StandInSpec, scale: f64, seed: u64) -> SyntheticInstance {
    let StandInGraphs { a, b, l, planted } = generate_graphs(spec, scale, seed);
    let problem = NetAlignProblem::new(a, b, l);
    SyntheticInstance { problem, planted }
}

fn generate_graphs(spec: &StandInSpec, scale: f64, seed: u64) -> StandInGraphs {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let va = scaled(spec.va, scale);
    let vb = scaled(spec.vb, scale);
    let ea = scaled(spec.ea, scale);
    let eb = scaled(spec.eb, scale);
    let el = scaled(spec.el, scale);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = power_law_with_edges(va, ea, spec.exponent, seed.wrapping_add(1));

    // Plant σ: a random injection from k vertices of A into B.
    let k = va.min(vb);
    let mut a_verts: Vec<VertexId> = (0..va as VertexId).collect();
    a_verts.shuffle(&mut rng);
    let mut b_verts: Vec<VertexId> = (0..vb as VertexId).collect();
    b_verts.shuffle(&mut rng);
    let mut planted: Vec<Option<VertexId>> = vec![None; va];
    for i in 0..k {
        planted[a_verts[i] as usize] = Some(b_verts[i]);
    }

    // B: projected edges of A (through σ) plus random fill.
    let mut bb = GraphBuilder::new(vb);
    let mut b_edges = 0usize;
    for (u, v) in a.edges() {
        if let (Some(bu), Some(bv)) = (planted[u as usize], planted[v as usize]) {
            if rng.gen_bool(spec.edge_retention) && bu != bv {
                bb.add_edge(bu, bv);
                b_edges += 1;
            }
        }
    }
    while b_edges < eb {
        let u = rng.gen_range(0..vb as VertexId);
        let v = rng.gen_range(0..vb as VertexId);
        if u != v {
            bb.add_edge(u, v);
            b_edges += 1;
        }
    }
    let b = bb.build();

    // L: planted pairs with high similarity plus uniform noise.
    let mut lb = BipartiteGraphBuilder::new(va, vb);
    let mut l_edges = 0usize;
    for (u, pb) in planted.iter().enumerate() {
        if let Some(bv) = pb {
            if rng.gen_bool(spec.l_coverage) {
                lb.add_edge(u as VertexId, *bv, 1.0 + rng.gen::<f64>());
                l_edges += 1;
            }
        }
    }
    while l_edges < el {
        let u = rng.gen_range(0..va as VertexId);
        let v = rng.gen_range(0..vb as VertexId);
        lb.add_edge(u, v, rng.gen::<f64>());
        l_edges += 1;
    }
    let l = lb.build();

    StandInGraphs { a, b, l, planted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_shapes_track_targets() {
        let inst = StandIn::DmelaScere.generate(0.05, 1);
        let spec = StandIn::DmelaScere.spec();
        let (na, nb, elc, nnz) = inst.problem.shape();
        assert_eq!(na, scaled(spec.va, 0.05));
        assert_eq!(nb, scaled(spec.vb, 0.05));
        // builder dedup can reduce L slightly
        let el_target = scaled(spec.el, 0.05);
        assert!(
            elc as f64 > 0.8 * el_target as f64,
            "el {elc} vs {el_target}"
        );
        assert!(nnz > 0, "S must not be empty");
    }

    #[test]
    fn planted_signal_is_present_in_l() {
        let inst = StandIn::HomoMusm.generate(0.05, 2);
        let mut covered = 0;
        let mut total = 0;
        for (a, pb) in inst.planted.iter().enumerate() {
            if let Some(b) = pb {
                total += 1;
                if inst.problem.l.has_edge(a as u32, *b) {
                    covered += 1;
                }
            }
        }
        let cov = covered as f64 / total as f64;
        assert!(cov > 0.5, "planted coverage {cov}");
    }

    #[test]
    fn deterministic_per_seed() {
        let i1 = StandIn::DmelaScere.generate(0.03, 7);
        let i2 = StandIn::DmelaScere.generate(0.03, 7);
        assert_eq!(i1.problem.l, i2.problem.l);
        assert_eq!(i1.planted, i2.planted);
    }

    #[test]
    fn s_nonzeros_are_skewed() {
        // The paper: degree distribution in L fairly regular, nnz per
        // row of S highly irregular. Check max row ≫ mean row.
        let inst = StandIn::DmelaScere.generate(0.08, 3);
        let s = &inst.problem.s;
        let m = inst.problem.l.num_edges();
        let mean = s.nnz() as f64 / m as f64;
        let max = (0..m).map(|e| s.row_range(e).len()).max().unwrap();
        assert!(
            max as f64 > 5.0 * mean.max(0.2),
            "expected skew: max {max}, mean {mean}"
        );
    }

    #[test]
    fn all_specs_are_consistent() {
        for si in StandIn::ALL {
            let spec = si.spec();
            assert!(spec.va > 0 && spec.vb > 0 && spec.el > 0);
            assert!(spec.l_coverage > 0.0 && spec.l_coverage <= 1.0);
            assert!(spec.edge_retention > 0.0 && spec.edge_retention <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_bad_scale() {
        let _ = StandIn::DmelaScere.generate(0.0, 1);
    }

    #[test]
    fn graphs_only_split_matches_full_generation() {
        let graphs = StandIn::HomoMusm.generate_graphs(0.03, 9);
        let full = StandIn::HomoMusm.generate(0.03, 9);
        assert_eq!(graphs.l, full.problem.l);
        assert_eq!(graphs.planted, full.planted);
        assert_eq!(graphs.a.num_edges(), full.problem.a.num_edges());
        assert_eq!(graphs.b.num_edges(), full.problem.b.num_edges());
    }
}
