//! The paper's synthetic power-law quality benchmark (§VI.A).
//!
//! Recipe: generate a 400-node power-law base graph `G`; add random
//! edges with probability 0.02 to two copies, giving `A` and `B`; build
//! `L` from the identity correspondence plus noise pairs sampled with
//! probability `p = d̄ / |V_A|`. Because `A` and `B` both descend from
//! `G`, the identity alignment is a strong (usually near-optimal)
//! reference point.

use netalign_core::NetAlignProblem;
use netalign_graph::generators::{
    add_random_edges, expected_degree_to_probability, identity_plus_noise_l, power_law_graph,
};

/// Parameters of the synthetic benchmark. Defaults follow §VI.A /
/// Figure 2: `n = 400`, perturbation 0.02, power-law exponent 2.5.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawParams {
    /// Vertices in the base graph (and in both `A` and `B`).
    pub n: usize,
    /// Power-law exponent of the degree distribution.
    pub exponent: f64,
    /// Maximum degree when sampling the distribution.
    pub max_degree: usize,
    /// Probability of adding each absent edge to `A` and `B`.
    pub p_edge: f64,
    /// Expected number of random candidates per vertex in `L`
    /// (the figure's x-axis, `d̄ = p·|V_A|`).
    pub expected_degree: f64,
    /// Weight of identity candidates in `L`.
    pub id_weight: f64,
    /// Weight of noise candidates in `L`.
    pub noise_weight: f64,
    /// Master seed; sub-seeds derive deterministically.
    pub seed: u64,
}

impl Default for PowerLawParams {
    fn default() -> Self {
        Self {
            n: 400,
            exponent: 2.5,
            max_degree: 40,
            p_edge: 0.02,
            expected_degree: 5.0,
            id_weight: 1.0,
            noise_weight: 1.0,
            seed: 0,
        }
    }
}

/// A generated instance together with its planted correspondence
/// (for the synthetic benchmark: the identity map).
#[derive(Clone, Debug)]
pub struct SyntheticInstance {
    /// The alignment problem.
    pub problem: NetAlignProblem,
    /// `planted[a] = Some(b)` when left vertex `a` truly corresponds to
    /// right vertex `b`.
    pub planted: Vec<Option<u32>>,
}

/// Generate an Erdős–Rényi variant of the benchmark: the base graph is
/// `G(n, p_base)` instead of a power-law graph. The companion paper
/// [13] evaluates both families; ER bases lack hubs, which makes the
/// `S` non-zero distribution much more regular and the alignment
/// slightly easier at equal density.
pub fn erdos_renyi_alignment(n: usize, p_base: f64, params: &PowerLawParams) -> SyntheticInstance {
    let g = netalign_graph::generators::erdos_renyi(n, p_base, params.seed);
    let a = add_random_edges(&g, params.p_edge, params.seed.wrapping_add(1));
    let b = add_random_edges(&g, params.p_edge, params.seed.wrapping_add(2));
    let p = expected_degree_to_probability(params.expected_degree, n);
    let l = identity_plus_noise_l(
        n,
        n,
        p,
        params.id_weight,
        params.noise_weight,
        params.seed.wrapping_add(3),
    );
    let problem = NetAlignProblem::new(a, b, l);
    let planted = (0..n as u32).map(Some).collect();
    SyntheticInstance { problem, planted }
}

/// Generate the §VI.A benchmark instance.
pub fn power_law_alignment(params: &PowerLawParams) -> SyntheticInstance {
    let max_degree = params.max_degree.min(params.n.saturating_sub(1)).max(1);
    let g = power_law_graph(params.n, params.exponent, max_degree, params.seed);
    let a = add_random_edges(&g, params.p_edge, params.seed.wrapping_add(1));
    let b = add_random_edges(&g, params.p_edge, params.seed.wrapping_add(2));
    let p = expected_degree_to_probability(params.expected_degree, params.n);
    let l = identity_plus_noise_l(
        params.n,
        params.n,
        p,
        params.id_weight,
        params.noise_weight,
        params.seed.wrapping_add(3),
    );
    let problem = NetAlignProblem::new(a, b, l);
    let planted = (0..params.n as u32).map(Some).collect();
    SyntheticInstance { problem, planted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_instance_shape() {
        let inst = power_law_alignment(&PowerLawParams {
            n: 100,
            expected_degree: 4.0,
            ..Default::default()
        });
        let (na, nb, el, nnz) = inst.problem.shape();
        assert_eq!((na, nb), (100, 100));
        // identity (100) + noise (≈ 400)
        assert!(el > 300 && el < 700, "el = {el}");
        assert!(nnz > 0);
        assert_eq!(inst.planted.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PowerLawParams {
            n: 60,
            seed: 9,
            ..Default::default()
        };
        let i1 = power_law_alignment(&p);
        let i2 = power_law_alignment(&p);
        assert_eq!(i1.problem.l, i2.problem.l);
        assert_eq!(i1.problem.a, i2.problem.a);
        let i3 = power_law_alignment(&PowerLawParams { seed: 10, ..p });
        assert_ne!(i1.problem.l, i3.problem.l);
    }

    #[test]
    fn identity_edges_always_present() {
        let inst = power_law_alignment(&PowerLawParams {
            n: 50,
            expected_degree: 10.0,
            ..Default::default()
        });
        for i in 0..50u32 {
            assert!(inst.problem.l.has_edge(i, i));
        }
    }

    #[test]
    fn er_family_builds_and_is_planted() {
        let inst = erdos_renyi_alignment(
            80,
            0.05,
            &PowerLawParams {
                expected_degree: 3.0,
                seed: 5,
                ..Default::default()
            },
        );
        assert_eq!(inst.problem.a.num_vertices(), 80);
        assert!(inst.problem.a.num_edges() > 50);
        for i in 0..80u32 {
            assert!(inst.problem.l.has_edge(i, i));
        }
        // deterministic
        let again = erdos_renyi_alignment(
            80,
            0.05,
            &PowerLawParams {
                expected_degree: 3.0,
                seed: 5,
                ..Default::default()
            },
        );
        assert_eq!(inst.problem.l, again.problem.l);
    }

    #[test]
    fn er_base_is_more_regular_than_power_law() {
        use netalign_graph::stats::degree_summary;
        let er = erdos_renyi_alignment(
            300,
            0.02,
            &PowerLawParams {
                expected_degree: 4.0,
                seed: 9,
                ..Default::default()
            },
        );
        let pl = power_law_alignment(&PowerLawParams {
            n: 300,
            expected_degree: 4.0,
            seed: 9,
            exponent: 2.0,
            max_degree: 80,
            p_edge: 0.0,
            ..Default::default()
        });
        let cv_er = degree_summary(&er.problem.a).cv;
        let cv_pl = degree_summary(&pl.problem.a).cv;
        assert!(
            cv_pl > cv_er,
            "power-law cv {cv_pl} should exceed ER cv {cv_er}"
        );
    }

    #[test]
    fn higher_dbar_means_denser_l() {
        let lo = power_law_alignment(&PowerLawParams {
            n: 100,
            expected_degree: 2.0,
            ..Default::default()
        });
        let hi = power_law_alignment(&PowerLawParams {
            n: 100,
            expected_degree: 20.0,
            ..Default::default()
        });
        assert!(hi.problem.l.num_edges() > lo.problem.l.num_edges() * 3);
    }
}
