//! The distributed BP implementation must match shared-memory BP
//! bit-for-bit (same kernels, same fp order, same unique LD matching).

use netalign_core::bp::belief_propagation;
use netalign_core::bp::distributed::distributed_belief_propagation;
use netalign_core::config::AlignConfig;
use netalign_core::problem::NetAlignProblem;
use netalign_data::synthetic::{power_law_alignment, PowerLawParams};
use netalign_matching::MatcherKind;

fn instance(seed: u64) -> NetAlignProblem {
    power_law_alignment(&PowerLawParams {
        n: 80,
        expected_degree: 5.0,
        seed,
        ..Default::default()
    })
    .problem
}

#[test]
fn matches_shared_memory_bp_exactly() {
    let p = instance(3);
    let cfg = AlignConfig {
        iterations: 10,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let shared = belief_propagation(&p, &cfg);
    for ranks in [1, 2, 3, 5] {
        let dist = distributed_belief_propagation(&p, &cfg, ranks);
        assert_eq!(dist.objective, shared.objective, "ranks {ranks}");
        assert_eq!(dist.matching, shared.matching, "ranks {ranks}");
        assert_eq!(dist.best_iteration, shared.best_iteration, "ranks {ranks}");
    }
}

#[test]
fn history_matches_shared_memory() {
    let p = instance(7);
    let cfg = AlignConfig {
        iterations: 6,
        batch: 3,
        record_history: true,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let shared = belief_propagation(&p, &cfg);
    let dist = distributed_belief_propagation(&p, &cfg, 4);
    assert_eq!(shared.history.len(), dist.history.len());
    for (a, b) in shared.history.iter().zip(dist.history.iter()) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.objective, b.objective);
    }
}

#[test]
fn more_ranks_than_left_vertices() {
    let p = instance(9);
    let cfg = AlignConfig {
        iterations: 3,
        matcher: MatcherKind::ParallelLocalDominant,
        ..Default::default()
    };
    let dist = distributed_belief_propagation(&p, &cfg, 1000);
    assert!(dist.matching.is_valid(&p.l));
}

mod distributed_mr {
    use super::instance;
    use netalign_core::config::AlignConfig;
    use netalign_core::mr::distributed::distributed_matching_relaxation;
    use netalign_core::mr::matching_relaxation;
    use netalign_matching::MatcherKind;

    #[test]
    fn matches_shared_memory_mr_exactly() {
        let p = instance(13);
        let cfg = AlignConfig {
            iterations: 8,
            matcher: MatcherKind::ParallelLocalDominant,
            ..Default::default()
        };
        let shared = matching_relaxation(&p, &cfg);
        for ranks in [1, 2, 4] {
            let dist = distributed_matching_relaxation(&p, &cfg, ranks);
            assert_eq!(dist.objective, shared.objective, "ranks {ranks}");
            assert_eq!(dist.matching, shared.matching, "ranks {ranks}");
            assert_eq!(dist.upper_bound, shared.upper_bound, "ranks {ranks}");
        }
    }

    #[test]
    fn history_matches_shared_memory_mr() {
        let p = instance(17);
        let cfg = AlignConfig {
            iterations: 5,
            record_history: true,
            matcher: MatcherKind::ParallelLocalDominant,
            ..Default::default()
        };
        let shared = matching_relaxation(&p, &cfg);
        let dist = distributed_matching_relaxation(&p, &cfg, 3);
        assert_eq!(shared.history.len(), dist.history.len());
        for (a, b) in shared.history.iter().zip(dist.history.iter()) {
            assert_eq!(a.objective, b.objective);
            assert_eq!(a.upper_bound, b.upper_bound);
        }
    }
}
