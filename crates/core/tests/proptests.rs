//! Property-based tests of the core alignment machinery.

use netalign_core::bp::othermax::{column_positions, othermaxcol_into, othermaxrow_into};
use netalign_core::objective::{evaluate_indicator, evaluate_matching};
use netalign_core::problem::NetAlignProblem;
use netalign_core::squares::SquaresMatrix;
use netalign_graph::{BipartiteGraph, Graph};
use netalign_matching::{max_weight_matching, MatcherKind};
use proptest::prelude::*;

/// Strategy: a small random alignment problem.
fn arb_problem() -> impl Strategy<Value = NetAlignProblem> {
    (3usize..9, 3usize..9).prop_flat_map(|(na, nb)| {
        let a_edges = proptest::collection::vec((0..na as u32, 0..na as u32), 0..2 * na);
        let b_edges = proptest::collection::vec((0..nb as u32, 0..nb as u32), 0..2 * nb);
        let l_entries =
            proptest::collection::vec((0..na as u32, 0..nb as u32, 0.01f64..4.0), 1..na * nb);
        (a_edges, b_edges, l_entries).prop_map(move |(ae, be, le)| {
            let a = Graph::from_edges(na, ae.into_iter().filter(|(u, v)| u != v));
            let b = Graph::from_edges(nb, be.into_iter().filter(|(u, v)| u != v));
            let l = BipartiteGraph::from_entries(na, nb, le);
            NetAlignProblem::new(a, b, l)
        })
    })
}

/// Oracle: count squares by exhaustive enumeration.
fn squares_oracle(p: &NetAlignProblem) -> usize {
    let mut count = 0;
    for (i, ip, _) in p.l.edge_iter() {
        for (j, jp, f) in p.l.edge_iter() {
            let e = p.l.edge_id(i, ip).unwrap();
            if e != f && p.a.has_edge(i, j) && p.b.has_edge(ip, jp) {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn squares_matrix_matches_exhaustive_enumeration(p in arb_problem()) {
        prop_assert_eq!(p.s.nnz(), squares_oracle(&p));
        // symmetry + empty diagonal
        prop_assert!(p.s.pattern().is_structurally_symmetric());
        for e in 0..p.l.num_edges() {
            prop_assert!(!p.s.row_cols(e).contains(&(e as u32)));
        }
    }

    #[test]
    fn objective_paths_agree_for_every_matcher(p in arb_problem()) {
        for kind in [MatcherKind::Exact, MatcherKind::ParallelLocalDominant] {
            let m = max_weight_matching(&p.l, p.l.weights(), kind);
            let via_matching = evaluate_matching(&p, &m, 1.0, 2.0);
            let via_indicator = evaluate_indicator(&p, &m.indicator(&p.l), 1.0, 2.0);
            prop_assert!((via_matching.total - via_indicator.total).abs() < 1e-9);
            prop_assert!(via_matching.overlap.fract() == 0.0 || via_matching.overlap.fract() == 0.5);
        }
    }

    #[test]
    fn overlap_is_symmetric_in_problem_orientation(p in arb_problem()) {
        // Swapping A<->B and transposing L preserves objective values of
        // the mirrored matching.
        let m = max_weight_matching(&p.l, p.l.weights(), MatcherKind::Exact);
        let v = evaluate_matching(&p, &m, 1.0, 2.0);
        // mirrored problem
        let lt = BipartiteGraph::from_entries(
            p.l.num_right(),
            p.l.num_left(),
            p.l.edge_iter().map(|(a, b, e)| (b, a, p.l.weight(e))),
        );
        let pm = NetAlignProblem::new(p.b.clone(), p.a.clone(), lt);
        let mm = netalign_matching::Matching::from_mates(
            m.right_mates().to_vec(),
            m.left_mates().to_vec(),
        );
        let vm = evaluate_matching(&pm, &mm, 1.0, 2.0);
        prop_assert!((v.total - vm.total).abs() < 1e-9);
        prop_assert!((v.overlap - vm.overlap).abs() < 1e-9);
    }

    #[test]
    fn othermax_row_oracle(p in arb_problem(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = p.l.num_edges();
        let g: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let mut out = vec![0.0; m];
        let mut stats = vec![(0.0, 0.0, 0usize); p.l.num_left()];
        othermaxrow_into(&p.l, &g, &mut out, &mut stats, 1000);
        for (a, _, e) in p.l.edge_iter() {
            // brute-force: max over siblings in the same row
            let best = p
                .l
                .left_edges(a)
                .filter(|&(_, f)| f != e)
                .map(|(_, f)| g[f])
                .fold(f64::NEG_INFINITY, f64::max);
            let expect = best.max(0.0);
            prop_assert!((out[e] - expect).abs() < 1e-12,
                "edge {}: got {} want {}", e, out[e], expect);
        }
    }

    #[test]
    fn othermax_col_oracle(p in arb_problem(), seed in 100u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = p.l.num_edges();
        let g: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let pos = column_positions(&p.l);
        let mut out = vec![0.0; m];
        let mut stats = vec![(0.0, 0.0, 0usize); p.l.num_right()];
        othermaxcol_into(&p.l, &g, &pos, &mut out, &mut stats, 1000);
        for (_, b, e) in p.l.edge_iter() {
            let best = p
                .l
                .right_edges(b)
                .filter(|&(_, f)| f != e)
                .map(|(_, f)| g[f])
                .fold(f64::NEG_INFINITY, f64::max);
            let expect = best.max(0.0);
            prop_assert!((out[e] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_form_equals_dense(p in arb_problem(), seed in 200u64..260) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = p.l.num_edges();
        let x: Vec<f64> = (0..m).map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 }).collect();
        let fast = p.s.quadratic_form(&x);
        let mut slow = 0.0;
        for e in 0..m {
            for &f in p.s.row_cols(e) {
                slow += x[e] * x[f as usize];
            }
        }
        prop_assert!((fast - slow).abs() < 1e-9);
    }

    #[test]
    fn transpose_perm_transposes_values(p in arb_problem(), seed in 300u64..360) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let s: &SquaresMatrix = &p.s;
        let vals: Vec<f64> = (0..s.nnz()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut t = vec![0.0; s.nnz()];
        s.transpose_vals_into(&vals, &mut t);
        // check entry (e,f) of transpose equals (f,e) of original
        for e in 0..s.dim() {
            let range = s.row_range(e);
            for (off, &f) in s.row_cols(e).iter().enumerate() {
                let orig_idx = s
                    .pattern()
                    .find_entry(f as usize, e as u32)
                    .expect("symmetric pattern");
                prop_assert_eq!(t[range.start + off], vals[orig_idx]);
            }
        }
    }
}
