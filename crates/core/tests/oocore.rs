//! Out-of-core BP vs the in-core engine: bit-identity contract.
//!
//! The out-of-core path (crate::oocore) reformulates the nnz sweeps
//! around an explicit transpose-companion stream so they become
//! strictly sequential over spilled storage. Every f64 operation is
//! supposed to consume bit-identical operands in the same order as
//! the in-core kernels — these tests pin that, across thread pools,
//! superblock sizes, and rounding configurations, on instances built
//! both in-core and through the streaming NACS builder.

use netalign_core::config::AlignConfig;
use netalign_core::oocore::{belief_propagation_ooc, OocOptions};
use netalign_core::prelude::*;
use netalign_core::squares::SquaresMatrix;
use netalign_graph::generators::{lcsh_like, LcshLikeConfig};
use netalign_graph::{BipartiteGraph, Graph};
use proptest::prelude::*;
use std::path::PathBuf;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netalign-oocore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small instance whose squares matrix is dense enough (confusion
/// wedges) that superblock sweeps actually split the pattern.
fn dense_instance(seed: u64) -> (Graph, Graph, BipartiteGraph) {
    let cfg = LcshLikeConfig {
        va: 260,
        vb: 200,
        ea: 600,
        eb: 700,
        el: 2600,
        exponent: 2.0,
        edge_retention: 0.9,
        l_coverage: 0.9,
        confusion: 0.7,
        max_deg: 40,
    };
    let inst = lcsh_like(&cfg, seed);
    (inst.a, inst.b, inst.l)
}

fn assert_bit_identical(r: &AlignmentResult, reference: &AlignmentResult, label: &str) {
    assert_eq!(
        r.objective.to_bits(),
        reference.objective.to_bits(),
        "{label}: objective"
    );
    assert_eq!(r.matching, reference.matching, "{label}: matching");
    assert_eq!(
        r.best_iteration, reference.best_iteration,
        "{label}: best iteration"
    );
    assert_eq!(r.history.len(), reference.history.len(), "{label}: history");
    for (h, rh) in r.history.iter().zip(&reference.history) {
        assert_eq!(h.iteration, rh.iteration, "{label}: history iteration");
        assert_eq!(
            h.objective.to_bits(),
            rh.objective.to_bits(),
            "{label}: history objective"
        );
    }
}

/// The core contract: streaming-built, memory-mapped, superblock-swept
/// BP reproduces the in-core run bit-for-bit at pools {1, 2, 4, 8}
/// and at superblock sizes from degenerate to single-sweep.
#[test]
fn ooc_is_bit_identical_to_in_core_across_pools() {
    let (a, b, l) = dense_instance(11);
    let cfg = AlignConfig {
        iterations: 10,
        batch: 2,
        record_history: true,
        ..Default::default()
    };
    let reference =
        belief_propagation(&NetAlignProblem::new(a.clone(), b.clone(), l.clone()), &cfg);

    let dir = scratch("pools");
    let s = SquaresMatrix::build_streaming(&a, &b, &l, &dir.join("s.nacs"), 1 << 16).unwrap();
    let nnz = s.nnz();
    assert!(nnz > 4_000, "instance too sparse to exercise sweeps: {nnz}");
    let mapped = NetAlignProblem::from_parts(a, b, l, s);

    for threads in [1, 2, 4, 8] {
        for sb_entries in [257, nnz / 3, nnz] {
            let opts = OocOptions::new(&dir).with_superblock_entries(sb_entries.max(1));
            let r = pool(threads)
                .install(|| belief_propagation_ooc(&mapped, &cfg, &opts))
                .unwrap();
            assert_bit_identical(&r, &reference, &format!("pool {threads}, sb {sb_entries}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Engine-mode rounding (warm Suitor) through the out-of-core sweeps
/// also matches — rounding only ever sees m-sized iterates, but the
/// warm-start diffing is sensitive to any bit drift upstream.
#[test]
fn ooc_engine_rounding_matches_in_core() {
    let (a, b, l) = dense_instance(12);
    let cfg = AlignConfig {
        iterations: 8,
        matcher: MatcherKind::ParallelSuitor,
        rounding: Some(RoundingMatcher::Suitor),
        warm_start: true,
        record_history: true,
        ..Default::default()
    };
    let reference =
        belief_propagation(&NetAlignProblem::new(a.clone(), b.clone(), l.clone()), &cfg);
    let dir = scratch("rounding");
    let s = SquaresMatrix::build_streaming(&a, &b, &l, &dir.join("s.nacs"), 1 << 16).unwrap();
    let sb = s.nnz() / 5;
    let mapped = NetAlignProblem::from_parts(a, b, l, s);
    let opts = OocOptions::new(&dir).with_superblock_entries(sb.max(1));
    let r = belief_propagation_ooc(&mapped, &cfg, &opts).unwrap();
    assert_bit_identical(&r, &reference, "engine rounding");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mapped squares matrix behind the *unchanged* in-core engines:
/// `CsrView` serves the same accessor surface, so `belief_propagation`
/// and `matching_relaxation` run on it untouched and bit-identically.
#[test]
fn mapped_s_with_in_core_engines_is_bit_identical() {
    let (a, b, l) = dense_instance(13);
    let p_incore = NetAlignProblem::new(a.clone(), b.clone(), l.clone());
    let dir = scratch("mapped");
    p_incore.s.write_nacs(&dir.join("s.nacs")).unwrap();
    let view = netalign_graph::nacs::CsrView::open(&dir.join("s.nacs")).unwrap();
    let p_mapped = NetAlignProblem::from_parts(a, b, l, SquaresMatrix::from_mapped(view).unwrap());

    let bp_cfg = AlignConfig {
        iterations: 8,
        record_history: true,
        ..Default::default()
    };
    let bp_ref = belief_propagation(&p_incore, &bp_cfg);
    let bp_map = belief_propagation(&p_mapped, &bp_cfg);
    assert_bit_identical(&bp_map, &bp_ref, "bp on mapped S");

    let mr_cfg = AlignConfig {
        iterations: 6,
        ..Default::default()
    };
    let mr_ref = matching_relaxation(&p_incore, &mr_cfg);
    let mr_map = matching_relaxation(&p_mapped, &mr_cfg);
    assert_eq!(mr_map.objective.to_bits(), mr_ref.objective.to_bits());
    assert_eq!(mr_map.matching, mr_ref.matching);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget gating: a budget below the working-set baseline is refused
/// up front with `BudgetTooSmall`, never a thrashing run.
#[test]
fn undersized_budget_is_rejected() {
    let (a, b, l) = dense_instance(14);
    let dir = scratch("budget");
    let s = SquaresMatrix::build_streaming(&a, &b, &l, &dir.join("s.nacs"), 1 << 16).unwrap();
    let p = NetAlignProblem::from_parts(a, b, l, s);
    let opts = OocOptions::new(&dir).with_budget_mb(4);
    match belief_propagation_ooc(&p, &AlignConfig::default(), &opts) {
        Err(OocError::BudgetTooSmall { .. }) => {}
        other => panic!("expected BudgetTooSmall, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Out-of-core BP demands a mapped squares matrix.
#[test]
fn in_core_s_is_rejected() {
    let (a, b, l) = dense_instance(15);
    let p = NetAlignProblem::new(a, b, l);
    let opts = OocOptions::new(scratch("notmapped"));
    match belief_propagation_ooc(&p, &AlignConfig::default(), &opts) {
        Err(OocError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the contract: random small instances, random
    /// superblock sizes and pools — NACS round-trip plus the
    /// out-of-core sweeps reproduce the in-core solve bit-for-bit.
    #[test]
    fn ooc_solve_matches_in_core_on_random_instances(
        seed in 0u64..1u64 << 16,
        threads_exp in 0u32..4,
        sb_shift in 0u32..10,
        iterations in 4usize..9,
    ) {
        let cfg = LcshLikeConfig {
            va: 120,
            vb: 100,
            ea: 260,
            eb: 300,
            el: 900,
            exponent: 2.0,
            edge_retention: 0.9,
            l_coverage: 0.9,
            confusion: 0.6,
            max_deg: 30,
        };
        let threads = 1usize << threads_exp; // pools 1, 2, 4, 8
        let inst = lcsh_like(&cfg, seed);
        let (a, b, l) = (inst.a, inst.b, inst.l);
        let align = AlignConfig {
            iterations,
            record_history: true,
            ..Default::default()
        };
        let reference =
            belief_propagation(&NetAlignProblem::new(a.clone(), b.clone(), l.clone()), &align);
        let dir = scratch(&format!("prop-{seed}-{threads_exp}-{sb_shift}"));
        let s = SquaresMatrix::build_streaming(&a, &b, &l, &dir.join("s.nacs"), 4096).unwrap();
        let sb_entries = (s.nnz() >> sb_shift).max(64);
        let mapped = NetAlignProblem::from_parts(a, b, l, s);
        let opts = OocOptions::new(&dir).with_superblock_entries(sb_entries);
        let r = pool(threads)
            .install(|| belief_propagation_ooc(&mapped, &align, &opts))
            .unwrap();
        assert_bit_identical(&r, &reference, "proptest instance");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
