//! Tier-2 deadline/anytime suite: cooperative cancellation, injected
//! deterministic deadlines, and pool reuse after a cancelled region.
//!
//! * a cancelled token unwinds the current parallel region within one
//!   chunk (the runtime's distinguished `RegionCancelled` payload), the
//!   harness converts it into a clean `Cancelled` outcome, and the
//!   persistent pool stays reusable — the next run is **bit-identical**
//!   to an undisturbed one;
//! * an injected deadline (`NETALIGN_FAULT_DEADLINE` / the programmatic
//!   plan) stops both engines at the same iteration at every pool size,
//!   with identical best-so-far results — wall-clock never decides what
//!   a completed iteration computes;
//! * completions, cancel reasons and the degradation-ladder rung are
//!   reported faithfully.
//!
//! Cancel tokens are registered in a *scoped* registry keyed by the
//! runtime's per-thread cancel scope, so a latched token only ever
//! stops its own run — concurrent harness runs are independent (see
//! `concurrent_harness_runs_cancel_independently`). The fault plan is
//! still process-global, so EVERY test in this binary takes
//! `faults::test_lock()` first.

use netalign_core::prelude::*;
use netalign_core::trace::faults;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};

fn problem() -> NetAlignProblem {
    let g = power_law_graph(70, 2.4, 12, 31);
    let a = add_random_edges(&g, 0.03, 32);
    let b = add_random_edges(&g, 0.03, 33);
    let l = identity_plus_noise_l(70, 70, 5.0 / 70.0, 1.0, 1.0, 34);
    NetAlignProblem::new(a, b, l)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn assert_bit_identical(base: &AlignmentResult, r: &AlignmentResult, label: &str) {
    assert_eq!(
        base.objective.to_bits(),
        r.objective.to_bits(),
        "objective differs: {label}"
    );
    assert_eq!(base.matching, r.matching, "matching differs: {label}");
    assert_eq!(
        base.best_iteration, r.best_iteration,
        "best iteration differs: {label}"
    );
    assert_eq!(
        base.history.len(),
        r.history.len(),
        "history length differs: {label}"
    );
    for (a, b) in base.history.iter().zip(&r.history) {
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "history objective differs: {label}, iteration {}",
            a.iteration
        );
    }
}

#[test]
fn injected_deadline_is_deterministic_across_pools_bp() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 16,
        batch: 3,
        record_history: true,
        ..Default::default()
    };
    // The reference: an undisturbed run with the iteration budget cut
    // to the injected deadline. A deadline stop at iteration k must be
    // indistinguishable from "the budget was k all along".
    let short = pool(1).install(|| {
        belief_propagation(
            &p,
            &AlignConfig {
                iterations: 6,
                ..cfg
            },
        )
    });
    for threads in [1, 2, 4, 8] {
        faults::install(faults::FaultPlan {
            deadline: Some(6),
            ..Default::default()
        });
        let outcome = pool(threads)
            .install(|| RunHarness::new().run_bp(&p, &cfg))
            .expect("budgeted run");
        faults::clear();
        assert_eq!(outcome.completion, Completion::DeadlineBestSoFar);
        assert_eq!(outcome.iterations_run, 6, "pool {threads}");
        assert_eq!(outcome.ladder_rung, 3);
        assert_bit_identical(
            &short,
            &outcome.result,
            &format!("BP injected deadline at pool {threads}"),
        );
    }
}

#[test]
fn injected_deadline_is_deterministic_across_pools_mr() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 16,
        record_history: true,
        ..Default::default()
    };
    let short = pool(1).install(|| {
        matching_relaxation(
            &p,
            &AlignConfig {
                iterations: 9,
                ..cfg
            },
        )
    });
    for threads in [1, 2, 4, 8] {
        faults::install(faults::FaultPlan {
            deadline: Some(9),
            ..Default::default()
        });
        let outcome = pool(threads)
            .install(|| RunHarness::new().run_mr(&p, &cfg))
            .expect("budgeted run");
        faults::clear();
        assert_eq!(outcome.completion, Completion::DeadlineBestSoFar);
        assert_eq!(outcome.iterations_run, 9, "pool {threads}");
        // MR's best-so-far matches the short run except the final upper
        // bound (`finish` folds the current objective in) — covered by
        // assert_bit_identical which skips `upper_bound` here on
        // purpose: both runs call finish() at the same iterate, so it
        // is compared via the objective/history instead.
        assert_bit_identical(
            &short,
            &outcome.result,
            &format!("MR injected deadline at pool {threads}"),
        );
    }
}

#[test]
fn cancelled_region_leaves_pool_reusable_bit_identically() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 10,
        batch: 2,
        record_history: true,
        ..Default::default()
    };
    for threads in [1, 2, 4, 8] {
        let pool = pool(threads);
        let clean = pool.install(|| belief_propagation(&p, &cfg));

        // A pre-cancelled token: the very first parallel region of the
        // run observes it at its first chunk claim and unwinds with the
        // runtime's distinguished payload. The harness converts that
        // into a clean Cancelled outcome (never a panic).
        let token = CancelToken::new();
        token.cancel(CancelReason::Manual);
        let outcome = pool
            .install(|| {
                RunHarness::new()
                    .with_cancel_token(token.clone())
                    .run_bp(&p, &cfg)
            })
            .expect("cancelled run still returns an outcome");
        assert_eq!(outcome.completion, Completion::Cancelled);
        assert_eq!(outcome.cancel_reason, Some(CancelReason::Manual));
        assert_eq!(
            outcome.iterations_run, 0,
            "cancel landed before any boundary"
        );
        assert!(
            outcome.result.objective.is_finite(),
            "best-so-far assembly must be complete, got {}",
            outcome.result.objective
        );

        // The same pool must run the next region normally — and still
        // bit-identically: no worker died, no chunk state leaked.
        let after = pool.install(|| belief_propagation(&p, &cfg));
        assert_bit_identical(
            &clean,
            &after,
            &format!("run after a cancelled region at pool {threads}"),
        );
    }
}

#[test]
fn mid_run_cancellation_keeps_completed_iterations() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 12,
        batch: 2,
        record_history: true,
        ..Default::default()
    };
    // Cancel from a helper thread once the run has made some progress
    // (heartbeat-gated, so the cancel lands mid-run, not before it).
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            while token.heartbeat() < 3 && !token.is_cancelled() {
                std::thread::yield_now();
            }
            token.cancel(CancelReason::Manual);
        })
    };
    let outcome = pool(4)
        .install(|| {
            RunHarness::new()
                .with_cancel_token(token.clone())
                .run_bp(&p, &cfg)
        })
        .expect("cancelled run still returns an outcome");
    canceller.join().expect("canceller thread");
    assert_eq!(outcome.completion, Completion::Cancelled);
    assert_eq!(outcome.cancel_reason, Some(CancelReason::Manual));
    assert!(
        outcome.iterations_run < 12,
        "the cancel must stop the run early, ran {}",
        outcome.iterations_run
    );
    assert!(outcome.result.objective.is_finite());
    assert!(outcome.result.matching.is_valid(&p.l));
}

#[test]
fn watchdog_reason_is_reported_as_cancelled() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 8,
        ..Default::default()
    };
    // The watchdog thread itself is unit-tested in the trace crate;
    // here we prove the harness maps its reason to a clean outcome.
    let token = CancelToken::new();
    token.cancel(CancelReason::Watchdog);
    let outcome = pool(2)
        .install(|| RunHarness::new().with_cancel_token(token).run_mr(&p, &cfg))
        .expect("watchdog-cancelled run still returns an outcome");
    assert_eq!(outcome.completion, Completion::Cancelled);
    assert_eq!(outcome.cancel_reason, Some(CancelReason::Watchdog));
}

#[test]
fn deadline_env_grammar_parses() {
    let _guard = faults::test_lock();
    let plan = faults::plan_from_env_pairs(&[("NETALIGN_FAULT_DEADLINE", "7")]);
    assert_eq!(plan.deadline, Some(7));
    assert_eq!(plan.panic, None);
    let none = faults::plan_from_env_pairs(&[]);
    assert!(none.is_empty());
}

#[test]
fn soft_iteration_budget_escalates_but_completes() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 10,
        batch: 2,
        record_history: true,
        ..Default::default()
    };
    // A zero-width soft budget pressures the ladder every iteration but
    // must never terminate the run: the full budget completes, capped
    // at rung 2 (forced cheap rounding).
    let outcome = pool(4)
        .install(|| {
            RunHarness::new()
                .with_time_budget(TimeBudget {
                    deadline: None,
                    soft_iteration: Some(std::time::Duration::ZERO),
                })
                .run_bp(&p, &cfg)
        })
        .expect("soft-budget run");
    assert_eq!(outcome.completion, Completion::Completed);
    assert_eq!(outcome.iterations_run, 10);
    assert!(
        (1..=2).contains(&outcome.ladder_rung),
        "soft pressure must climb the ladder without stopping, rung {}",
        outcome.ladder_rung
    );
    assert!(outcome.result.objective.is_finite());
}

#[test]
fn concurrent_harness_runs_cancel_independently() {
    let _guard = faults::test_lock();
    let p = problem();
    let cfg = AlignConfig {
        iterations: 12,
        record_history: true,
        ..Default::default()
    };
    let reference = netalign_core::belief_propagation(&p, &cfg);

    // Two harness runs overlap in one process, each with its own
    // registered token. Cancelling the long run must not disturb the
    // short one: tokens live in a scoped registry, not a single
    // process-global slot.
    let start = std::sync::Arc::new(std::sync::Barrier::new(3));
    let victim_token = CancelToken::new();
    let victim = std::thread::spawn({
        let p = p.clone();
        let token = victim_token.clone();
        let start = std::sync::Arc::clone(&start);
        move || {
            let long = AlignConfig {
                iterations: 1_000_000,
                ..Default::default()
            };
            start.wait();
            RunHarness::new()
                .with_cancel_token(token)
                .run_bp(&p, &long)
                .expect("cancelled run still returns an outcome")
        }
    });
    let bystander = std::thread::spawn({
        let p = p.clone();
        let start = std::sync::Arc::clone(&start);
        move || {
            start.wait();
            RunHarness::new()
                .with_cancel_token(CancelToken::new())
                .run_bp(&p, &cfg)
                .expect("bystander run")
        }
    });
    start.wait();
    std::thread::sleep(std::time::Duration::from_millis(30));
    victim_token.cancel(CancelReason::Manual);

    let victim_outcome = victim.join().expect("victim thread");
    let bystander_outcome = bystander.join().expect("bystander thread");
    assert_eq!(victim_outcome.completion, Completion::Cancelled);
    assert_eq!(victim_outcome.cancel_reason, Some(CancelReason::Manual));
    assert_eq!(
        bystander_outcome.completion,
        Completion::Completed,
        "a sibling run's cancellation leaked into this run"
    );
    assert_eq!(bystander_outcome.iterations_run, 12);
    assert_bit_identical(
        &reference,
        &bystander_outcome.result,
        "bystander vs undisturbed",
    );
}
