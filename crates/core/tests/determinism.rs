//! Bit-identical results across worker-pool sizes.
//!
//! The runtime's determinism contract: parallel regions decompose into
//! chunks as a function of the data size only (never the pool size),
//! and reductions combine chunk results in chunk order — so float
//! round-off is the same whether 1 or 8 workers ran the region, and
//! both aligners produce bit-identical objectives, matchings and
//! histories at every pool size.

use netalign_core::prelude::*;
use netalign_graph::generators::{add_random_edges, identity_plus_noise_l, power_law_graph};

fn problem() -> NetAlignProblem {
    let g = power_law_graph(70, 2.4, 12, 31);
    let a = add_random_edges(&g, 0.03, 32);
    let b = add_random_edges(&g, 0.03, 33);
    let l = identity_plus_noise_l(70, 70, 5.0 / 70.0, 1.0, 1.0, 34);
    NetAlignProblem::new(a, b, l)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn assert_same(base: &AlignmentResult, r: &AlignmentResult, threads: usize) {
    assert_eq!(
        base.objective.to_bits(),
        r.objective.to_bits(),
        "objective differs at pool size {threads}"
    );
    assert_eq!(
        base.matching, r.matching,
        "matching differs at pool size {threads}"
    );
    assert_eq!(
        base.best_iteration, r.best_iteration,
        "best iteration differs at pool size {threads}"
    );
    assert_eq!(base.history.len(), r.history.len());
    for (a, b) in base.history.iter().zip(&r.history) {
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "history objective differs at pool size {threads}, iteration {}",
            a.iteration
        );
        assert_eq!(
            a.upper_bound.map(f64::to_bits),
            b.upper_bound.map(f64::to_bits),
            "history upper bound differs at pool size {threads}, iteration {}",
            a.iteration
        );
    }
}

#[test]
fn bp_is_bit_identical_across_pool_sizes() {
    let p = problem();
    let cfg = AlignConfig {
        iterations: 20,
        batch: 4,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| belief_propagation(&p, &cfg));
    for threads in [2, 4, 8] {
        let r = pool(threads).install(|| belief_propagation(&p, &cfg));
        assert_same(&base, &r, threads);
    }
}

/// Engine-mode rounding (preallocated matcher, lock-free Suitor, warm
/// starts) holds the same contract: the packed-CAS slots converge to a
/// schedule-independent fixed point and the warm-start reseeding rule
/// is a function of the weight diff only, so every pool size produces
/// the same bits.
#[test]
fn bp_engine_rounding_is_bit_identical_across_pool_sizes() {
    let p = problem();
    let cfg = AlignConfig {
        iterations: 20,
        batch: 4,
        matcher: MatcherKind::ParallelLocalDominant,
        rounding: Some(RoundingMatcher::Suitor),
        warm_start: true,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| belief_propagation(&p, &cfg));
    for threads in [2, 4, 8] {
        let r = pool(threads).install(|| belief_propagation(&p, &cfg));
        assert_same(&base, &r, threads);
    }
}

#[test]
fn mr_engine_rounding_is_bit_identical_across_pool_sizes() {
    let p = problem();
    let cfg = AlignConfig {
        iterations: 20,
        matcher: MatcherKind::ParallelLocalDominant,
        rounding: Some(RoundingMatcher::Ld),
        warm_start: true,
        enriched_rounding: true,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| matching_relaxation(&p, &cfg));
    for threads in [2, 4, 8] {
        let r = pool(threads).install(|| matching_relaxation(&p, &cfg));
        assert_same(&base, &r, threads);
        assert_eq!(
            base.upper_bound.map(f64::to_bits),
            r.upper_bound.map(f64::to_bits),
            "MR upper bound differs at pool size {threads}"
        );
    }
}

#[test]
fn mr_is_bit_identical_across_pool_sizes() {
    let p = problem();
    let cfg = AlignConfig {
        iterations: 20,
        record_history: true,
        ..Default::default()
    };
    let base = pool(1).install(|| matching_relaxation(&p, &cfg));
    for threads in [2, 4, 8] {
        let r = pool(threads).install(|| matching_relaxation(&p, &cfg));
        assert_same(&base, &r, threads);
        assert_eq!(
            base.upper_bound.map(f64::to_bits),
            r.upper_bound.map(f64::to_bits),
            "MR upper bound differs at pool size {threads}"
        );
    }
}
